"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` works in offline environments that lack the
``wheel`` package (PEP 660 editable builds need it; the legacy code path does
not).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
