"""E4: WCET-aware scheduling vs average-case-oriented scheduling.

Claim (paper Sections I, III-C): HPC-style parallelization optimises average
performance and ignores predictability, which leads to poor guaranteed WCET;
the ARGO flow optimises the worst case directly and "reduces the gap between
the worst-case and average-case execution time".  The two schedulers are run
as one in-process sweep (sharing the analysis cache), then both schedules
are simulated to compare the guaranteed bound with observed behaviour.
"""

import pytest

from benchmarks._common import emit
from repro.adl.platforms import generic_predictable_multicore
from repro.core import ArgoToolchain, SweepCase, ToolchainConfig, sweep
from repro.usecases import ALL_USECASES
from repro.utils.tables import Table


@pytest.mark.parametrize("usecase", ["egpws", "polka"])
def test_e4_wcet_vs_average_case_scheduling(benchmark, usecase):
    builder, inputs_fn = ALL_USECASES[usecase]
    platform = generic_predictable_multicore(cores=4)
    toolchain = ArgoToolchain(platform)  # used for simulation only

    def compare():
        result = sweep(
            [
                SweepCase(
                    diagram=builder(),
                    platform=platform,
                    config=ToolchainConfig(loop_chunks=4, scheduler=scheduler),
                )
                for scheduler in ("wcet_list", "acet_list")
            ],
            keep_results=True,
        )
        assert result.ok, result.failures()
        wcet_result, acet_result = (outcome.result for outcome in result)
        wcet_sim = toolchain.simulate(wcet_result, inputs_fn()).makespan
        acet_sim = toolchain.simulate(acet_result, inputs_fn()).makespan
        return wcet_result, acet_result, wcet_sim, acet_sim

    wcet_result, acet_result, wcet_sim, acet_sim = benchmark.pedantic(compare, rounds=1, iterations=1)
    table = Table(
        ["scheduler", "guaranteed WCET", "observed time", "gap (bound/observed)"],
        title=f"E4 WCET-aware vs average-case scheduling ({usecase})",
    )
    table.add_row(["wcet_list", wcet_result.system_wcet, wcet_sim, wcet_result.system_wcet / wcet_sim])
    table.add_row(["acet_list", acet_result.system_wcet, acet_sim, acet_result.system_wcet / acet_sim])
    emit(table)

    # the WCET-aware schedule never has a worse guaranteed bound
    assert wcet_result.system_wcet <= acet_result.system_wcet * 1.01
