"""E7: platform flexibility -- the same model retargets via the ADL.

Claim (paper Sections II-A, IV-C): the ADL lets the same application target
different multi-/many-core platforms (Recore Xentium-style and KIT
Leon3/iNoC-style); the flow, not the application, absorbs the platform
differences.  The table shows the POLKA application compiled to the three
platform families.
"""

import pytest

from benchmarks._common import emit
from repro.adl.platforms import (
    generic_predictable_multicore,
    kit_leon3_inoc,
    recore_xentium_like,
)
from repro.core import ArgoToolchain, ToolchainConfig
from repro.usecases import build_polka_diagram
from repro.utils.tables import Table

PLATFORMS = {
    "generic RR-bus (4 cores)": lambda: generic_predictable_multicore(cores=4),
    "Recore Xentium-like (4 DSPs, crossbar)": lambda: recore_xentium_like(dsp_cores=4, control_cores=0),
    "KIT Leon3 + iNoC (2x2 tiles)": lambda: kit_leon3_inoc(mesh_width=2, mesh_height=2, cores_per_tile=1),
}


def test_e7_platform_retargeting(benchmark):
    def sweep():
        rows = []
        for name, factory in PLATFORMS.items():
            platform = factory()
            result = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2)).run(
                build_polka_diagram(pixels=64)
            )
            rows.append((name, platform.num_cores, result.sequential_wcet, result.system_wcet, result.wcet_speedup))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["platform", "cores", "sequential WCET", "parallel WCET", "speedup"],
        title="E7 POLKA retargeted across ADL platform presets",
    )
    for row in rows:
        table.add_row(list(row))
    emit(table)
    assert all(row[3] > 0 for row in rows)
