"""E7: platform flexibility -- the same model retargets via the ADL.

Claim (paper Sections II-A, IV-C): the ADL lets the same application target
different multi-/many-core platforms (Recore Xentium-style and KIT
Leon3/iNoC-style); the flow, not the application, absorbs the platform
differences.  The table shows the POLKA application compiled to the three
platform families -- executed as one design-space sweep through
:func:`repro.core.sweep.sweep` instead of a hand-rolled loop.
"""

from functools import partial


from benchmarks._common import emit
from repro.adl.platforms import (
    generic_predictable_multicore,
    kit_leon3_inoc,
    recore_xentium_like,
)
from repro.core import ToolchainConfig, sweep
from repro.usecases import build_polka_diagram
from repro.utils.tables import Table

PLATFORMS = {
    "generic RR-bus (4 cores)": partial(generic_predictable_multicore, cores=4),
    "Recore Xentium-like (4 DSPs, crossbar)": partial(
        recore_xentium_like, dsp_cores=4, control_cores=0
    ),
    "KIT Leon3 + iNoC (2x2 tiles)": partial(
        kit_leon3_inoc, mesh_width=2, mesh_height=2, cores_per_tile=1
    ),
}


def test_e7_platform_retargeting(benchmark):
    def run_sweep():
        return sweep(
            diagrams=[partial(build_polka_diagram, pixels=64)],
            platforms=list(PLATFORMS.values()),
            configs=[ToolchainConfig(loop_chunks=2)],
        )

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert result.ok, result.failures()
    table = Table(
        ["platform", "cores", "sequential WCET", "parallel WCET", "speedup"],
        title="E7 POLKA retargeted across ADL platform presets",
    )
    for label, factory, outcome in zip(PLATFORMS, PLATFORMS.values(), result):
        table.add_row(
            [
                label,
                factory().num_cores,
                outcome.sequential_wcet,
                outcome.system_wcet,
                outcome.wcet_speedup,
            ]
        )
    emit(table)
    assert all(outcome.system_wcet > 0 for outcome in result)
