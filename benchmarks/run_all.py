"""Driver running every ``bench_eN`` experiment and recording a perf trace.

Each experiment module is executed through pytest in its own subprocess (so a
crashing experiment cannot take down the sweep) and timed; the results are
written to a ``BENCH_<tag>.json`` record::

    python benchmarks/run_all.py                 # all experiments -> BENCH_results.json
    python benchmarks/run_all.py --only e2 e11   # a subset
    python benchmarks/run_all.py --tag nightly   # -> BENCH_nightly.json

The JSON record holds one entry per experiment (wall-clock seconds, pytest
exit status) plus environment metadata, giving the repository a perf
trajectory across PRs instead of an empty bench history.

With ``--cache-dir DIR`` every experiment subprocess shares one disk-backed
result cache (via the ``REPRO_WCET_CACHE_DIR`` environment variable): the
first sweep populates both tiers -- code-level WCET analyses and
system-level fixed-point results -- and subsequent sweeps hit them.  The
record then carries per-experiment and total hit/disk-hit/miss counts: the
code-level miss total is the number of actual code-level re-analyses and
the system-level miss total the number of fixed points actually run, both
of which a warm cache drives to zero::

    python benchmarks/run_all.py --cache-dir .wcet_cache --tag cold
    python benchmarks/run_all.py --cache-dir .wcet_cache --tag warm

``--cache-evict-entries`` / ``--cache-evict-bytes`` bound the directory
after the run (``python -m repro cache evict`` is the standalone
equivalent), so nightly drivers can keep shared caches from growing without
bound.

With ``--trace`` every experiment subprocess runs with observability on
(``REPRO_TRACE`` pointing at a per-experiment ``obs_<module>/`` directory
under ``--out-dir``): at process exit each worker dumps its Perfetto
``trace-<pid>.json`` and ``metrics-<pid>.json``, and the driver merges the
per-pid metric snapshots into the experiment's BENCH entry, so the record
carries fixed-point iteration counts, MHP pruning ratios, cache tier
hits/misses and certificate timings next to the wall-clock numbers::

    python benchmarks/run_all.py --trace --only e13

``--sweep`` additionally runs a design-space sweep smoke test through the
parallel sweep runner (``repro.core.sweep``): a 2 diagrams x 2 platforms x 2
schedulers grid executed with ``--sweep-workers`` worker processes, verified
bit-identical against the equivalent sequential loop, and recorded in the
BENCH record.  ``--skip-benchmarks`` runs only the sweep (the CI smoke
mode)::

    python benchmarks/run_all.py --sweep --skip-benchmarks --tag ci-smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_module
import re
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import TRACE_ENV_VAR  # noqa: E402
from repro.obs.metrics import merge_snapshots  # noqa: E402
from repro.wcet.cache import CACHE_DIR_ENV_VAR, read_cache_dir_stats  # noqa: E402


def run_sweep_smoke(max_workers: int, cache_dir: Path | None) -> dict:
    """A small design-space sweep through the parallel runner.

    Runs the grid twice -- once with worker processes, once as the
    equivalent sequential loop -- and checks the WCET bounds are
    bit-identical, which is the correctness contract of the sweep runner.
    """
    from functools import partial

    from repro.adl.platforms import generic_predictable_multicore, recore_xentium_like
    from repro.core import ToolchainConfig, sweep
    from repro.usecases import build_egpws_diagram, build_polka_diagram

    grid = dict(
        diagrams=[
            partial(build_egpws_diagram, lookahead=16),
            partial(build_polka_diagram, pixels=32),
        ],
        platforms=[
            partial(generic_predictable_multicore, cores=4),
            partial(recore_xentium_like, dsp_cores=4, control_cores=0),
        ],
        configs=[
            ToolchainConfig(loop_chunks=2, scheduler="wcet_list"),
            ToolchainConfig(loop_chunks=2, scheduler="sequential"),
        ],
    )
    cache = str(cache_dir) if cache_dir is not None else None
    parallel = sweep(**grid, max_workers=max_workers, cache_dir=cache)
    sequential = sweep(**grid, max_workers=1, cache_dir=cache)
    identical = all(
        (a.system_wcet, a.sequential_wcet) == (b.system_wcet, b.sequential_wcet)
        for a, b in zip(parallel, sequential)
    )
    print(parallel.render(f"sweep smoke ({parallel.max_workers} workers)"))
    print(
        f"[run_all] sweep: {len(parallel)} cases in {parallel.seconds:.2f}s "
        f"(sequential loop: {sequential.seconds:.2f}s), "
        f"bounds bit-identical: {identical}"
    )
    return {
        "cases": parallel.as_dicts(),
        "max_workers": parallel.max_workers,
        "seconds_parallel": round(parallel.seconds, 3),
        "seconds_sequential": round(sequential.seconds, 3),
        "all_passed": parallel.ok and sequential.ok and identical,
        "bounds_identical_to_sequential_loop": identical,
    }


def discover_benchmarks() -> list[Path]:
    """All ``bench_eN_*.py`` modules, ordered by experiment number."""

    def experiment_number(path: Path) -> int:
        match = re.match(r"bench_e(\d+)", path.name)
        return int(match.group(1)) if match else 10**6

    return sorted(BENCH_DIR.glob("bench_e*.py"), key=experiment_number)


def collect_trace_dir(trace_dir: Path) -> dict:
    """Merge the per-pid telemetry a traced experiment subprocess dumped."""
    metric_files = sorted(trace_dir.glob("metrics-*.json"))
    snapshots = []
    for metric_file in metric_files:
        try:
            snapshots.append(json.loads(metric_file.read_text()))
        except (OSError, ValueError):
            pass  # a torn write must not fail the whole record
    return {
        "dir": str(trace_dir),
        "trace_files": len(list(trace_dir.glob("trace-*.json"))),
        "metrics": merge_snapshots(snapshots),
    }


def run_benchmark(
    path: Path,
    pytest_args: list[str],
    cache_dir: Path | None = None,
    trace_dir: Path | None = None,
) -> dict:
    """Run one experiment module under pytest and time it."""
    cmd = [sys.executable, "-m", "pytest", str(path), "-q", *pytest_args]
    env = dict(os.environ)
    if cache_dir is not None:
        env[CACHE_DIR_ENV_VAR] = str(cache_dir)
    if trace_dir is not None:
        env[TRACE_ENV_VAR] = str(trace_dir)
    started = time.perf_counter()
    proc = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True, text=True, env=env)
    seconds = time.perf_counter() - started
    # last pytest summary line, e.g. "3 passed in 12.34s"
    summary = ""
    for line in reversed(proc.stdout.splitlines()):
        if line.strip():
            summary = line.strip()
            break
    record = {
        "module": path.stem,
        "seconds": round(seconds, 3),
        "returncode": proc.returncode,
        "passed": proc.returncode == 0,
        "summary": summary,
    }
    if trace_dir is not None:
        record["telemetry"] = collect_trace_dir(trace_dir)
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="EXPR",
        help="run only experiments whose name contains one of these substrings (e.g. e2 e11)",
    )
    parser.add_argument(
        "--tag",
        default="results",
        help="suffix of the emitted BENCH_<tag>.json record (default: results)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory the record is written to (default: repository root)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="share one disk-backed WCET analysis cache across all experiment "
        "subprocesses and record cache hit/miss counts in the BENCH record",
    )
    parser.add_argument(
        "--cache-evict-entries",
        type=int,
        default=None,
        metavar="N",
        help="after the run, bound the shared cache directory to at most N entries "
        "across both tiers (requires --cache-dir)",
    )
    parser.add_argument(
        "--cache-evict-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="after the run, bound the shared cache directory's serialized entry "
        "bytes (requires --cache-dir)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="run every experiment subprocess with observability on "
        "(REPRO_TRACE) and merge the per-pid metric snapshots into the "
        "BENCH record; traces land in <out-dir>/obs_<module>/",
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="also run the parallel design-space sweep smoke test and record it",
    )
    parser.add_argument(
        "--sweep-workers",
        type=int,
        default=2,
        help="worker processes of the sweep smoke test (default: 2)",
    )
    parser.add_argument(
        "--skip-benchmarks",
        action="store_true",
        help="skip the bench_eN experiments (useful with --sweep for a quick smoke run)",
    )
    parser.add_argument(
        "--pytest-args",
        nargs=argparse.REMAINDER,
        default=[],
        help="extra arguments forwarded to pytest",
    )
    args = parser.parse_args(argv)

    if args.cache_dir is None and (
        args.cache_evict_entries is not None or args.cache_evict_bytes is not None
    ):
        # fail before spending minutes on experiments whose record would
        # then be discarded by the conflicting arguments
        parser.error("--cache-evict-entries/--cache-evict-bytes need --cache-dir")

    benchmarks = [] if args.skip_benchmarks else discover_benchmarks()
    if args.only and not args.skip_benchmarks:
        benchmarks = [
            p for p in benchmarks if any(token in p.stem for token in args.only)
        ]
    if not benchmarks and not args.sweep:
        print("no benchmark modules matched", file=sys.stderr)
        return 2

    cache_dir = args.cache_dir.resolve() if args.cache_dir is not None else None
    sweep_start_stats = (
        read_cache_dir_stats(cache_dir, count_entries=False) if cache_dir else None
    )

    results = []
    before = sweep_start_stats
    for path in benchmarks:
        print(f"[run_all] {path.stem} ...", flush=True)
        trace_dir = args.out_dir / f"obs_{path.stem}" if args.trace else None
        record = run_benchmark(
            path, args.pytest_args, cache_dir=cache_dir, trace_dir=trace_dir
        )
        status = "ok" if record["passed"] else f"FAILED (rc={record['returncode']})"
        if args.trace:
            counters = record["telemetry"]["metrics"].get("counters", {})
            status += (
                f"  [trace: {record['telemetry']['trace_files']} file(s), "
                f"{counters.get('fixed_point.runs', 0)} fixed points, "
                f"{counters.get('ipet.solves', 0)} LP solves]"
            )
        if cache_dir is not None:
            after = read_cache_dir_stats(cache_dir, count_entries=False)
            record["cache"] = {
                key: after[key] - before[key] for key in ("hits", "disk_hits", "misses")
            }
            record["cache"]["system"] = {
                key: after["system"][key] - before["system"][key]
                for key in ("hits", "disk_hits", "misses")
            }
            before = after
            status += (
                f"  [cache: {record['cache']['hits']}+{record['cache']['disk_hits']} hits"
                f" / {record['cache']['misses']} misses; "
                f"{record['cache']['system']['misses']} fixed points]"
            )
        print(f"[run_all]   {status} in {record['seconds']:.1f}s  ({record['summary']})")
        results.append(record)

    sweep_record = None
    if args.sweep:
        print("[run_all] sweep smoke ...", flush=True)
        sweep_record = run_sweep_smoke(args.sweep_workers, cache_dir)

    record = {
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "platform": platform_module.platform(),
        "total_seconds": round(sum(r["seconds"] for r in results), 3),
        "all_passed": all(r["passed"] for r in results)
        and (sweep_record is None or sweep_record["all_passed"]),
        "results": results,
    }
    if sweep_record is not None:
        record["sweep"] = sweep_record
    if cache_dir is not None:
        end_stats = read_cache_dir_stats(cache_dir)
        sweep = {
            key: end_stats[key] - sweep_start_stats[key]
            for key in ("hits", "disk_hits", "misses", "flushed")
        }
        system = {
            key: end_stats["system"][key] - sweep_start_stats["system"][key]
            for key in ("hits", "disk_hits", "misses", "flushed")
        }
        record["cache"] = {
            "dir": str(cache_dir),
            **sweep,
            #: actual code-level analyses performed this sweep; zero on a
            #: fully warm cache
            "code_level_reanalyses": sweep["misses"],
            "entries_on_disk": end_stats["entries"],
            #: system-level result tier: its misses are the fixed points
            #: actually run; zero on a fully warm result cache
            "system": {
                **system,
                "fixed_points_run": system["misses"],
                "entries_on_disk": end_stats["system"]["entries"],
            },
        }
        print(
            f"[run_all] cache: {sweep['hits']}+{sweep['disk_hits']} hits / "
            f"{sweep['misses']} code-level re-analyses, "
            f"{system['misses']} system-level fixed points run, "
            f"{end_stats['entries']}+{end_stats['system']['entries']} entries on disk"
        )
        if args.cache_evict_entries is not None or args.cache_evict_bytes is not None:
            from repro.wcet.cache import WcetAnalysisCache

            evict_report = WcetAnalysisCache.open(cache_dir).evict(
                max_entries=args.cache_evict_entries,
                max_bytes=args.cache_evict_bytes,
            )
            record["cache"]["evicted"] = evict_report
            print(
                f"[run_all] cache evict: kept {evict_report['kept']} entries "
                f"({evict_report['kept_bytes']} bytes), "
                f"evicted {evict_report['evicted']}"
            )
    out_path = args.out_dir / f"BENCH_{args.tag}.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[run_all] wrote {out_path} ({len(results)} experiments, "
          f"{record['total_seconds']:.1f}s total)")
    return 0 if record["all_passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
