"""E15: incremental re-analysis wall clock for single-task edits.

PR 8's incremental engine (:meth:`repro.core.pipeline.Pipeline.run_incremental`)
walks the analysis dependency graph of a previous run and re-does only the
work whose input fingerprints changed: one edited block re-extracts one HTG
region, the race check re-scans only pairs with a changed endpoint, and the
interference fixed point is warm-started from the previous converged state
(certificate-checked before reuse).

This experiment takes an E11-scale workload (a ~900-task random layered
diagram at loop granularity), edits a single block parameter, and compares

* a **cold** run -- fresh pipeline, fresh :class:`WcetAnalysisCache`,
  exactly what a new process would pay -- against
* an **incremental** run reusing the previous result.

Each side is measured best-of-``ROUNDS`` with a different edited block per
round (so the incremental side never re-times work its own previous round
cached), with the collector paused during the timed sections to keep GC
pauses of the large heap out of the comparison.

Acceptance: the incremental run is **>= 5x** faster, re-analyses exactly one
region, warm-starts the certified fixed point, and its bounds / mapping /
order / per-task intervals are bit-identical to a cold run of the edited
diagram.
"""

import gc
import time
from pathlib import Path

try:
    from benchmarks._common import emit
except ModuleNotFoundError:  # direct run: python benchmarks/bench_e15_incremental.py
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks._common import emit
from repro.adl.platforms import generic_predictable_multicore
from repro.core import ToolchainConfig
from repro.core.pipeline import Pipeline
from repro.usecases.workloads import edit_block_param, random_pipeline_diagram
from repro.utils.tables import Table
from repro.wcet.cache import WcetAnalysisCache

STAGES = 24
WIDTH = 8
VECTOR_SIZE = 48
SEED = 42
ROUNDS = 3
TARGET_SPEEDUP = 5.0


def _diagram():
    return random_pipeline_diagram(
        stages=STAGES, width=WIDTH, vector_size=VECTOR_SIZE, seed=SEED
    )


def _config():
    return ToolchainConfig(granularity="loop", loop_chunks=6)


def _timed(fn):
    """Run ``fn`` with the GC paused, returning (result, seconds)."""
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - t0
    finally:
        gc.enable()
    return result, seconds


def _run_experiment():
    platform = generic_predictable_multicore(cores=4)
    config = _config()
    rounds = []
    for i in range(ROUNDS):
        edit_seed = 100 + i
        pipe = Pipeline(platform, config, WcetAnalysisCache())
        base, cold_seconds = _timed(lambda: pipe.run(_diagram()))
        # a long-lived session holds its previous run's summary (chained
        # run_incremental calls memoize it); attribute it to the cold side
        base.artifact_summary(pipe.wcet_cache)

        edited = _diagram()
        edited_block = edit_block_param(edited, seed=edit_seed)
        inc, inc_seconds = _timed(lambda: pipe.run_incremental(base, edited))

        ref_diagram = _diagram()
        edit_block_param(ref_diagram, seed=edit_seed)
        ref = Pipeline(platform, config, WcetAnalysisCache()).run(ref_diagram)
        rounds.append(
            {
                "base": base,
                "inc": inc,
                "ref": ref,
                "cold_seconds": cold_seconds,
                "inc_seconds": inc_seconds,
                "edited_block": edited_block,
            }
        )
    return rounds


def test_e15_incremental_single_task_edit(benchmark):
    rounds = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)

    table = Table(
        ["round", "edited block", "tasks", "cold s", "incremental s", "speedup"],
        title="E15 incremental re-analysis of single-block edits "
        f"(s{STAGES}w{WIDTH}, loop granularity)",
    )
    for i, r in enumerate(rounds):
        base, inc, ref = r["base"], r["inc"], r["ref"]

        # bit-identical to a from-scratch run of the edited diagram
        assert inc.schedule.wcet_bound == ref.schedule.wcet_bound
        assert inc.schedule.mapping == ref.schedule.mapping
        assert inc.schedule.order == ref.schedule.order
        assert inc.sequential_bound == ref.sequential_bound
        assert (
            inc.schedule.result.task_effective_wcet
            == ref.schedule.result.task_effective_wcet
        )
        assert inc.schedule.result.task_intervals == ref.schedule.result.task_intervals

        report = inc.artifacts["incremental_report"]
        # exactly the edited region was re-extracted and re-analysed
        assert report.regions_recomputed == 1
        assert report.stages["htg"] == "incremental"
        assert tuple(report.diff.changed_regions) == (r["edited_block"],)
        # the race check replayed the untouched pairs
        assert report.race_pairs_reused > 0
        # the fixed point warm-started and its reuse was certificate-checked
        assert report.warm_fixed_point is not None
        assert report.warm_fixed_point["warm_started"]
        assert report.warm_fixed_point["certified"]

        table.add_row(
            [
                str(i),
                r["edited_block"],
                len(base.htg.leaf_tasks()),
                f"{r['cold_seconds']:.3f}",
                f"{r['inc_seconds']:.3f}",
                f"{r['cold_seconds'] / max(r['inc_seconds'], 1e-9):.1f}x",
            ]
        )

    cold_best = min(r["cold_seconds"] for r in rounds)
    inc_best = min(r["inc_seconds"] for r in rounds)
    speedup = cold_best / max(inc_best, 1e-9)
    table.add_row(
        ["BEST", "", "", f"{cold_best:.3f}", f"{inc_best:.3f}", f"{speedup:.1f}x"]
    )
    emit(table)

    last = rounds[-1]["inc"]
    print(
        f"\nE15: cold {cold_best:.3f}s -> incremental {inc_best:.3f}s "
        f"({speedup:.1f}x) for a 1-block edit of "
        f"{len(rounds[-1]['base'].htg.leaf_tasks())} tasks; "
        f"stages reused={last.cache_stats['stages_reused']}, "
        f"recomputed={last.cache_stats['stages_recomputed']}, "
        f"code-level hits={last.cache_stats['hits']}, "
        f"misses={last.cache_stats['misses']}"
    )

    # acceptance: a single-task edit is a >= 5x wall-clock win
    assert speedup >= TARGET_SPEEDUP, (
        f"incremental run ({inc_best:.3f}s) only {speedup:.1f}x faster than "
        f"cold ({cold_best:.3f}s); need >= {TARGET_SPEEDUP}x"
    )


if __name__ == "__main__":  # pragma: no cover - manual runs
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "-p", "no:cacheprovider"]))
