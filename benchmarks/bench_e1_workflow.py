"""E1 (Fig. 1): the complete ARGO workflow runs end-to-end on every use case.

Reproduces the design workflow of the paper's only figure: model -> IR ->
transformations -> HTG -> scheduling/mapping -> parallel program ->
code-level + system-level WCET.  The benchmark measures the wall-clock cost
of one full flow run per use case and prints the pipeline summary table.
"""

import pytest

from benchmarks._common import emit, run_flow
from repro.utils.tables import Table


@pytest.mark.parametrize("usecase", ["egpws", "weaa", "polka"])
def test_e1_full_workflow(benchmark, usecase):
    def flow():
        return run_flow(usecase, cores=4)[1]

    result = benchmark.pedantic(flow, rounds=1, iterations=1)
    table = Table(
        ["use case", "tasks", "cores used", "sequential WCET", "parallel WCET", "speedup", "sync ops"],
        title=f"E1 workflow summary ({usecase})",
    )
    table.add_row(
        [
            usecase,
            len(result.htg.leaf_tasks()),
            result.schedule.num_cores_used,
            result.sequential_wcet,
            result.system_wcet,
            result.wcet_speedup,
            result.parallel_program.num_sync_ops,
        ]
    )
    emit(table)
    assert result.system_wcet > 0
