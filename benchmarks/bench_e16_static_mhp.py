"""E16: static interference pruning of the system-level fixed point.

PR 9 precomputes a schedule-independent contender pair skeleton before the
fixed point iterates: dependence-ordered pairs (count-preserving, pure
speedup) and shared-footprint-disjoint pairs (tightening, models an
address-aware interconnect) are excluded once, and every per-iteration MHP
pass runs over the surviving pairs only.

This experiment runs the pruned and unpruned analyses on the shipped use
cases and synthetic HTGs up to ~1000 tasks and asserts the two acceptance
properties end to end:

* the pruned bound is **never looser** (makespan and every per-task
  contender count), and
* on the large synthetic configuration pruning yields a measurable win --
  either a strictly tighter bound or a faster fixed point.

The pruned skeleton is certificate-checked
(:mod:`repro.analysis.certify.contention_cert`) in the smoke rows, so the
speed numbers are for *justified* pruning, not blind pair dropping.
"""

import time

try:
    from benchmarks._common import emit
except ModuleNotFoundError:  # direct run: python benchmarks/bench_e16_static_mhp.py
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks._common import emit
from repro.adl.platforms import generic_predictable_multicore
from repro.analysis.certify import (
    build_contention_certificate,
    check_contention_certificate,
)
from repro.analysis.static_mhp import compute_static_mhp
from repro.frontend import compile_diagram
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.scheduling.schedule import default_core_order
from repro.usecases import ALL_USECASES
from repro.usecases.workloads import synthetic_compiled_model
from repro.utils.tables import Table
from repro.wcet import HardwareCostModel, annotate_htg_wcets, system_level_wcet
from repro.wcet.cache import shared_cache

#: name -> (num_kernels, loop_chunks, dependency_probability, cores);
#: None = shipped use case compiled from its diagram
CONFIGS = [
    ("egpws", None),
    ("polka", None),
    ("weaa", None),
    ("synthetic-200", (50, 4, 0.35, 4)),
    ("synthetic-1000", (1000, 1, 0.004, 8)),
]
#: acceptance config: pruning must tighten the bound or speed up the solve
TARGET = "synthetic-1000"


def _build_case(name, params):
    if params is None:
        builder, _ = ALL_USECASES[name]
        model = compile_diagram(builder())
        chunks, cores = 2, 4
        dep_prob = None
    else:
        num_kernels, chunks, dep_prob, cores = params
        model = synthetic_compiled_model(
            num_kernels=num_kernels, vector_size=32,
            dependency_probability=dep_prob, seed=1,
        )
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    mapping = {
        t.task_id: i % cores
        for i, t in enumerate(htg.topological_tasks())
        if not t.is_synthetic
    }
    order = default_core_order(htg, mapping)
    return model, htg, platform, mapping, order


def _time_variant(htg, function, platform, mapping, order, cache, pruned, repeats=2):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        # result_cache=False: time the fixed point, not the memo
        result = system_level_wcet(
            htg, function, platform, mapping, order, cache=cache,
            static_pruning=pruned, result_cache=False,
        )
        best = min(best, time.perf_counter() - t0)
    return result, best


def _sweep():
    rows = []
    cache = shared_cache()
    for name, params in CONFIGS:
        model, htg, platform, mapping, order = _build_case(name, params)
        # warm the code-level analysis cache so both variants time the fixed
        # point itself
        system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)

        base, base_seconds = _time_variant(
            htg, model.entry, platform, mapping, order, cache, pruned=False
        )
        pruned, pruned_seconds = _time_variant(
            htg, model.entry, platform, mapping, order, cache, pruned=True
        )

        assert pruned.makespan <= base.makespan, (
            f"{name}: pruned bound {pruned.makespan} looser than {base.makespan}"
        )
        assert all(
            pruned.task_contenders[tid] <= n
            for tid, n in base.task_contenders.items()
        ), f"{name}: pruning increased a contender count"
        cert = build_contention_certificate(pruned, htg, model.entry)
        report = check_contention_certificate(cert, htg, model.entry)
        assert report.ok, f"{name}: pruned skeleton refuted:\n{report.summary()}"

        relation = compute_static_mhp(htg, model.entry, mapping)
        rows.append(
            (
                name,
                len(mapping),
                relation.candidate_pairs,
                relation.kept_pairs,
                base_seconds,
                pruned_seconds,
                base.makespan,
                pruned.makespan,
            )
        )
    return rows


def test_e16_static_mhp_pruning(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        [
            "case", "tasks", "cand pairs", "kept", "unpruned s", "pruned s",
            "unpruned WCET", "pruned WCET", "delta",
        ],
        title="E16 static interference pruning (pruned vs unpruned fixed point)",
    )
    target_row = None
    for name, tasks, cand, kept, base_s, pruned_s, base_w, pruned_w in rows:
        delta = (base_w - pruned_w) / base_w * 100 if base_w else 0.0
        if name == TARGET:
            target_row = (base_s, pruned_s, base_w, pruned_w)
        table.add_row(
            [
                name, tasks, cand, kept, f"{base_s:.3f}", f"{pruned_s:.3f}",
                base_w, pruned_w, f"{delta:.1f}%",
            ]
        )
    emit(table)

    assert target_row is not None, "acceptance configuration missing from sweep"
    base_s, pruned_s, base_w, pruned_w = target_row
    assert pruned_w < base_w or pruned_s < base_s, (
        "pruning produced neither a tighter bound nor a faster solve at "
        f"{TARGET}: {base_w} -> {pruned_w}, {base_s:.3f}s -> {pruned_s:.3f}s"
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    for row in _sweep():
        print(row)
