"""E17: observability overhead -- tracing must be (nearly) free.

PR 10 added the :mod:`repro.obs` layer: spans, metrics and Perfetto trace
export wired through every analysis layer.  Its contract (see the module
docstring) is that observability never changes results and costs almost
nothing when off:

* **disabled**: every instrumentation site degrades to one ambient-flag
  check (plus a no-op span allocation at coarse sites); this experiment
  microbenches that disabled path and asserts a *generous overcount* of
  per-run guarded calls still costs < 1% of the measured analysis time;
* **enabled**: a traced system-level fixed point on a ~1000-task synthetic
  HTG (the E12 acceptance configuration) must stay within 5% of the
  untraced wall time.  The estimator is the *median of paired
  back-to-back differences*: each repeat times an untraced run
  immediately followed by a traced one, so machine noise and frequency
  drift cancel pairwise instead of biasing one side;
* **bit-identical**: the traced and untraced runs must produce the same
  makespan, intervals, effective WCETs, contender counts and iteration
  count.
"""

import statistics
import time

try:
    from benchmarks._common import emit
except ModuleNotFoundError:  # direct run: python benchmarks/bench_e17_obs_overhead.py
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks._common import emit
from repro import obs
from repro.adl.platforms import generic_predictable_multicore
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.scheduling.schedule import default_core_order
from repro.usecases.workloads import synthetic_compiled_model
from repro.utils.tables import Table
from repro.wcet import HardwareCostModel, annotate_htg_wcets, system_level_wcet
from repro.wcet.cache import shared_cache

#: acceptance thresholds (ISSUE: <1% disabled, <5% enabled)
DISABLED_BUDGET = 0.01
ENABLED_BUDGET = 0.05
#: generous overcount of guarded instrumentation sites hit per analysis run
#: (one system-level run passes ~10 guards -- span entry, metric blocks, one
#: hoisted flag check per iterate() call -- so this is a ~100x overcount)
DISABLED_CALLS_BOUND = 1_000
#: timing repeats per side (paired, median of differences)
REPEATS = 11


def _build_case(num_kernels=1000, chunks=1, dep_prob=0.004, cores=8):
    model = synthetic_compiled_model(
        num_kernels=num_kernels, vector_size=32, dependency_probability=dep_prob, seed=1
    )
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    mapping = {
        t.task_id: i % cores
        for i, t in enumerate(htg.topological_tasks())
        if not t.is_synthetic
    }
    order = default_core_order(htg, mapping)
    return model, htg, platform, mapping, order


def _result_fingerprint(result):
    return (
        result.makespan,
        {tid: (iv.start, iv.end) for tid, iv in result.task_intervals.items()},
        result.task_effective_wcet,
        result.task_contenders,
        result.interference_cycles,
        result.communication_cycles,
        result.iterations,
        result.converged,
    )


def _disabled_call_cost(loops=200_000):
    """Per-call wall time of the disabled instrumentation primitives."""
    previous = obs.set_enabled(False)
    try:
        t0 = time.perf_counter()
        for _ in range(loops):
            obs.obs_enabled()
        flag_cost = (time.perf_counter() - t0) / loops

        t0 = time.perf_counter()
        for _ in range(loops):
            with obs.span("e17.noop", probe=1):
                pass
        span_cost = (time.perf_counter() - t0) / loops
    finally:
        obs.set_enabled(previous)
    return max(flag_cost, span_cost)


def _time_run(htg, function, platform, mapping, order, cache, traced):
    """One timed system-level analysis, traced or untraced."""
    previous = obs.set_enabled(traced)
    try:
        if traced:
            # bound the event buffer across repeats; timing includes the
            # recording cost, which is the point
            obs.tracer().clear()
        t0 = time.perf_counter()
        # result_cache=False: the memo would short-circuit the repeats
        result = system_level_wcet(
            htg, function, platform, mapping, order, cache=cache, result_cache=False
        )
        return result, time.perf_counter() - t0
    finally:
        obs.set_enabled(previous)


def _sweep():
    cache = shared_cache()
    model, htg, platform, mapping, order = _build_case()
    # warm the code-level cache so the repeats time the fixed point itself
    system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)

    # one unmeasured warm-up per side (first-touch allocations, lazy imports)
    untraced_result, _ = _time_run(
        htg, model.entry, platform, mapping, order, cache, traced=False
    )
    traced_result, _ = _time_run(
        htg, model.entry, platform, mapping, order, cache, traced=True
    )
    untraced_times: list[float] = []
    paired_diffs: list[float] = []
    for _ in range(REPEATS):  # paired: each diff sees the same machine state
        untraced_result, untraced_seconds = _time_run(
            htg, model.entry, platform, mapping, order, cache, traced=False
        )
        traced_result, traced_seconds = _time_run(
            htg, model.entry, platform, mapping, order, cache, traced=True
        )
        untraced_times.append(untraced_seconds)
        paired_diffs.append(traced_seconds - untraced_seconds)
    untraced_s = statistics.median(untraced_times)
    extra_s = statistics.median(paired_diffs)

    per_call = _disabled_call_cost()
    return {
        "tasks": len(mapping),
        "iterations": untraced_result.iterations,
        "untraced_s": untraced_s,
        "traced_s": untraced_s + extra_s,
        "per_call_s": per_call,
        "disabled_overhead": (per_call * DISABLED_CALLS_BOUND) / untraced_s,
        "enabled_overhead": extra_s / untraced_s,
        "identical": _result_fingerprint(untraced_result)
        == _result_fingerprint(traced_result),
        "bound": untraced_result.makespan,
    }


def test_e17_obs_overhead(benchmark):
    row = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        [
            "tasks",
            "iterations",
            "untraced s",
            "traced s",
            "enabled ovh",
            "disabled ovh (bound)",
            "WCET bound",
        ],
        title="E17 observability overhead (system-level fixed point)",
    )
    table.add_row(
        [
            row["tasks"],
            row["iterations"],
            f"{row['untraced_s']:.3f}",
            f"{row['traced_s']:.3f}",
            f"{100 * row['enabled_overhead']:.2f}%",
            f"{100 * row['disabled_overhead']:.3f}%",
            row["bound"],
        ]
    )
    emit(table)

    assert row["identical"], "traced and untraced analyses diverged"
    assert row["disabled_overhead"] < DISABLED_BUDGET, (
        f"disabled instrumentation cost bound {100 * row['disabled_overhead']:.2f}% "
        f">= {100 * DISABLED_BUDGET:.0f}% "
        f"({row['per_call_s'] * 1e9:.0f} ns/call x {DISABLED_CALLS_BOUND} calls)"
    )
    assert row["enabled_overhead"] < ENABLED_BUDGET, (
        f"enabled tracing overhead {100 * row['enabled_overhead']:.2f}% "
        f">= {100 * ENABLED_BUDGET:.0f}%"
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    print(_sweep())
