"""E8: exact vs heuristic scheduling -- quality versus search cost.

Claim (paper Section III-C): fine-grain task decomposition makes the NP-hard
scheduling/mapping problem explode, motivating "a combination of exact
techniques and advanced heuristics".  The table compares the branch-and-bound
optimum against the list scheduler and simulated annealing on growing
synthetic task graphs.
"""

import time


from benchmarks._common import emit
from repro.adl.platforms import generic_predictable_multicore
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.scheduling import (
    WcetAwareListScheduler,
    branch_and_bound_schedule,
    simulated_annealing_schedule,
)
from repro.usecases.workloads import synthetic_compiled_model
from repro.utils.tables import Table
from repro.wcet import HardwareCostModel, annotate_htg_wcets

SIZES = [4, 6, 8]


def test_e8_exact_vs_heuristic(benchmark):
    platform = generic_predictable_multicore(cores=2)

    def sweep():
        rows = []
        for kernels in SIZES:
            model = synthetic_compiled_model(num_kernels=kernels, vector_size=32, seed=kernels)
            htg = extract_htg(model, ExtractionOptions(granularity="block"))
            annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
            t0 = time.perf_counter()
            heuristic = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
            t_heuristic = time.perf_counter() - t0
            t0 = time.perf_counter()
            exact, stats = branch_and_bound_schedule(htg, model.entry, platform)
            t_exact = time.perf_counter() - t0
            annealed = simulated_annealing_schedule(htg, model.entry, platform, iterations=40, seed=1)
            rows.append(
                (
                    kernels,
                    exact.wcet_bound,
                    heuristic.wcet_bound,
                    annealed.wcet_bound,
                    heuristic.wcet_bound / exact.wcet_bound,
                    t_exact / max(t_heuristic, 1e-9),
                    stats.nodes_explored,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["tasks", "exact WCET", "list WCET", "SA WCET", "list/exact", "exact/list runtime", "B&B nodes"],
        title="E8 exact vs heuristic scheduling (2 cores, synthetic HTGs)",
    )
    for row in rows:
        table.add_row(list(row))
    emit(table)
    for row in rows:
        # the exact schedule is never worse, the heuristic stays close
        assert row[1] <= row[2] + 1e-6
        assert row[4] <= 1.5
