"""E12: system-level fixed-point iteration cost, scalar vs vectorised MHP.

PR 1 left the system-level analysis with an O(tasks x sharers) Python double
loop deriving the contender counts on *every* fixed-point iteration.  The
vectorised engine sorts each core's sharer window endpoints once per
iteration and answers all overlap queries with two ``numpy.searchsorted``
passes, and the timeline builder now prices the constraint graph once
instead of re-querying the per-edge latency closure per iteration.

This experiment runs both MHP backends of :func:`system_level_wcet` on
synthetic HTGs of ~200-1000 tasks and asserts they are *byte-identical* --
same makespan, same task intervals, same effective WCETs, same contender
counts, same iteration count -- while the vectorised backend is at least 5x
faster at 1000 tasks.
"""

import time

try:
    from benchmarks._common import emit
except ModuleNotFoundError:  # direct run: python benchmarks/bench_e12_fixed_point.py
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks._common import emit
from repro.adl.platforms import generic_predictable_multicore
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.scheduling.schedule import default_core_order
from repro.usecases.workloads import synthetic_compiled_model
from repro.utils.tables import Table
from repro.wcet import HardwareCostModel, annotate_htg_wcets, system_level_wcet
from repro.wcet.cache import shared_cache

#: (num_kernels, loop_chunks, dependency_probability, cores) -> ~tasks
CONFIGS = [
    (50, 4, 0.35, 4),     # ~200 tasks, dense dependences
    (200, 1, 0.010, 8),   # ~200 tasks, sparse
    (500, 1, 0.006, 8),   # ~500 tasks
    (1000, 1, 0.004, 8),  # ~1000 tasks (the acceptance configuration)
]
#: acceptance: the vectorised pass must be >= 5x faster at this task count
TARGET_TASKS = 1000
TARGET_SPEEDUP = 5.0


def _build_case(num_kernels, chunks, dep_prob, cores):
    model = synthetic_compiled_model(
        num_kernels=num_kernels, vector_size=32, dependency_probability=dep_prob, seed=1
    )
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    mapping = {
        t.task_id: i % cores
        for i, t in enumerate(htg.topological_tasks())
        if not t.is_synthetic
    }
    order = default_core_order(htg, mapping)
    return model, htg, platform, mapping, order


def _result_fingerprint(result):
    return (
        result.makespan,
        {tid: (iv.start, iv.end) for tid, iv in result.task_intervals.items()},
        result.task_effective_wcet,
        result.task_contenders,
        result.interference_cycles,
        result.communication_cycles,
        result.iterations,
        result.converged,
    )


def _time_backend(htg, function, platform, mapping, order, cache, backend, repeats=2):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        # result_cache=False: this experiment times the fixed point itself,
        # so the system-level result memo must not short-circuit the repeats
        result = system_level_wcet(
            htg, function, platform, mapping, order, cache=cache,
            mhp_backend=backend, result_cache=False,
        )
        best = min(best, time.perf_counter() - t0)
    return result, best


def _sweep():
    rows = []
    cache = shared_cache()
    for num_kernels, chunks, dep_prob, cores in CONFIGS:
        model, htg, platform, mapping, order = _build_case(num_kernels, chunks, dep_prob, cores)
        num_tasks = len(mapping)
        # warm the analysis cache so both backends time the fixed point, not
        # the (identical) code-level analyses
        system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)

        scalar, scalar_seconds = _time_backend(
            htg, model.entry, platform, mapping, order, cache, "scalar"
        )
        vector, vector_seconds = _time_backend(
            htg, model.entry, platform, mapping, order, cache, "numpy"
        )
        assert _result_fingerprint(scalar) == _result_fingerprint(vector), (
            f"vectorised MHP diverges from the double loop at {num_tasks} tasks"
        )
        rows.append(
            (
                num_tasks,
                cores,
                scalar.iterations,
                scalar_seconds,
                vector_seconds,
                scalar.makespan,
            )
        )
    return rows


def test_e12_fixed_point_scaling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        ["tasks", "cores", "iterations", "scalar s", "vectorised s", "speedup", "WCET bound"],
        title="E12 system-level fixed point (scalar vs vectorised MHP)",
    )
    target_speedup = None
    for num_tasks, cores, iters, scalar_s, vector_s, bound in rows:
        speedup = scalar_s / vector_s if vector_s > 0 else float("inf")
        if num_tasks >= TARGET_TASKS * 0.9:
            target_speedup = speedup
        table.add_row(
            [num_tasks, cores, iters, f"{scalar_s:.3f}", f"{vector_s:.3f}", f"{speedup:.1f}x", bound]
        )
    emit(table)

    assert target_speedup is not None, "no configuration reached the acceptance task count"
    assert target_speedup >= TARGET_SPEEDUP, (
        f"only {target_speedup:.1f}x at ~{TARGET_TASKS} tasks"
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    for row in _sweep():
        print(row)
