"""E11: list-scheduler scaling on large synthetic HTGs (before/after).

The seed implementation of :class:`WcetAwareListScheduler` re-ran the
code-level WCET analysis for every (task, candidate core) pair, scanned the
whole ready pool per placement step, computed an unused transitive closure
and re-scanned every edge list and busy-interval list inside the placement
loop.  This experiment reproduces that implementation verbatim (as
``_seed_reference_schedule`` below, with the upward-rank communication bugfix
applied so both sides price communication identically) and compares it
against the memoized + heap/bisect rewrite on synthetic HTGs of 50-500 tasks
and 2-16 cores.

The rewrite must be bound-preserving: each row asserts the analysed makespan
is identical.  The acceptance target is a >=5x speed-up at ~200 tasks on 4
cores; the seed reference is skipped above ``SEED_TASK_LIMIT`` tasks where it
becomes unreasonably slow.
"""

import time

try:
    from benchmarks._common import emit
except ModuleNotFoundError:  # direct run: python benchmarks/bench_e11_scaling.py
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks._common import emit
from repro.adl.platforms import generic_predictable_multicore
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.scheduling import WcetAwareListScheduler
from repro.usecases.workloads import synthetic_compiled_model
from repro.utils.intervals import Interval
from repro.utils.tables import Table
from repro.wcet import HardwareCostModel, annotate_htg_wcets
from repro.wcet.code_level import analyze_task_wcet

#: (num_kernels, loop_chunks, cores) -> roughly 4*num_kernels tasks
CONFIGS = [
    (13, 4, 2),
    (25, 4, 4),
    (50, 4, 4),
    (50, 4, 8),
    (88, 4, 8),
    (125, 4, 16),
]
#: seed reference is only run below this task count (it is quadratic)
SEED_TASK_LIMIT = 220


def _seed_predecessors(htg, task_id):
    """Seed-era adjacency query: a linear scan over the whole edge list."""
    return [e.src for e in htg.edges if e.dst == task_id]


def _seed_edge(htg, src, dst):
    for e in htg.edges:
        if e.src == src and e.dst == dst:
            return e
    return None


def _seed_build_timeline(htg, mapping, order, effective_wcet, comm_delay):
    """The seed's quadratic worklist timeline (re-scans pending every pass)."""
    position = {tid: (core, idx) for core, tids in order.items() for idx, tid in enumerate(tids)}
    finish, start = {}, {}
    remaining = [t.task_id for t in htg.leaf_tasks()]
    pending = set(remaining)
    guard = 0
    while pending:
        guard += 1
        assert guard <= len(remaining) ** 2 + 10
        progressed = False
        for tid in list(pending):
            core, idx = position[tid]
            preds = [p for p in _seed_predecessors(htg, tid) if p in pending or p in finish]
            if any(p in pending for p in preds):
                continue
            if idx > 0:
                prev = order[core][idx - 1]
                if prev in pending:
                    continue
                ready_core = finish[prev]
            else:
                ready_core = 0.0
            ready_deps = 0.0
            for p in preds:
                delay = comm_delay(p, tid) if mapping[p] != core else 0.0
                ready_deps = max(ready_deps, finish[p] + delay)
            s = max(ready_core, ready_deps)
            start[tid] = s
            finish[tid] = s + effective_wcet[tid]
            pending.discard(tid)
            progressed = True
        assert progressed
    intervals = {tid: Interval(start[tid], finish[tid]) for tid in start}
    makespan = max((iv.end for iv in intervals.values()), default=0.0)
    return intervals, makespan


def _seed_system_level_bound(htg, function, platform, mapping, order, max_iterations=25):
    """The seed's system-level analysis: uncached re-analysis + MHP fixed point."""
    leaf_ids = [t.task_id for t in htg.leaf_tasks()]
    models = {
        core_id: HardwareCostModel(platform, core_id)
        for core_id in {mapping[tid] for tid in leaf_ids}
    }
    base_wcet, shared_accesses = {}, {}
    for tid in leaf_ids:
        breakdown = analyze_task_wcet(htg.task(tid), function, models[mapping[tid]])
        base_wcet[tid] = breakdown.total
        shared_accesses[tid] = breakdown.shared_accesses

    comm_contenders = max(0, platform.num_cores - 1)
    comm_cache = {}

    def comm_delay(src, dst):
        key = (src, dst)
        if key not in comm_cache:
            edge = _seed_edge(htg, src, dst)
            payload = edge.payload_bytes if edge is not None else 0
            comm_cache[key] = (
                platform.communication_latency(payload, mapping[src], mapping[dst], comm_contenders)
                if payload
                else 0.0
            )
        return comm_cache[key]

    effective = dict(base_wcet)
    contenders = {tid: 0 for tid in leaf_ids}
    makespan, converged = 0.0, False
    for _ in range(max_iterations):
        intervals, makespan = _seed_build_timeline(htg, mapping, order, effective, comm_delay)
        new_contenders = {}
        for tid in leaf_ids:
            other_cores = set()
            for other in leaf_ids:
                if other == tid or mapping[other] == mapping[tid]:
                    continue
                if shared_accesses[other] == 0:
                    continue
                if intervals[tid].overlaps(intervals[other]):
                    other_cores.add(mapping[other])
            new_contenders[tid] = len(other_cores)
        new_effective = {
            tid: base_wcet[tid]
            + shared_accesses[tid] * models[mapping[tid]].shared_access_penalty(new_contenders[tid])
            for tid in leaf_ids
        }
        if new_effective == effective and new_contenders == contenders:
            converged = True
            break
        effective, contenders = new_effective, new_contenders
    if not converged:
        worst = {
            tid: base_wcet[tid]
            + shared_accesses[tid] * models[mapping[tid]].shared_access_penalty(comm_contenders)
            for tid in leaf_ids
        }
        effective = {tid: max(effective[tid], worst[tid]) for tid in leaf_ids}
        _, makespan = _seed_build_timeline(htg, mapping, order, effective, comm_delay)
    return makespan


def _seed_reference_schedule(htg, function, platform):
    """The seed list scheduler, reproduced verbatim for the comparison.

    Identical to the pre-rewrite implementation -- uncached per-placement
    analyses, linear ready-pool and edge-list scans, full interval scans,
    dead transitive closure, quadratic system-level timeline -- except that
    ``_upward_ranks`` prices communication with the fixed worst-case call,
    so placements match the rewritten scheduler.
    """
    models = {}

    def model(core_id):
        if core_id not in models:
            models[core_id] = HardwareCostModel(platform, core_id)
        return models[core_id]

    def task_cost(tid, core_id):
        return analyze_task_wcet(htg.task(tid), function, model(core_id)).total

    core_ids = [c.core_id for c in platform.cores]

    # upward ranks (seed structure, fixed communication call)
    cost = {t.task_id: task_cost(t.task_id, core_ids[0]) for t in htg.leaf_tasks()}
    avg_comm = {}
    if platform.num_cores > 1:
        for edge in htg.edges:
            if edge.payload_bytes:
                avg_comm[(edge.src, edge.dst)] = platform.communication_latency(
                    edge.payload_bytes, 0, 1, platform.num_cores - 1
                )
    ranks = {}
    for task in reversed(htg.topological_tasks()):
        if task.is_synthetic:
            continue
        tid = task.task_id
        best_succ = 0.0
        for succ in htg.successors(tid):
            if succ not in cost:
                continue
            best_succ = max(best_succ, ranks.get(succ, 0.0) + avg_comm.get((tid, succ), 0.0))
        ranks[tid] = cost[tid] + best_succ

    tasks = sorted(htg.leaf_tasks(), key=lambda t: (-ranks[t.task_id], t.task_id))
    mapping = {}
    order = {c: [] for c in core_ids}
    finish = {}
    core_busy = {c: [] for c in core_ids}
    core_ready = {c: 0.0 for c in core_ids}
    dependent = htg.dependent_pairs()  # the seed's dead O(n^2) computation

    placed = set()
    ready_pool = list(tasks)
    while ready_pool:
        candidate = None
        for task in ready_pool:
            preds = _seed_predecessors(htg, task.task_id)
            if all(p in placed or htg.task(p).is_synthetic for p in preds):
                candidate = task
                break
        if candidate is None:
            candidate = ready_pool[0]
        ready_pool.remove(candidate)
        tid = candidate.task_id

        best_core = core_ids[0]
        best_finish = float("inf")
        best_start = 0.0
        for core_id in core_ids:
            ready_deps = 0.0
            for pred in _seed_predecessors(htg, tid):
                if pred not in finish:
                    continue
                delay = 0.0
                if mapping.get(pred) != core_id:
                    edge = _seed_edge(htg, pred, tid)
                    payload = edge.payload_bytes if edge else 0
                    if payload:
                        delay = platform.communication_latency(
                            payload, mapping[pred], core_id, max(0, len(core_ids) - 1)
                        )
                ready_deps = max(ready_deps, finish[pred] + delay)
            start = max(core_ready[core_id], ready_deps)
            duration = task_cost(tid, core_id)
            window = Interval(start, start + max(duration, 1e-9))
            busy_cores = sum(
                1
                for other_core, intervals in core_busy.items()
                if other_core != core_id and any(iv.overlaps(window) for iv in intervals)
            )
            penalty = 0.0
            if candidate.total_shared_accesses:
                penalty = (
                    candidate.total_shared_accesses
                    * model(core_id).shared_access_penalty(busy_cores)
                )
            candidate_finish = start + duration + penalty
            if candidate_finish < best_finish - 1e-9:
                best_finish = candidate_finish
                best_core = core_id
                best_start = start

        mapping[tid] = best_core
        order[best_core].append(tid)
        finish[tid] = best_finish
        core_ready[best_core] = best_finish
        core_busy[best_core].append(Interval(best_start, best_finish))
        placed.add(tid)

    order = {c: tids for c, tids in order.items() if tids}
    bound = _seed_system_level_bound(htg, function, platform, mapping, order)
    del dependent
    return mapping, order, bound


def _build_htg(num_kernels, chunks, cores):
    model = synthetic_compiled_model(num_kernels=num_kernels, vector_size=32, seed=1)
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    return model, htg, platform


def _sweep():
    rows = []
    for num_kernels, chunks, cores in CONFIGS:
        model, htg, platform = _build_htg(num_kernels, chunks, cores)
        num_tasks = len(htg.leaf_tasks())

        t0 = time.perf_counter()
        new = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        new_seconds = time.perf_counter() - t0

        if num_tasks <= SEED_TASK_LIMIT:
            t0 = time.perf_counter()
            seed_mapping, seed_order, seed_bound = _seed_reference_schedule(
                htg, model.entry, platform
            )
            seed_seconds = time.perf_counter() - t0
            assert seed_bound == new.wcet_bound, (
                f"rewrite is not bound-preserving at {num_tasks} tasks / {cores} cores: "
                f"{seed_bound} != {new.wcet_bound}"
            )
            assert seed_mapping == new.mapping
            assert seed_order == new.order
        else:
            seed_seconds = None
        rows.append((num_tasks, cores, seed_seconds, new_seconds, new.wcet_bound))
    return rows


def test_e11_scheduler_scaling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        ["tasks", "cores", "seed seconds", "new seconds", "speedup", "WCET bound"],
        title="E11 list-scheduler scaling (seed vs memoized/heap rewrite)",
    )
    target_speedup = None
    for num_tasks, cores, seed_seconds, new_seconds, bound in rows:
        speedup = seed_seconds / new_seconds if seed_seconds is not None else None
        if seed_seconds is not None and num_tasks >= 150 and cores == 4:
            target_speedup = speedup
        table.add_row([
            num_tasks,
            cores,
            f"{seed_seconds:.3f}" if seed_seconds is not None else "n/a",
            f"{new_seconds:.3f}",
            f"{speedup:.1f}x" if speedup is not None else "n/a",
            bound,
        ])
    emit(table)

    # acceptance: >=5x on the ~200-task / 4-core configuration
    assert target_speedup is not None
    assert target_speedup >= 5.0, f"only {target_speedup:.1f}x at ~200 tasks / 4 cores"


if __name__ == "__main__":  # pragma: no cover - manual run
    for row in _sweep():
        print(row)
