"""E3: the MHP-based system-level bound is tighter than contention-oblivious.

Claim (paper Section II-D / III-C): without a high-level view of the parallel
program, a WCET analysis must assume maximal interference on every shared
access; the ARGO system-level analysis identifies which code snippets may
actually happen in parallel and is therefore tighter.
"""

import pytest

from benchmarks._common import emit, run_flow
from repro.utils.tables import Table
from repro.wcet.system_level import contention_oblivious_bound


@pytest.mark.parametrize("usecase", ["egpws", "polka"])
def test_e3_tightness(benchmark, usecase):
    def analyse():
        _, result = run_flow(usecase, cores=4)
        schedule = result.schedule
        naive = contention_oblivious_bound(
            result.htg, result.model.entry, schedule_platform(result), schedule.mapping, schedule.order
        )
        return result, naive

    def schedule_platform(result):
        from repro.adl.platforms import generic_predictable_multicore

        return generic_predictable_multicore(cores=4)

    result, naive = benchmark.pedantic(analyse, rounds=1, iterations=1)
    precise = result.system_wcet
    table = Table(
        ["use case", "contention-oblivious bound", "MHP-based bound", "tightness gain"],
        title="E3 system-level WCET tightness",
    )
    table.add_row([usecase, naive, precise, naive / precise if precise else 1.0])
    emit(table)
    assert naive >= precise - 1e-6
