"""E6: WCET bounds are safe; measured execution never exceeds them.

Claim (paper Section I): "to be safe, WCET estimates have to be higher than
or equal to any possible execution time. In addition, to be useful they have
to be as close as possible to the actual WCET (tightness)."  The benchmark
simulates each use case on many random inputs and reports the worst observed
makespan against the guaranteed bound.
"""

import pytest

from benchmarks._common import emit, run_flow
from repro.usecases import ALL_USECASES
from repro.utils.tables import Table

RUNS = 8


@pytest.mark.parametrize("usecase", ["egpws", "weaa", "polka"])
def test_e6_bound_safety_and_tightness(benchmark, usecase):
    _, inputs_fn = ALL_USECASES[usecase]
    toolchain, result = run_flow(usecase, cores=4)

    def measure():
        observed = []
        for seed in range(RUNS):
            sim = toolchain.simulate(result, inputs_fn(seed=seed))
            observed.append(sim.makespan)
        return observed

    observed = benchmark.pedantic(measure, rounds=1, iterations=1)
    worst = max(observed)
    table = Table(
        ["use case", "guaranteed WCET", "worst observed", "mean observed", "tightness (bound/worst)"],
        title="E6 bound safety over random inputs",
    )
    table.add_row(
        [usecase, result.system_wcet, worst, sum(observed) / len(observed), result.system_wcet / worst]
    )
    emit(table)
    assert all(m <= result.system_wcet + 1e-6 for m in observed)
