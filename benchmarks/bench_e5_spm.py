"""E5: WCET-directed scratchpad allocation reduces the code-level WCET.

Claim (paper Sections II-B, III-B, III-C / reference [6]): scratchpad
memories managed by the compiler give tighter WCETs than shared-memory-only
(or cache-based) data placement.  The table sweeps the scratchpad capacity
and reports the single-core WCET of the POLKA step function.
"""


from benchmarks._common import emit
from repro.adl.platforms import generic_predictable_multicore
from repro.frontend import compile_diagram
from repro.transforms import ScratchpadAllocationPass
from repro.usecases import build_polka_diagram
from repro.utils.tables import Table
from repro.wcet import HardwareCostModel, analyze_function_wcet

CAPACITIES_KIB = [0, 1, 4, 16, 64]


def test_e5_scratchpad_allocation(benchmark):
    platform = generic_predictable_multicore(cores=1)
    model_cost = HardwareCostModel(platform, 0)

    def sweep():
        rows = []
        for capacity_kib in CAPACITIES_KIB:
            compiled = compile_diagram(build_polka_diagram(pixels=64))
            function = compiled.entry
            ScratchpadAllocationPass(
                capacity_bytes=capacity_kib * 1024,
                shared_latency=platform.shared_memory.read_latency,
                spm_latency=platform.cores[0].scratchpad.read_latency,
            ).run(function)
            wcet = analyze_function_wcet(function, model_cost).total
            rows.append((capacity_kib, wcet))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = rows[0][1]
    table = Table(
        ["SPM capacity (KiB)", "code-level WCET", "reduction vs no SPM"],
        title="E5 scratchpad allocation sweep (POLKA, 1 core)",
    )
    for capacity, wcet in rows:
        table.add_row([capacity, wcet, f"{100 * (baseline - wcet) / baseline:.1f}%"])
    emit(table)
    # WCET must be monotonically non-increasing with capacity and strictly
    # better once a useful amount of SPM is available.
    wcets = [w for _, w in rows]
    assert all(a >= b - 1e-6 for a, b in zip(wcets, wcets[1:]))
    assert wcets[-1] < baseline
