"""E2: WCET-aware parallelization reduces the guaranteed WCET vs sequential.

Claim (paper Sections I-II): automatically parallelizing the model and
accounting for contention yields a *guaranteed* WCET below the single-core
bound, and the benefit grows with the number of cores.  The table reports the
WCET speed-up over the sequential bound for 1..8 cores per use case.
"""

import pytest

from benchmarks._common import emit, run_flow
from repro.utils.tables import Table

CORE_COUNTS = [1, 2, 4, 8]


@pytest.mark.parametrize("usecase", ["egpws", "weaa", "polka"])
def test_e2_wcet_speedup(benchmark, usecase):
    def sweep():
        rows = []
        for cores in CORE_COUNTS:
            _, result = run_flow(usecase, cores=cores)
            rows.append((cores, result.sequential_wcet, result.system_wcet, result.wcet_speedup))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["cores", "sequential WCET", "parallel WCET", "WCET speedup"],
        title=f"E2 WCET speed-up vs core count ({usecase})",
    )
    for cores, seq, par, speedup in rows:
        table.add_row([cores, seq, par, speedup])
    emit(table)

    speedups = {cores: s for cores, _, _, s in rows}
    # parallelization must help on multi-core configurations
    assert speedups[4] > 1.1
    assert speedups[4] >= speedups[1] - 1e-9
