"""E10: iNoC-style WRR QoS gives bounded, contender-scaled worst-case latency.

Claim (paper Sections III-B, IV-C / reference [12]): the target interconnects
provide "(i) worst-case delay for gaining access ... (ii) worst-case delay for
copying the information", and the iNoC's weighted-round-robin routers give
bandwidth and latency guarantees needed for system-level WCET analysis.
The tables sweep contender counts on the NoC and compare bus arbiters.
"""

import pytest

from benchmarks._common import emit
from repro.adl import MeshNoC, RoundRobinBus, TDMBus
from repro.utils.tables import Table

CONTENDERS = [0, 1, 2, 4, 8]
PACKET_BYTES = 256


def test_e10_noc_latency_guarantees(benchmark):
    noc = MeshNoC(width=4, height=4)
    rr = RoundRobinBus()
    tdm = TDMBus(num_slots=16)

    def sweep():
        rows = []
        for contenders in CONTENDERS:
            noc_lat = noc.worst_case_packet_latency(PACKET_BYTES, 0, 15, contenders)
            rr_lat = rr.worst_case_transfer_delay(PACKET_BYTES, contenders)
            tdm_lat = tdm.worst_case_transfer_delay(PACKET_BYTES, contenders)
            rows.append((contenders, noc_lat, rr_lat, tdm_lat))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["contenders", "iNoC WRR latency", "RR bus latency", "TDM bus latency"],
        title=f"E10 worst-case transfer latency, {PACKET_BYTES}-byte packet (corner-to-corner on 4x4 mesh)",
    )
    for row in rows:
        table.add_row(list(row))
    emit(table)

    noc_lats = [r[1] for r in rows]
    rr_lats = [r[2] for r in rows]
    tdm_lats = [r[3] for r in rows]
    # latency guarantees: monotone in contenders, finite, TDM flat
    assert all(a <= b + 1e-9 for a, b in zip(noc_lats, noc_lats[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(rr_lats, rr_lats[1:]))
    assert len(set(tdm_lats)) == 1
    # guaranteed bandwidth fraction behaves like WRR weights
    assert noc.guaranteed_bandwidth(2, 4) == pytest.approx(0.5)


def test_e10_wrr_weight_isolation(benchmark):
    """Higher WRR weight -> lower worst-case waiting (QoS isolation)."""
    noc = MeshNoC(width=2, height=2)

    def measure():
        low = noc.worst_case_packet_latency(PACKET_BYTES, 0, 3, contenders=4, weight=1)
        high = noc.worst_case_packet_latency(PACKET_BYTES, 0, 3, contenders=4, weight=4)
        return low, high

    low, high = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = Table(["flow weight", "worst-case latency"], title="E10b WRR weight isolation")
    table.add_row([1, low])
    table.add_row([4, high])
    emit(table)
    assert high <= low
