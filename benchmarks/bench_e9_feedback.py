"""E9: iterative cross-layer feedback improves the WCET over one-shot runs.

Claim (paper Section II-E): feeding WCET information back to the earlier
compilation stages ("iterative optimization through cross layer programming")
lets the flow refine granularity and contention handling; the guaranteed WCET
after feedback is never worse and often better than the one-shot result.
"""

import pytest

from benchmarks._common import emit
from repro.adl.platforms import generic_predictable_multicore
from repro.core import ArgoToolchain, ToolchainConfig
from repro.core.feedback import CrossLayerFeedback
from repro.usecases import ALL_USECASES
from repro.utils.tables import Table


@pytest.mark.parametrize("usecase", ["egpws", "polka"])
def test_e9_feedback_iterations(benchmark, usecase):
    builder, _ = ALL_USECASES[usecase]
    platform = generic_predictable_multicore(cores=4)

    def optimize():
        one_shot = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2)).run(builder())
        chain = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2, feedback_iterations=3))
        feedback = CrossLayerFeedback(chain)
        tuned = feedback.optimize(builder())
        return one_shot, tuned, feedback

    one_shot, tuned, feedback = benchmark.pedantic(optimize, rounds=1, iterations=1)
    table = Table(
        ["use case", "one-shot WCET", "after feedback", "improvement", "configs explored"],
        title="E9 cross-layer feedback",
    )
    table.add_row(
        [
            usecase,
            one_shot.system_wcet,
            tuned.system_wcet,
            f"{100 * (one_shot.system_wcet - tuned.system_wcet) / one_shot.system_wcet:.1f}%",
            len(feedback.history),
        ]
    )
    emit(table)
    assert tuned.system_wcet <= one_shot.system_wcet + 1e-6
    assert len(feedback.history) >= 2
