"""Shared fixtures and helpers for the experiment benchmarks.

Every ``bench_eN_*.py`` module regenerates one experiment of EXPERIMENTS.md.
The paper itself publishes no numeric tables (it is a project overview paper
with a single workflow figure), so each experiment corresponds to a claim in
the text; the printed tables are the reproduction's quantitative record.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.adl.platforms import generic_predictable_multicore  # noqa: E402
from repro.core import ArgoToolchain, ToolchainConfig  # noqa: E402
from repro.usecases import ALL_USECASES  # noqa: E402


def run_flow(usecase: str, cores: int = 4, **config_kwargs):
    """Run the full ARGO flow on one use case and return the result."""
    builder, _ = ALL_USECASES[usecase]
    platform = generic_predictable_multicore(cores=cores)
    config = ToolchainConfig(**{"loop_chunks": min(4, cores), **config_kwargs})
    toolchain = ArgoToolchain(platform, config)
    return toolchain, toolchain.run(builder())


def emit(table) -> None:
    """Print an experiment table underneath the pytest-benchmark output."""
    print()
    print(table.render())



