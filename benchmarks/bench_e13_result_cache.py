"""E13: warm-sweep wall clock with the two-tier content-addressed cache.

PRs 1-2 made *code-level* analyses free on repetition, but every repeated
identical (diagram, platform, config) case still re-ran the system-level
fixed point and the scheduler's placement work from scratch.  The
system-level result tier (:class:`repro.wcet.cache.SystemResultCache`,
reached through ``WcetAnalysisCache.system_results``) memoizes the whole
fixed-point outcome on disk, keyed by the mapped-task fingerprints, the
mapping/order, the platform's contention signature and the fixed-point
knobs.

This experiment runs one design-space sweep twice against the same fresh
cache directory, using *fresh cache instances* for the warm pass exactly as
a new process would:

* the warm pass must perform **zero** system-level fixed points and zero
  code-level re-analyses (every case is served from the disk tiers),
* its WCET bounds must be bit-identical to the cold pass, and
* its wall clock must beat the cold pass.
"""

import shutil
import tempfile
import time
from pathlib import Path

try:
    from benchmarks._common import emit
except ModuleNotFoundError:  # direct run: python benchmarks/bench_e13_result_cache.py
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks._common import emit
from repro.adl.platforms import generic_predictable_multicore
from repro.core import SweepCase, ToolchainConfig, sweep
from repro.usecases import build_egpws_diagram, build_polka_diagram
from repro.usecases.workloads import random_pipeline_diagram
from repro.utils.tables import Table
from repro.wcet.cache import WcetAnalysisCache, read_cache_dir_stats


def _grid(platform):
    diagrams = [
        build_egpws_diagram(lookahead=16),
        build_polka_diagram(pixels=48),
        random_pipeline_diagram(stages=6, width=3, vector_size=32, seed=3),
    ]
    configs = [
        # the list scheduler runs one fixed point per case ...
        ToolchainConfig(loop_chunks=2, scheduler="wcet_list"),
        ToolchainConfig(loop_chunks=4, scheduler="wcet_list"),
        # ... while simulated annealing runs one per candidate mapping
        # (deterministic under the seed), so a warm sweep skips hundreds
        ToolchainConfig(loop_chunks=2, scheduler="simulated_annealing", seed=7),
    ]
    return [
        SweepCase(
            diagram=diagram,
            platform=platform,
            config=config,
            label=f"{config.scheduler}/chunks={config.loop_chunks}",
        )
        for diagram in diagrams
        for config in configs
    ]


def _run_pass(cache_dir: Path, platform):
    """One in-process sweep through a *fresh* cache instance (cold process)."""
    cache = WcetAnalysisCache.open(cache_dir)
    t0 = time.perf_counter()
    result = sweep(_grid(platform), cache=cache, cache_dir=str(cache_dir))
    seconds = time.perf_counter() - t0
    return result, seconds, cache


def _cold_warm():
    platform = generic_predictable_multicore(cores=4)
    cache_dir = Path(tempfile.mkdtemp(prefix="e13-result-cache-"))
    try:
        cold, cold_seconds, cold_cache = _run_pass(cache_dir, platform)
        warm, warm_seconds, warm_cache = _run_pass(cache_dir, platform)
        disk = read_cache_dir_stats(cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return cold, cold_seconds, cold_cache, warm, warm_seconds, warm_cache, disk


def test_e13_warm_sweep_result_cache(benchmark):
    cold, cold_seconds, cold_cache, warm, warm_seconds, warm_cache, disk = (
        benchmark.pedantic(_cold_warm, rounds=1, iterations=1)
    )

    assert cold.ok and warm.ok
    table = Table(
        ["diagram", "config", "WCET bound", "cold s", "warm s"],
        title="E13 warm sweep through the system-level result cache",
    )
    for a, b in zip(cold, warm):
        # the memoized system-level results must be bit-identical
        assert (a.system_wcet, a.sequential_wcet) == (b.system_wcet, b.sequential_wcet)
        table.add_row(
            [
                a.diagram_name,
                a.label,
                a.system_wcet,
                f"{a.seconds:.3f}",
                f"{b.seconds:.3f}",
            ]
        )
    table.add_row(["TOTAL", "", "", f"{cold_seconds:.3f}", f"{warm_seconds:.3f}"])
    emit(table)

    sys_cold = cold_cache.system_results.stats
    sys_warm = warm_cache.system_results.stats
    print(
        f"\nE13: cold {cold_seconds:.3f}s ({sys_cold.misses} fixed points, "
        f"{cold_cache.stats.misses} code-level analyses) -> "
        f"warm {warm_seconds:.3f}s ({sys_warm.misses} fixed points, "
        f"{warm_cache.stats.misses} code-level analyses), "
        f"speedup {cold_seconds / max(warm_seconds, 1e-9):.1f}x; "
        f"{disk['entries']} code + {disk['system']['entries']} system entries on disk"
    )

    # the cold pass actually ran the fixed points (the annealing cases run
    # one per candidate mapping) and persisted them
    assert sys_cold.misses >= len(cold)
    assert disk["system"]["entries"] >= len(cold)
    # acceptance: a warm identical sweep performs ZERO system-level
    # fixed-point iterations and zero code-level re-analyses
    assert sys_warm.misses == 0
    assert sys_warm.disk_hits >= len(warm)
    assert warm_cache.stats.misses == 0
    # and the cache is a wall-clock win, not just a counter win
    assert warm_seconds < cold_seconds, (
        f"warm sweep ({warm_seconds:.3f}s) not faster than cold ({cold_seconds:.3f}s)"
    )


if __name__ == "__main__":  # pragma: no cover - manual runs
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "-p", "no:cacheprovider"]))
