"""E14: proof-carrying results -- checker overhead on the shipped use cases.

PR 7 added certificate chains: every pipeline run can emit a schedule
certificate, a fixed-point certificate and an IPET certificate, each
re-validated by an independent checker
(:mod:`repro.analysis.certify`).  The checkers are single cheap passes by
design -- re-validation must be affordable on every CI run, not a
once-a-release audit.

This experiment runs the full cold pipeline on each built-in use case,
builds the certificate chain once, then times the **check pass** (the three
``check_*`` functions, which is the work a consumer of untrusted results
repeats) against the end-to-end analysis wall clock.  Witness construction
is reported alongside for context; it includes an independent IPET LP
solve, which is producer-side work a certifying toolchain amortizes into
its normal WCET analysis.

Acceptance: every chain is accepted, and checker overhead stays under 5%
of the end-to-end analysis time on every use case.
"""

import time
from pathlib import Path

try:
    from benchmarks._common import emit
except ModuleNotFoundError:  # direct run: python benchmarks/bench_e14_certify.py
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks._common import emit
from repro.adl.platforms import generic_predictable_multicore
from repro.analysis.certify import certify_pipeline_result
from repro.analysis.certify.fixed_point_cert import check_fixed_point_certificate
from repro.analysis.certify.ipet_cert import check_ipet_certificate
from repro.analysis.certify.schedule_cert import check_schedule_certificate
from repro.core import ToolchainConfig
from repro.core.pipeline import run_pipeline
from repro.usecases import ALL_USECASES
from repro.utils.tables import Table
from repro.wcet.cache import WcetAnalysisCache

#: acceptance threshold: checking may cost at most this fraction of one
#: end-to-end analysis run
MAX_CHECK_RATIO = 0.05

_PIPELINE_ROUNDS = 3  # best-of-N to keep the denominator honest
_CHECK_BATCHES = 5  # best-of batches: the numerator gets the same treatment
_CHECK_REPS = 10  # the check pass is sub-millisecond; average within a batch


def _measure_usecase(name: str):
    builder, _ = ALL_USECASES[name]
    diagram = builder()
    platform = generic_predictable_multicore(cores=4)

    pipeline_seconds = float("inf")
    for _ in range(_PIPELINE_ROUNDS):
        t0 = time.perf_counter()
        result = run_pipeline(
            diagram, platform, ToolchainConfig(), wcet_cache=WcetAnalysisCache()
        )
        pipeline_seconds = min(pipeline_seconds, time.perf_counter() - t0)

    t0 = time.perf_counter()
    chain = certify_pipeline_result(result)
    build_seconds = time.perf_counter() - t0

    function = result.model.entry
    htg = result.htg
    check_seconds = float("inf")
    for _ in range(_CHECK_BATCHES):
        t0 = time.perf_counter()
        for _ in range(_CHECK_REPS):
            schedule_report = check_schedule_certificate(chain.schedule, htg, platform)
            fp_report = check_fixed_point_certificate(chain.fixed_point, htg, platform)
            ipet_report = check_ipet_certificate(chain.ipet, function=function)
        check_seconds = min(
            check_seconds, (time.perf_counter() - t0) / _CHECK_REPS
        )

    accepted = not any(
        r.count("error") for r in (schedule_report, fp_report, ipet_report)
    )
    return {
        "usecase": name,
        "pipeline_s": pipeline_seconds,
        "build_s": build_seconds,
        "check_s": check_seconds,
        "ratio": check_seconds / pipeline_seconds,
        "chain_ok": chain.ok,
        "recheck_ok": accepted,
    }


def _measure_all():
    return [_measure_usecase(name) for name in ALL_USECASES]


def test_e14_certify_overhead(benchmark):
    rows = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    table = Table(
        ["use case", "pipeline ms", "witness ms", "check ms", "check %", "accepted"],
        title="E14 certificate checker overhead vs end-to-end analysis",
    )
    for row in rows:
        table.add_row(
            [
                row["usecase"],
                f"{row['pipeline_s'] * 1e3:.1f}",
                f"{row['build_s'] * 1e3:.2f}",
                f"{row['check_s'] * 1e3:.2f}",
                f"{row['ratio'] * 100:.2f}",
                str(row["chain_ok"] and row["recheck_ok"]),
            ]
        )
    emit(table)

    for row in rows:
        # every shipped use case certifies clean ...
        assert row["chain_ok"], f"{row['usecase']}: certificate chain rejected"
        assert row["recheck_ok"], f"{row['usecase']}: re-check rejected the chain"
        # ... and re-checking is cheap enough to run on every CI pass
        assert row["ratio"] < MAX_CHECK_RATIO, (
            f"{row['usecase']}: check pass took {row['ratio'] * 100:.2f}% of the "
            f"analysis wall clock (limit {MAX_CHECK_RATIO * 100:.0f}%)"
        )


if __name__ == "__main__":  # pragma: no cover - manual runs
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "-p", "no:cacheprovider"]))
