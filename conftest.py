"""Repository-level pytest configuration.

Makes ``src/`` importable even when the package has not been installed
(useful in offline environments where ``pip install -e .`` cannot run
because the ``wheel`` package is unavailable).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
