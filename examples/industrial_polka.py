"""Industrial image-processing use case: POLKA glass-stress inspection.

Compiles the polarization-camera inspection pipeline for the two many-core
platform families of the paper (Recore Xentium-like and KIT Leon3 + iNoC)
as one design-space sweep over the platform axis (``repro.core.sweep``),
compares the guaranteed WCET on both, and runs the inspection on a stressed
and an unstressed synthetic container.

Run with:  python examples/industrial_polka.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.adl.platforms import kit_leon3_inoc, recore_xentium_like
from repro.core import ArgoToolchain, SweepCase, ToolchainConfig, sweep
from repro.usecases import build_polka_diagram, polka_test_inputs
from repro.utils.tables import Table


def main() -> None:
    pixels = 64
    platforms = {
        "Recore Xentium-like": recore_xentium_like(dsp_cores=4, control_cores=0),
        "KIT Leon3 + iNoC 2x2": kit_leon3_inoc(mesh_width=2, mesh_height=2, cores_per_tile=1),
    }

    # One sweep over the platform axis; full results are kept so the best
    # configuration can be simulated afterwards.
    comparison = sweep(
        [
            SweepCase(
                diagram=build_polka_diagram(pixels),
                platform=platform,
                config=ToolchainConfig(loop_chunks=4),
                label=name,
            )
            for name, platform in platforms.items()
        ],
        keep_results=True,
    )
    table = Table(
        ["platform", "cores", "sequential WCET", "parallel WCET", "speedup", "line rate (lines/s)"],
        title=f"POLKA inspection, {pixels}-pixel line segments",
    )
    for outcome in comparison:
        platform = platforms[outcome.label]
        clock = platform.cores[0].processor
        period_s = clock.cycles_to_seconds(outcome.system_wcet)
        table.add_row(
            [
                outcome.label,
                platform.num_cores,
                outcome.sequential_wcet,
                outcome.system_wcet,
                outcome.wcet_speedup,
                f"{1.0 / period_s:,.0f}",
            ]
        )
    print(table.render())
    print()

    recore_outcome = next(o for o in comparison if o.label == "Recore Xentium-like")
    result = recore_outcome.result
    toolchain = ArgoToolchain(platforms["Recore Xentium-like"], result.config)
    for label, stressed in (("stressed container", True), ("good container", False)):
        sim = toolchain.simulate(result, polka_test_inputs(pixels, seed=3, stressed=stressed))
        reject = sim.observed_value(result.model.output_key("reject", "y"))
        count = sim.observed_value(result.model.output_key("defect_count", "y"))
        print(
            f"{label:18s}: defect pixels={count:4.0f}  verdict={'REJECT' if reject else 'pass'}  "
            f"makespan={sim.makespan:.0f} <= bound {result.system_wcet:.0f}"
        )


if __name__ == "__main__":
    main()
