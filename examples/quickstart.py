"""Quickstart: run the complete ARGO flow on a small dataflow model.

Builds a tiny sensor-processing diagram from the standard block library,
runs it through the composable pipeline API (``repro.core.pipeline``) for a
4-core predictable platform, prints the guaranteed multi-core WCET with
per-stage timings, validates the bound against a simulated execution, and
finishes with a mini design-space sweep over schedulers.

Run with:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from repro.adl.platforms import generic_predictable_multicore
from repro.core import Pipeline, SweepCase, ToolchainConfig, sweep, toolchain_summary
from repro.model import Diagram, library


def build_model() -> Diagram:
    """A small pipeline: scale -> smooth -> clamp -> peak detection."""
    d = Diagram("quickstart")
    d.add_block(library.gain("scale", 2.0, size=32))
    d.add_block(library.moving_average("smooth", 4, 32))
    d.add_block(library.saturation("clamp", 0.0, 100.0, size=32))
    d.add_block(library.scalar_max("peak", 32))
    d.connect("scale", "y", "smooth", "u")
    d.connect("smooth", "y", "clamp", "u")
    d.connect("clamp", "y", "peak", "u")
    d.mark_input("scale", "u")
    d.mark_output("peak", "y")
    return d


def main() -> None:
    diagram = build_model()

    # 1. validate the model at the dataflow level
    sample = {"scale.u": np.linspace(0.0, 10.0, 32)}
    print("model-level simulation:", diagram.simulate(steps=1, input_provider=sample)[0])

    # 2. run the flow as a pipeline of named stages
    #    (frontend -> transforms -> htg -> schedule -> parallel -> wcet)
    platform = generic_predictable_multicore(cores=4)
    pipeline = Pipeline(platform, ToolchainConfig(loop_chunks=4))
    result = pipeline.run(diagram)
    print()
    print(toolchain_summary(result))
    print()
    print("stage timings:")
    for record in result.stage_records:
        print(f"  {record.name:10s} {1000 * record.seconds:7.2f} ms  {record.info}")

    # 3. check the guaranteed bound against a simulated execution
    sim = pipeline.simulate(result, sample)
    print()
    print(f"simulated makespan : {sim.makespan:.0f} cycles")
    print(f"guaranteed WCET    : {result.system_wcet:.0f} cycles")
    print(f"bound respected    : {sim.makespan <= result.system_wcet}")

    # 4. a mini design-space sweep: which scheduler wins on this model?
    schedulers = ("wcet_list", "acet_list", "sequential")
    comparison = sweep(
        [
            SweepCase(
                diagram=diagram,
                platform=platform,
                config=ToolchainConfig(loop_chunks=4, scheduler=scheduler),
            )
            for scheduler in schedulers
        ]
    )
    print()
    print(comparison.render("scheduler comparison (one sweep call)"))
    print(f"best: {comparison.best().scheduler}")


if __name__ == "__main__":
    main()
