"""Aerospace use case: Wake Encounter Avoidance and Advisory (WEAA).

Runs the wake-vortex prediction / conflict detection / evasion pipeline
through the ARGO flow, comparing the WCET-aware scheduler against the
average-case baseline and the sequential bound -- executed as one
design-space sweep over schedulers (``repro.core.sweep``) instead of a
hand-rolled loop -- then exercises the advisory logic on an encounter
scenario.

Run with:  python examples/wake_avoidance_weaa.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.adl.platforms import generic_predictable_multicore
from repro.core import ArgoToolchain, SweepCase, ToolchainConfig, sweep
from repro.usecases import build_weaa_diagram, weaa_test_inputs
from repro.utils.tables import Table


def main() -> None:
    horizon = 24
    platform = generic_predictable_multicore(cores=4)
    schedulers = {
        "sequential": "sequential",
        "average-case list": "acet_list",
        "WCET-aware list": "wcet_list",
        "simulated annealing": "simulated_annealing",
    }

    # One in-process sweep over the scheduler axis; all candidate flows share
    # the analysis cache, and the full results are kept for simulation below.
    comparison = sweep(
        [
            SweepCase(
                diagram=build_weaa_diagram(horizon),
                platform=platform,
                config=ToolchainConfig(loop_chunks=4, scheduler=scheduler),
                label=label,
            )
            for label, scheduler in schedulers.items()
        ],
        keep_results=True,
    )
    table = Table(
        ["configuration", "guaranteed WCET", "speedup vs sequential"],
        title="WEAA scheduling comparison (4 cores)",
    )
    for outcome in comparison:
        table.add_row(
            [outcome.label, outcome.system_wcet, outcome.sequential_wcet / outcome.system_wcet]
        )
    print(table.render())
    print()

    wcet_outcome = next(o for o in comparison if o.label == "WCET-aware list")
    result = wcet_outcome.result
    toolchain = ArgoToolchain(platform, result.config)
    for label, encounter in (("wake encounter ahead", True), ("clear air", False)):
        sim = toolchain.simulate(result, weaa_test_inputs(horizon, seed=5, encounter=encounter))
        conflict = sim.observed_value(result.model.output_key("conflict", "y"))
        severity = sim.observed_value(result.model.output_key("severity", "y"))
        command = sim.observed_value(result.model.output_key("evasion_cmd", "y"))
        print(
            f"{label:22s}: conflict={'YES' if conflict else 'no '}  severity={severity:5.2f}  "
            f"evasion command={command:+5.2f}  makespan={sim.makespan:.0f} cycles"
        )


if __name__ == "__main__":
    main()
