"""Aerospace use case: Enhanced Ground Proximity Warning System (EGPWS).

Reproduces the paper's aerospace scenario: the EGPWS model is parallelized
for a 4-core predictable platform, its guaranteed WCET is reported, and the
alerting behaviour is demonstrated on a hazardous and a safe terrain profile.

Run with:  python examples/aerospace_egpws.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.adl.platforms import generic_predictable_multicore
from repro.core import ArgoToolchain, ToolchainConfig, bottleneck_report
from repro.usecases import build_egpws_diagram, egpws_test_inputs


def main() -> None:
    lookahead = 32
    platform = generic_predictable_multicore(cores=4)
    toolchain = ArgoToolchain(platform, ToolchainConfig(loop_chunks=4, feedback_iterations=2))
    result = toolchain.run(build_egpws_diagram(lookahead))

    print(f"EGPWS on {platform.name}")
    print(f"  sequential WCET bound : {result.sequential_wcet:.0f} cycles")
    print(f"  parallel WCET bound   : {result.system_wcet:.0f} cycles")
    print(f"  guaranteed speed-up   : {result.wcet_speedup:.2f}x")
    at_100mhz_us = platform.cores[0].processor.cycles_to_seconds(result.system_wcet) * 1e6
    print(f"  worst-case period     : {at_100mhz_us:.1f} us at {platform.cores[0].processor.clock_mhz:.0f} MHz")
    stage_ms = ", ".join(f"{name} {1000 * s:.1f}ms" for name, s in result.timings.items())
    print(f"  pipeline stages       : {stage_ms}")
    print()
    print(bottleneck_report(result.htg, result.schedule))
    print()

    for scenario, hazardous in (("hazardous ridge ahead", True), ("safe cruise altitude", False)):
        inputs = egpws_test_inputs(lookahead, seed=7, hazardous=hazardous)
        sim = toolchain.simulate(result, inputs)
        alert = sim.observed_value(result.model.output_key("alert", "y"))
        clearance = sim.observed_value(result.model.output_key("min_clearance", "y"))
        print(
            f"scenario: {scenario:24s} alert={'RAISED' if alert else 'clear '} "
            f"min clearance={clearance:8.1f}  makespan={sim.makespan:.0f} cycles "
            f"(bound {result.system_wcet:.0f})"
        )


if __name__ == "__main__":
    main()
