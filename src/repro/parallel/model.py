"""Construction of the explicit parallel program model.

The parallel program makes three things explicit that the scheduling result
only implies (paper Section II-C):

* synchronisation: every dependence edge whose endpoints live on different
  cores becomes a signal/wait pair over a dedicated flag;
* communication: every such edge with a payload gets a communication buffer;
* memory mapping: all shared objects (signal buffers, state, communication
  flags) receive concrete addresses in the platform's shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.adl.architecture import Platform
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.program import Function, Storage
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class SyncOp:
    """A synchronisation operation in a core program."""

    kind: Literal["signal", "wait"]
    flag: str
    partner_core: int
    task_id: str

    def __str__(self) -> str:
        return f"{self.kind}({self.flag}) [core {self.partner_core}]"


@dataclass(frozen=True)
class CommBuffer:
    """A shared communication buffer backing a cross-core dependence edge."""

    name: str
    src_task: str
    dst_task: str
    size_bytes: int
    address: int


@dataclass
class CoreProgram:
    """The ordered program of one core: tasks interleaved with sync ops."""

    core_id: int
    #: Sequence of items; each item is either a task id (str) or a SyncOp.
    items: list[str | SyncOp] = field(default_factory=list)

    def task_ids(self) -> list[str]:
        return [item for item in self.items if isinstance(item, str)]

    def sync_ops(self) -> list[SyncOp]:
        return [item for item in self.items if isinstance(item, SyncOp)]


@dataclass
class ParallelProgram:
    """The complete explicit parallel program."""

    name: str
    core_programs: dict[int, CoreProgram]
    buffers: list[CommBuffer]
    #: Shared-object name -> (address, size) in the platform shared memory.
    memory_map: dict[str, tuple[int, int]]
    schedule: Schedule
    platform_name: str

    @property
    def num_sync_ops(self) -> int:
        return sum(len(cp.sync_ops()) for cp in self.core_programs.values())

    @property
    def total_comm_bytes(self) -> int:
        return sum(b.size_bytes for b in self.buffers)

    def shared_footprint_bytes(self) -> int:
        return sum(size for _, size in self.memory_map.values())

    def validate(self, htg: HierarchicalTaskGraph) -> None:
        """Check signal/wait pairing and per-core dependence ordering."""
        signals = {op.flag for cp in self.core_programs.values() for op in cp.sync_ops() if op.kind == "signal"}
        waits = {op.flag for cp in self.core_programs.values() for op in cp.sync_ops() if op.kind == "wait"}
        if signals != waits:
            raise ValueError(
                f"unpaired synchronisation flags: {sorted(signals ^ waits)}"
            )
        dependent = htg.dependent_pairs()
        for cp in self.core_programs.values():
            ids = cp.task_ids()
            for i, a in enumerate(ids):
                for b in ids[i + 1:]:
                    if (b, a) in dependent:
                        raise ValueError(
                            f"core {cp.core_id}: task {a!r} ordered before its dependence {b!r}"
                        )


class MemoryMapError(ValueError):
    """Raised when shared objects do not fit in the platform shared memory."""


def build_parallel_program(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    schedule: Schedule,
) -> ParallelProgram:
    """Turn an analysed schedule into the explicit parallel program model."""
    schedule.validate(htg, platform)

    core_programs: dict[int, CoreProgram] = {
        core: CoreProgram(core_id=core, items=[]) for core in schedule.order
    }
    buffers: list[CommBuffer] = []

    # Cross-core edges become signal/wait pairs (and buffers when data flows).
    cross_edges = [
        e
        for e in htg.edges
        if e.src in schedule.mapping
        and e.dst in schedule.mapping
        and schedule.mapping[e.src] != schedule.mapping[e.dst]
    ]
    flag_of_edge = {
        (e.src, e.dst): f"flag_{i}_{e.src}__{e.dst}" for i, e in enumerate(cross_edges)
    }

    # Build per-core item lists in schedule order, inserting waits before a
    # task and signals after it.
    incoming: dict[str, list] = {}
    outgoing: dict[str, list] = {}
    for edge in cross_edges:
        incoming.setdefault(edge.dst, []).append(edge)
        outgoing.setdefault(edge.src, []).append(edge)

    for core, task_ids in schedule.order.items():
        program = core_programs[core]
        for tid in task_ids:
            for edge in sorted(incoming.get(tid, []), key=lambda e: e.src):
                program.items.append(
                    SyncOp("wait", flag_of_edge[(edge.src, edge.dst)], schedule.mapping[edge.src], tid)
                )
            program.items.append(tid)
            for edge in sorted(outgoing.get(tid, []), key=lambda e: e.dst):
                program.items.append(
                    SyncOp("signal", flag_of_edge[(edge.src, edge.dst)], schedule.mapping[edge.dst], tid)
                )

    # Memory map: shared declarations of the function, then communication
    # buffers, then synchronisation flags (one word each), all aligned.
    memory_map: dict[str, tuple[int, int]] = {}
    address = 0

    def align(value: int, alignment: int = 8) -> int:
        return (value + alignment - 1) // alignment * alignment

    for decl in function.all_decls():
        if decl.storage in (Storage.SHARED, Storage.INPUT, Storage.OUTPUT):
            memory_map[decl.name] = (address, decl.size_bytes)
            address = align(address + decl.size_bytes)

    for i, edge in enumerate(cross_edges):
        if edge.payload_bytes <= 0:
            continue
        name = f"comm_{i}_{edge.src}__{edge.dst}"
        buffers.append(
            CommBuffer(
                name=name,
                src_task=edge.src,
                dst_task=edge.dst,
                size_bytes=edge.payload_bytes,
                address=address,
            )
        )
        memory_map[name] = (address, edge.payload_bytes)
        address = align(address + edge.payload_bytes)

    for flag in flag_of_edge.values():
        memory_map[flag] = (address, 4)
        address = align(address + 4)

    if address > platform.shared_memory.size_bytes:
        raise MemoryMapError(
            f"shared objects need {address} bytes but the platform shared "
            f"memory only has {platform.shared_memory.size_bytes}"
        )

    program = ParallelProgram(
        name=f"{htg.name}_parallel",
        core_programs=core_programs,
        buffers=buffers,
        memory_map=memory_map,
        schedule=schedule,
        platform_name=platform.name,
    )
    program.validate(htg)
    return program
