"""C-like rendering of the explicit parallel program.

Produces the "C code following the WCET-aware programming model" of paper
Section II-C: one function per core, busy-wait synchronisation on shared
flags, and a header comment with the shared-memory map.
"""

from __future__ import annotations

from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.printer import to_c
from repro.parallel.model import ParallelProgram, SyncOp


def parallel_program_to_c(program: ParallelProgram, htg: HierarchicalTaskGraph) -> str:
    """Render the parallel program as annotated C-like source text."""
    lines: list[str] = []
    lines.append(f"/* parallel program {program.name} for platform {program.platform_name} */")
    lines.append("/* shared memory map:")
    for name, (address, size) in sorted(program.memory_map.items(), key=lambda kv: kv[1][0]):
        lines.append(f" *   0x{address:06x}  {size:8d} B  {name}")
    lines.append(" */")
    lines.append("")

    for core_id in sorted(program.core_programs):
        core_program = program.core_programs[core_id]
        lines.append(f"void core{core_id}_main(void)")
        lines.append("{")
        for item in core_program.items:
            if isinstance(item, SyncOp):
                if item.kind == "wait":
                    lines.append(f"    while (!{item.flag}) {{ /* spin */ }}  /* from core {item.partner_core} */")
                else:
                    lines.append(f"    {item.flag} = 1;  /* to core {item.partner_core} */")
                continue
            task = htg.task(item)
            lines.append(f"    /* task {task.task_id} (origin: {task.origin}, wcet {task.wcet:.0f} cycles) */")
            body = to_c(task.statements)
            for body_line in body.splitlines():
                lines.append(f"    {body_line}")
        lines.append("}")
        lines.append("")
    return "\n".join(lines)
