"""C-like rendering of the explicit parallel program.

Produces the "C code following the WCET-aware programming model" of paper
Section II-C: one function per core, busy-wait synchronisation on shared
flags, and a header comment with the shared-memory map.
"""

from __future__ import annotations

from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.printer import to_c
from repro.ir.program import Function
from repro.parallel.model import ParallelProgram, SyncOp


class CodegenRaceError(RuntimeError):
    """The program to be rendered contains an unordered shared-access pair."""


def _program_schedule(program: ParallelProgram) -> tuple[dict[str, int], dict[int, list[str]]]:
    """Mapping and per-core order as actually laid out in the program."""
    mapping: dict[str, int] = {}
    order: dict[int, list[str]] = {}
    for core_id, core_program in program.core_programs.items():
        tasks = [item for item in core_program.items if not isinstance(item, SyncOp)]
        order[core_id] = tasks
        for task_id in tasks:
            mapping[task_id] = core_id
    return mapping, order


def parallel_program_to_c(
    program: ParallelProgram,
    htg: HierarchicalTaskGraph,
    function: Function | None = None,
    check_races: bool = True,
) -> str:
    """Render the parallel program as annotated C-like source text.

    When ``function`` is supplied (it carries the storage classes of the
    shared declarations) and ``check_races`` is on, the emitted layout is
    first re-checked by the static race checker -- using the mapping/order
    reconstructed from the *program itself*, so the check covers what is
    actually printed, not what the schedule intended.  A detected race
    raises :class:`CodegenRaceError` instead of emitting unsound C.
    """
    if function is not None and check_races:
        from repro.analysis.races import check_races as _check

        mapping, order = _program_schedule(program)
        report = _check(htg, mapping, order, function)
        if report.count("error"):
            # warnings (e.g. race.chunk-overlap-unproven) do not block
            raise CodegenRaceError(
                f"refusing to emit C for {program.name!r}: "
                + "; ".join(str(f) for f in report.findings if f.severity == "error")
            )
    lines: list[str] = []
    lines.append(f"/* parallel program {program.name} for platform {program.platform_name} */")
    lines.append("/* shared memory map:")
    for name, (address, size) in sorted(program.memory_map.items(), key=lambda kv: kv[1][0]):
        lines.append(f" *   0x{address:06x}  {size:8d} B  {name}")
    lines.append(" */")
    lines.append("")

    for core_id in sorted(program.core_programs):
        core_program = program.core_programs[core_id]
        lines.append(f"void core{core_id}_main(void)")
        lines.append("{")
        for item in core_program.items:
            if isinstance(item, SyncOp):
                if item.kind == "wait":
                    lines.append(f"    while (!{item.flag}) {{ /* spin */ }}  /* from core {item.partner_core} */")
                else:
                    lines.append(f"    {item.flag} = 1;  /* to core {item.partner_core} */")
                continue
            task = htg.task(item)
            lines.append(f"    /* task {task.task_id} (origin: {task.origin}, wcet {task.wcet:.0f} cycles) */")
            body = to_c(task.statements)
            for body_line in body.splitlines():
                lines.append(f"    {body_line}")
        lines.append("}")
        lines.append("")
    return "\n".join(lines)
