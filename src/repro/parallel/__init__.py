"""Explicit parallel program model (paper Section II-C).

The scheduling result is turned into an explicitly parallel program: one task
sequence per core, explicit signal/wait synchronisation on dependence edges
that cross cores, communication buffers with a concrete shared-memory address
map, and a C-like rendering of the per-core programs.
"""

from repro.parallel.model import (
    CommBuffer,
    CoreProgram,
    ParallelProgram,
    SyncOp,
    build_parallel_program,
)
from repro.parallel.codegen import parallel_program_to_c

__all__ = [
    "CommBuffer",
    "CoreProgram",
    "ParallelProgram",
    "SyncOp",
    "build_parallel_program",
    "parallel_program_to_c",
]
