"""Task nodes of the Hierarchical Task Graph."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.statements import Block as IRBlock


class TaskKind(enum.Enum):
    """What a task node represents."""

    BLOCK = "block"          # a whole dataflow-block region
    LOOP_CHUNK = "loop_chunk"  # a contiguous chunk of a parallelizable loop
    PRE = "pre"              # statements before a split loop
    POST = "post"            # statements after a split loop
    SOURCE = "source"        # synthetic graph entry
    SINK = "sink"            # synthetic graph exit


@dataclass
class Task:
    """A schedulable unit of work extracted from the IR.

    The fields mirror what the paper says HTG task nodes must carry: the code
    itself, the data that must be communicated, and "additional information on
    possible shared resource accesses (list of shared resources, and worst
    case number of accesses)".
    """

    task_id: str
    kind: TaskKind
    statements: IRBlock
    #: Name of the dataflow block this task originates from (traceability to
    #: the model level, used by the cross-layer report).
    origin: str = ""
    #: Variables read / written by the task (arrays and scalars).
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    #: Worst-case number of accesses per *shared* array.
    shared_accesses: dict[str, int] = field(default_factory=dict)
    #: Hierarchy: id of the parent task when this is a loop chunk / pre / post.
    parent: str | None = None
    #: Worst-case execution time in cycles, in isolation (filled by the
    #: code-level WCET analysis; 0 until analysed).
    wcet: float = 0.0
    #: Observed average-case execution time in cycles (optional, used by the
    #: average-case baseline scheduler).
    acet: float = 0.0

    def __hash__(self) -> int:
        return hash(self.task_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Task) and other.task_id == self.task_id

    @property
    def total_shared_accesses(self) -> int:
        return sum(self.shared_accesses.values())

    @property
    def is_synthetic(self) -> bool:
        return self.kind in (TaskKind.SOURCE, TaskKind.SINK)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.task_id}, {self.kind.value}, wcet={self.wcet:.0f})"
