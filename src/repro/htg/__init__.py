"""Hierarchical Task Graph (HTG) extraction (paper Section II-B).

The HTG is the program representation handed to the scheduling/mapping stage:
tasks carry the IR statements they execute, the variables/buffers that must be
communicated between tasks, and the worst-case number of shared-resource
accesses.  Loops form an additional hierarchy level; parallelizable loops can
be split into chunk tasks to expose fine-grain parallelism.
"""

from repro.htg.task import Task, TaskKind
from repro.htg.graph import HierarchicalTaskGraph, TaskEdge
from repro.htg.extraction import extract_htg, is_parallelizable_loop

__all__ = [
    "Task",
    "TaskKind",
    "HierarchicalTaskGraph",
    "TaskEdge",
    "extract_htg",
    "is_parallelizable_loop",
]
