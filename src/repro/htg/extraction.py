"""HTG extraction from a compiled model.

Two granularities are supported:

* ``"block"`` -- one task per dataflow-block code region (the natural task
  decomposition of the model);
* ``"loop"`` -- additionally, top-level parallelizable loops inside a region
  are split into ``loop_chunks`` contiguous chunk tasks, exposing the
  "very fine grain task decomposition" the paper argues for (Section III-C).

Data dependences between tasks come from the shared signal buffers the front
end introduced: a task writing buffer ``b`` precedes every later task reading
``b``.  Edge payloads are the buffer footprints in bytes, which is what the
mapping stage charges as communication cost when the two endpoints land on
different cores.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

from repro.frontend.codegen import CompiledModel
from repro.htg.graph import HierarchicalTaskGraph
from repro.htg.task import Task, TaskKind
from repro.ir.analysis import read_write_sets, shared_access_summary
from repro.ir.expressions import ArrayRef, Var
from repro.ir.loops import loop_trip_count
from repro.ir.program import Function, Storage
from repro.ir.statements import Assign, Block as IRBlock, For, Stmt
from repro.ir.visitors import clone_block


def _first_index_is(ref: ArrayRef, index_name: str) -> bool:
    """True when the first index of ``ref`` is a function of the loop variable only.

    The front end lowers Scilab's 1-based indexing to ``i - 1`` expressions,
    so plain equality with the loop variable would be too strict; any index
    expression whose only free variable is the loop index (``i``, ``i - 1``,
    ``i + 2`` ...) identifies an iteration-owned element.
    """
    first = ref.indices[0]
    if isinstance(first, Var):
        return first.name == index_name
    return first.variables_read() == {index_name}


def is_parallelizable_loop(loop: For) -> bool:
    """Conservative dependence test for splitting a counted loop.

    A loop is considered parallelizable when:

    * every array element *written* in the body is indexed by the loop
      variable in its first dimension (each iteration owns its slice);
    * every *read* of an array that is also written uses the loop variable as
      its first index (no reads of neighbouring iterations' data);
    * every scalar written in the body is defined unconditionally at the top
      of the body before any use (a per-iteration temporary, not a reduction
      accumulator carried across iterations);
    * the loop variable itself is never assigned.

    This is deliberately conservative: reductions (``best = max(best, ...)``)
    and stencil-style reads fail the test and stay sequential.
    """
    index_name = loop.index.name
    #: written array -> set of textual first-index expressions used for writes
    write_indices: dict[str, set[str]] = {}
    written_scalars: list[str] = []

    for stmt in loop.body.walk():
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, ArrayRef):
                if not _first_index_is(stmt.target, index_name):
                    return False
                write_indices.setdefault(stmt.target.array, set()).add(str(stmt.target.indices[0]))
            else:
                if stmt.target.name == index_name:
                    return False
                written_scalars.append(stmt.target.name)
        elif isinstance(stmt, For):
            written_scalars.append(stmt.index.name)

    # Reads of written arrays must target the very elements this iteration
    # writes (same first-index expression); reading a neighbouring element
    # (e.g. write y(i+1), read y(i)) is a loop-carried dependence.
    for stmt in loop.body.walk():
        for expr in stmt.expressions():
            for ref in expr.array_reads():
                if ref.array in write_indices:
                    if str(ref.indices[0]) not in write_indices[ref.array]:
                        return False

    # scalars must be defined before use within one iteration (def-first)
    for name in set(written_scalars):
        if not _scalar_defined_before_use(loop.body, name):
            return False
    return True


def _scalar_defined_before_use(body: IRBlock, name: str) -> bool:
    """True when the first top-level reference to ``name`` in ``body`` is an
    unconditional whole-scalar assignment that does not read ``name``."""
    for stmt in body.stmts:
        reads_here = any(name in e.variables_read() for e in _all_expressions(stmt))
        if isinstance(stmt, Assign) and isinstance(stmt.target, Var) and stmt.target.name == name:
            return name not in stmt.value.variables_read()
        if isinstance(stmt, For) and stmt.index.name == name:
            # loop index of an inner loop: defined by the loop itself
            return True
        if reads_here or name in stmt.variables_written():
            return False
    return True


def _all_expressions(stmt: Stmt):
    for node in stmt.walk():
        yield from node.expressions()


def _shared_names(function: Function) -> set[str]:
    return {
        d.name
        for d in function.all_decls()
        if d.storage in (Storage.SHARED, Storage.INPUT, Storage.OUTPUT)
    }


def _buffer_bytes(function: Function, names: set[str]) -> int:
    total = 0
    for name in names:
        decl = function.lookup(name)
        if decl is not None:
            total += decl.size_bytes
    return total


def _make_task(task_id: str, kind: TaskKind, stmts: IRBlock, origin: str, function: Function, parent: str | None = None) -> Task:
    reads, writes = read_write_sets(stmts)
    shared = shared_access_summary(function, stmts)
    shared_counts = dict(shared.reads)
    for name, count in shared.writes.items():
        shared_counts[name] = shared_counts.get(name, 0) + count
    return Task(
        task_id=task_id,
        kind=kind,
        statements=stmts,
        origin=origin,
        reads=reads,
        writes=writes,
        shared_accesses=shared_counts,
        parent=parent,
    )


def _split_loop(loop: For, chunks: int) -> list[For]:
    """Split a counted loop into ``chunks`` contiguous sub-loops."""
    from repro.ir.expressions import Const, try_evaluate_constant

    lower = try_evaluate_constant(loop.lower)
    upper = try_evaluate_constant(loop.upper)
    if lower is None or upper is None:
        return [loop]
    lower_i, upper_i = int(lower), int(upper)
    total = max(0, upper_i - lower_i)
    chunks = max(1, min(chunks, total))
    result: list[For] = []
    base = total // chunks
    remainder = total % chunks
    start = lower_i
    for c in range(chunks):
        size = base + (1 if c < remainder else 0)
        end = start + size
        result.append(
            For(
                index=loop.index,
                lower=Const(start),
                upper=Const(end),
                body=clone_block(loop.body),
                step=loop.step,
                max_trip_count=size,
                parallelizable=loop.parallelizable,
            )
        )
        start = end
    return result


@dataclass
class ExtractionOptions:
    """Tuning knobs for HTG extraction."""

    granularity: str = "block"      # "block" | "loop"
    loop_chunks: int = 4            # chunk count for split parallel loops
    min_trip_count_to_split: int = 4


def _region_tasks(
    region_name: str, region: IRBlock, function: Function, options: ExtractionOptions
) -> list[Task]:
    """The task decomposition of one code region at the requested granularity."""
    if options.granularity == "loop":
        return _extract_region_fine(region_name, region, function, options)
    return [_make_task(f"t_{region_name}", TaskKind.BLOCK, region, region_name, function)]


def extract_htg(model: CompiledModel, options: ExtractionOptions | None = None) -> HierarchicalTaskGraph:
    """Extract the HTG of a compiled model."""
    options = options or ExtractionOptions()
    if options.granularity not in ("block", "loop"):
        raise ValueError(f"unknown granularity {options.granularity!r}")
    function = model.entry

    tasks: list[Task] = []
    for region_name, region in model.block_regions:
        tasks.extend(_region_tasks(region_name, region, function, options))
    return _assemble_htg(model.diagram_name, tasks, function)


def extract_htg_incremental(
    model: CompiledModel,
    options: ExtractionOptions | None,
    prev_tasks: Mapping[str, Sequence[Task]],
    unchanged_regions: set[str],
) -> tuple[HierarchicalTaskGraph, dict[str, Any]]:
    """Re-extract the HTG of an edited model, reusing per-region task lists.

    ``prev_tasks`` groups the previous run's leaf tasks by ``Task.origin``
    (the region name); ``unchanged_regions`` names the regions whose
    rendered-code fingerprints match the previous run.  Task ids are a pure
    function of the region name, and a task's content (statements, read/write
    sets, shared-access summary) is a pure function of the region code, so an
    unchanged region's tasks can be reused verbatim.  Reused tasks are
    *shallow copies* sharing the previous statements block: the original
    tasks keep their annotations (``annotate_htg`` mutates ``wcet``/``acet``
    in place) and the shared ``id(statements)`` preserves the
    :class:`~repro.wcet.cache.WcetAnalysisCache` fingerprint memo hits.

    Inter-task dependence edges are always re-derived globally: they depend
    on the program order of *all* regions, which an edit anywhere can shift.
    Returns the HTG plus an info dict with ``regions_reused`` /
    ``regions_recomputed`` counts and the ``changed_task_ids`` produced by
    recomputed regions.
    """
    options = options or ExtractionOptions()
    if options.granularity not in ("block", "loop"):
        raise ValueError(f"unknown granularity {options.granularity!r}")
    function = model.entry

    tasks: list[Task] = []
    changed_task_ids: set[str] = set()
    regions_reused = 0
    regions_recomputed = 0
    for region_name, region in model.block_regions:
        previous = prev_tasks.get(region_name)
        if previous and region_name in unchanged_regions:
            tasks.extend(replace(task) for task in previous)
            regions_reused += 1
        else:
            fresh = _region_tasks(region_name, region, function, options)
            changed_task_ids.update(t.task_id for t in fresh)
            tasks.extend(fresh)
            regions_recomputed += 1
    htg = _assemble_htg(model.diagram_name, tasks, function)
    info = {
        "regions_reused": regions_reused,
        "regions_recomputed": regions_recomputed,
        "changed_task_ids": changed_task_ids,
    }
    return htg, info


def _assemble_htg(
    name: str, tasks: list[Task], function: Function
) -> HierarchicalTaskGraph:
    """Build the task graph: dependence edges over an ordered task list."""
    shared = _shared_names(function)
    htg = HierarchicalTaskGraph(name=name)

    for task in tasks:
        htg.add_task(task)

    # Data dependences through shared buffers, honouring program order.
    # ``current_writers`` holds the tasks of the current "writing generation"
    # of each buffer: sibling loop chunks of the same parent write disjoint
    # slices of the same buffer and therefore form one generation with no
    # edges among themselves.
    current_writers: dict[str, list[Task]] = {}
    readers_since_write: dict[str, list[str]] = {}

    def same_generation(a: Task, b: Task) -> bool:
        return (
            a.kind is TaskKind.LOOP_CHUNK
            and b.kind is TaskKind.LOOP_CHUNK
            and a.parent is not None
            and a.parent == b.parent
        )

    for task in tasks:
        for name in sorted(task.reads & shared):
            decl = function.lookup(name)
            for writer in current_writers.get(name, []):
                if writer.task_id != task.task_id and not same_generation(writer, task):
                    htg.add_edge(
                        writer.task_id,
                        task.task_id,
                        payload_bytes=decl.size_bytes if decl else 0,
                        variables=(name,),
                    )
            readers_since_write.setdefault(name, []).append(task.task_id)
        for name in sorted(task.writes & shared):
            writers = current_writers.get(name, [])
            if writers and same_generation(writers[-1], task):
                writers.append(task)
                continue
            # New writing generation: order after earlier readers (WAR) and
            # after the previous writers (WAW).
            for reader in readers_since_write.get(name, []):
                if reader != task.task_id:
                    htg.add_edge(reader, task.task_id, payload_bytes=0, variables=(name,))
            for writer in writers:
                if writer.task_id != task.task_id:
                    htg.add_edge(writer.task_id, task.task_id, payload_bytes=0, variables=(name,))
            current_writers[name] = [task]
            readers_since_write[name] = []

    # chunk siblings: pre -> chunks -> post ordering is established by buffer
    # deps; ensure pre/post ordering even without buffers.
    by_parent: dict[str, list[Task]] = {}
    for task in tasks:
        if task.parent:
            by_parent.setdefault(task.parent, []).append(task)
    for parent_id, children in by_parent.items():
        pre = [t for t in children if t.kind is TaskKind.PRE]
        post = [t for t in children if t.kind is TaskKind.POST]
        chunk = [t for t in children if t.kind is TaskKind.LOOP_CHUNK]
        for p in pre:
            for c in chunk:
                htg.add_edge(p.task_id, c.task_id)
        for c in chunk:
            for q in post:
                htg.add_edge(c.task_id, q.task_id)

    htg.validate()
    return htg


def _extract_region_fine(
    region_name: str, region: IRBlock, function: Function, options: ExtractionOptions
) -> list[Task]:
    """Split a region into pre / loop-chunk / post tasks when profitable."""
    splittable_positions: list[int] = []
    for pos, stmt in enumerate(region.stmts):
        if (
            isinstance(stmt, For)
            and is_parallelizable_loop(stmt)
            and loop_trip_count(stmt) >= options.min_trip_count_to_split
        ):
            splittable_positions.append(pos)

    if not splittable_positions:
        return [_make_task(f"t_{region_name}", TaskKind.BLOCK, region, region_name, function)]

    # Split around the first parallelizable top-level loop; statements before
    # and after it become pre/post tasks (themselves block tasks).
    pos = splittable_positions[0]
    loop = region.stmts[pos]
    assert isinstance(loop, For)
    parent_id = f"t_{region_name}"
    tasks: list[Task] = []

    pre_stmts = IRBlock(list(region.stmts[:pos]))
    post_stmts = IRBlock(list(region.stmts[pos + 1:]))
    if pre_stmts.stmts:
        tasks.append(
            _make_task(f"{parent_id}_pre", TaskKind.PRE, pre_stmts, region_name, function, parent=parent_id)
        )
    for idx, chunk_loop in enumerate(_split_loop(loop, options.loop_chunks)):
        chunk_block = IRBlock([chunk_loop])
        tasks.append(
            _make_task(
                f"{parent_id}_c{idx}", TaskKind.LOOP_CHUNK, chunk_block, region_name, function, parent=parent_id
            )
        )
    if post_stmts.stmts:
        tasks.append(
            _make_task(f"{parent_id}_post", TaskKind.POST, post_stmts, region_name, function, parent=parent_id)
        )
    return tasks
