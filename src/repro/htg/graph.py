"""The Hierarchical Task Graph container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.htg.task import Task
from repro.utils.graphs import is_acyclic, longest_path_length, topological_order, transitive_closure


@dataclass(frozen=True)
class TaskEdge:
    """A data dependence between two tasks.

    ``payload_bytes`` is the amount of data that must be communicated when
    the two tasks are mapped to different cores; ``variables`` names the
    buffers involved.
    """

    src: str
    dst: str
    payload_bytes: int = 0
    variables: tuple[str, ...] = ()


@dataclass
class HierarchicalTaskGraph:
    """A DAG of tasks with loop-hierarchy bookkeeping.

    Adjacency queries (:meth:`predecessors`, :meth:`successors`,
    :meth:`edge`) are served from memoized indexes, so they are O(1)
    dictionary lookups instead of edge-list scans -- the schedulers and the
    system-level analysis query them in their innermost loops.  The indexes
    are maintained incrementally by :meth:`add_task` / :meth:`add_edge`,
    which are therefore the *only* supported way to grow the graph: mutating
    the public ``tasks`` / ``edges`` containers directly would leave the
    indexes stale.
    """

    name: str
    tasks: dict[str, Task] = field(default_factory=dict)
    edges: list[TaskEdge] = field(default_factory=list)
    _edge_index: dict[tuple[str, str], TaskEdge] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _pred_index: dict[str, list[str]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _succ_index: dict[str, list[str]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _dependent_pairs: set[tuple[str, str]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    def _ensure_indexes(self) -> None:
        if self._edge_index is not None:
            return
        edge_index: dict[tuple[str, str], TaskEdge] = {}
        pred_index: dict[str, list[str]] = {tid: [] for tid in self.tasks}
        succ_index: dict[str, list[str]] = {tid: [] for tid in self.tasks}
        for e in self.edges:
            edge_index[(e.src, e.dst)] = e
            pred_index.setdefault(e.dst, []).append(e.src)
            succ_index.setdefault(e.src, []).append(e.dst)
        self._edge_index = edge_index
        self._pred_index = pred_index
        self._succ_index = succ_index

    # ------------------------------------------------------------------ #
    def add_task(self, task: Task) -> Task:
        if task.task_id in self.tasks:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        self.tasks[task.task_id] = task
        if self._pred_index is not None:
            self._pred_index.setdefault(task.task_id, [])
            self._succ_index.setdefault(task.task_id, [])
        self._dependent_pairs = None
        return task

    def add_edge(self, src: str, dst: str, payload_bytes: int = 0, variables: tuple[str, ...] = ()) -> TaskEdge:
        if src not in self.tasks or dst not in self.tasks:
            raise KeyError(f"edge {src}->{dst} references unknown tasks")
        if src == dst:
            raise ValueError("self-dependences are not allowed")
        self._ensure_indexes()
        existing = self._edge_index.get((src, dst))
        if existing is not None:
            return existing
        edge = TaskEdge(src, dst, payload_bytes, variables)
        self.edges.append(edge)
        self._edge_index[(src, dst)] = edge
        self._pred_index.setdefault(dst, []).append(src)
        self._succ_index.setdefault(src, []).append(dst)
        self._dependent_pairs = None
        return edge

    # ------------------------------------------------------------------ #
    def task(self, task_id: str) -> Task:
        return self.tasks[task_id]

    def edge_pairs(self) -> list[tuple[str, str]]:
        return [(e.src, e.dst) for e in self.edges]

    def predecessors(self, task_id: str) -> list[str]:
        self._ensure_indexes()
        return list(self._pred_index.get(task_id, ()))

    def successors(self, task_id: str) -> list[str]:
        self._ensure_indexes()
        return list(self._succ_index.get(task_id, ()))

    def edge(self, src: str, dst: str) -> TaskEdge | None:
        self._ensure_indexes()
        return self._edge_index.get((src, dst))

    def validate(self) -> None:
        if not is_acyclic(self.edge_pairs(), self.tasks.keys()):
            raise ValueError(f"HTG {self.name!r} contains a dependence cycle")

    def topological_tasks(self) -> list[Task]:
        order = topological_order(self.tasks.keys(), self.edge_pairs())
        return [self.tasks[str(tid)] for tid in order]

    def leaf_tasks(self) -> list[Task]:
        """Schedulable tasks (everything except synthetic source/sink)."""
        return [t for t in self.tasks.values() if not t.is_synthetic]

    def children_of(self, parent_id: str) -> list[Task]:
        return [t for t in self.tasks.values() if t.parent == parent_id]

    # ------------------------------------------------------------------ #
    def critical_path_length(self, include_edges: bool = False, platform=None) -> float:
        """Length of the heaviest dependence chain using task WCETs.

        This is the theoretical lower bound on any schedule's makespan with
        unlimited cores (and zero communication when ``include_edges`` is
        False).
        """
        def edge_weight(u, v):
            if not include_edges or platform is None:
                return 0.0
            edge = self.edge(str(u), str(v))
            if edge is None or edge.payload_bytes == 0:
                return 0.0
            return platform.communication_latency(edge.payload_bytes, 0, 1)

        return longest_path_length(
            self.tasks.keys(),
            self.edge_pairs(),
            {tid: t.wcet for tid, t in self.tasks.items()},
            edge_weight if include_edges else None,
        )

    def total_wcet(self) -> float:
        """Sum of all task WCETs (sequential execution upper bound)."""
        return sum(t.wcet for t in self.tasks.values())

    def ancestors(self, task_id: str) -> set[str]:
        closure = transitive_closure(self.tasks.keys(), self.edge_pairs())
        return {str(u) for (u, v) in closure if v == task_id}

    def dependent_pairs(self) -> set[tuple[str, str]]:
        """All ordered pairs (u, v) where v transitively depends on u.

        Memoized (the transitive closure is the most expensive query on the
        graph; the schedule and parallel-program validators both need it);
        invalidated by :meth:`add_task` / :meth:`add_edge` like the
        adjacency indexes.  Treat the returned set as read-only.
        """
        if self._dependent_pairs is None:
            self._dependent_pairs = {
                (str(u), str(v))
                for (u, v) in transitive_closure(self.tasks.keys(), self.edge_pairs())
            }
        return self._dependent_pairs

    def adopt_dependent_pairs(self, other: "HierarchicalTaskGraph") -> bool:
        """Share ``other``'s memoized transitive closure when it provably applies.

        Two graphs with the same task-id set and the same edge set have the
        same closure, so an incrementally re-extracted HTG can inherit the
        previous run's memo instead of recomputing it (the closure is the
        most expensive graph query).  Returns ``True`` when adopted; a
        no-op when the graphs differ or ``other`` has no memo yet.
        """
        if other._dependent_pairs is None:
            return False
        if self.tasks.keys() != other.tasks.keys():
            return False
        if set(self.edge_pairs()) != set(other.edge_pairs()):
            return False
        self._dependent_pairs = other._dependent_pairs
        return True

    def summary(self) -> str:
        lines = [
            f"HTG {self.name}: {len(self.leaf_tasks())} tasks, {len(self.edges)} edges, "
            f"critical path {self.critical_path_length():.0f} cycles"
        ]
        for task in self.topological_tasks():
            if task.is_synthetic:
                continue
            lines.append(
                f"  {task.task_id} [{task.kind.value}] wcet={task.wcet:.0f} "
                f"shared_accesses={task.total_shared_accesses}"
            )
        return "\n".join(lines)
