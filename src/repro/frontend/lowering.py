"""Lowering of mini-Scilab behaviour scripts to the C-subset IR.

The lowering maps:

* 1-based Scilab indexing to 0-based IR array indexing;
* inclusive ``for i = a:b`` ranges to counted IR loops;
* Scilab builtins to IR intrinsics;
* unbound assigned names to function-local temporaries (prefixed per block so
  several block regions can coexist in one IR function).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ir.builder import FunctionBuilder
from repro.ir.expressions import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    UnOp,
    Var,
    try_evaluate_constant,
)
from repro.ir.types import INT, ArrayType
from repro.model.scilab import ast


class ScilabLoweringError(ValueError):
    """Raised when a behaviour uses a construct outside the compilable subset."""


#: Scilab builtin -> IR intrinsic name.
_BUILTIN_MAP = {
    "sin": "sin",
    "cos": "cos",
    "tan": "tan",
    "sqrt": "sqrt",
    "exp": "exp",
    "log": "log",
    "abs": "abs",
    "floor": "floor",
    "ceil": "ceil",
    "atan2": "atan2",
    "hypot": "hypot",
    "pow": "pow",
    "min": "min",
    "max": "max",
}


@dataclass
class LoweringContext:
    """Name environment for one block region."""

    builder: FunctionBuilder
    #: Name -> IR expression (Var for ports/arrays, Const for scalar params).
    bindings: dict[str, Expr] = field(default_factory=dict)
    #: Prefix applied to locally created temporaries (usually the block name).
    temp_prefix: str = ""
    #: Names of loop index variables currently in scope.
    _loop_vars: set[str] = field(default_factory=set)

    def lookup(self, name: str) -> Expr | None:
        if name in self._loop_vars:
            return Var(self._temp_name(name) if False else name, INT)
        return self.bindings.get(name)

    def _temp_name(self, name: str) -> str:
        return f"{self.temp_prefix}{name}" if self.temp_prefix else name

    def get_or_create_local(self, name: str) -> Var:
        """Local temporary for an unbound assigned name."""
        mangled = self._temp_name(name)
        existing = self.builder._function.lookup(mangled)
        if existing is None:
            return self.builder.local(mangled)
        return Var(mangled, existing.type)


def _to_zero_based(index: Expr) -> Expr:
    """Convert a 1-based Scilab index expression to a 0-based IR index."""
    folded = try_evaluate_constant(index)
    if folded is not None:
        return Const(int(folded) - 1)
    return BinOp("-", index, Const(1))


def lower_expression(expr: ast.Expression, ctx: LoweringContext) -> Expr:
    """Lower a Scilab expression to an IR expression."""
    if isinstance(expr, ast.Number):
        value = expr.value
        if float(value).is_integer():
            return Const(int(value))
        return Const(float(value))
    if isinstance(expr, ast.Identifier):
        if expr.name == "pi":
            return Const(math.pi)
        if expr.name in ctx._loop_vars:
            return Var(expr.name, INT)
        bound = ctx.bindings.get(expr.name)
        if bound is not None:
            return bound
        mangled = ctx._temp_name(expr.name)
        decl = ctx.builder._function.lookup(mangled)
        if decl is not None:
            return Var(mangled, decl.type)
        raise ScilabLoweringError(f"read of unbound variable {expr.name!r}")
    if isinstance(expr, ast.BinaryOp):
        left = lower_expression(expr.left, ctx)
        right = lower_expression(expr.right, ctx)
        if expr.op == "^":
            return Call("pow", (left, right))
        return BinOp(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        return UnOp(expr.op, lower_expression(expr.operand, ctx))
    if isinstance(expr, ast.FunctionCall):
        return _lower_call(expr, ctx)
    if isinstance(expr, ast.VectorLiteral):
        raise ScilabLoweringError(
            "vector literals are only supported as block parameters, not "
            "inside compiled behaviours"
        )
    raise ScilabLoweringError(f"unsupported expression {type(expr).__name__}")


def _lower_call(expr: ast.FunctionCall, ctx: LoweringContext) -> Expr:
    bound = ctx.bindings.get(expr.name)
    if bound is not None and isinstance(bound, Var) and isinstance(bound.type, ArrayType):
        indices = tuple(_to_zero_based(lower_expression(a, ctx)) for a in expr.args)
        if len(indices) != bound.type.ndim:
            raise ScilabLoweringError(
                f"array {expr.name!r} has {bound.type.ndim} dimensions but was "
                f"indexed with {len(indices)} indices"
            )
        return ArrayRef(bound.name, indices, bound.type.element)
    if expr.name in _BUILTIN_MAP:
        args = tuple(lower_expression(a, ctx) for a in expr.args)
        return Call(_BUILTIN_MAP[expr.name], args)
    raise ScilabLoweringError(
        f"{expr.name!r} is neither a bound array nor a supported builtin"
    )


def _lower_assignment(stmt: ast.Assignment, ctx: LoweringContext) -> None:
    value = lower_expression(stmt.value, ctx)
    if stmt.is_indexed:
        bound = ctx.bindings.get(stmt.target)
        if bound is None or not isinstance(bound, Var) or not isinstance(bound.type, ArrayType):
            raise ScilabLoweringError(
                f"indexed assignment to {stmt.target!r}, which is not a bound array"
            )
        indices = tuple(_to_zero_based(lower_expression(i, ctx)) for i in stmt.indices)
        ctx.builder.assign(ArrayRef(bound.name, indices, bound.type.element), value)
        return
    bound = ctx.bindings.get(stmt.target)
    if bound is not None:
        if isinstance(bound, Var) and not isinstance(bound.type, ArrayType):
            ctx.builder.assign(bound, value)
            return
        if isinstance(bound, Var) and isinstance(bound.type, ArrayType):
            raise ScilabLoweringError(
                f"whole-array assignment to {stmt.target!r} is not supported; "
                "assign elements in a loop"
            )
        raise ScilabLoweringError(f"assignment to read-only parameter {stmt.target!r}")
    target = ctx.get_or_create_local(stmt.target)
    ctx.builder.assign(target, value)


def _lower_for(stmt: ast.ForLoop, ctx: LoweringContext) -> None:
    start = lower_expression(stmt.range.start, ctx)
    stop = lower_expression(stmt.range.stop, ctx)
    step_value = 1
    if stmt.range.step is not None:
        folded = try_evaluate_constant(lower_expression(stmt.range.step, ctx))
        if folded is None:
            raise ScilabLoweringError("for-loop steps must be compile-time constants")
        step_value = int(folded)
        if step_value <= 0:
            raise ScilabLoweringError("only positive for-loop steps are supported")
    # Scilab ranges are inclusive of the stop value.
    stop_const = try_evaluate_constant(stop)
    upper: Expr = Const(int(stop_const) + 1) if stop_const is not None else BinOp("+", stop, Const(1))
    if stmt.var in ctx._loop_vars:
        raise ScilabLoweringError(f"nested reuse of loop variable {stmt.var!r}")
    with ctx.builder.loop(stmt.var, start, upper, step=step_value):
        ctx._loop_vars.add(stmt.var)
        try:
            for inner in stmt.body:
                _lower_statement(inner, ctx)
        finally:
            ctx._loop_vars.discard(stmt.var)


def _lower_statement(stmt: ast.Statement, ctx: LoweringContext) -> None:
    if isinstance(stmt, ast.Assignment):
        _lower_assignment(stmt, ctx)
        return
    if isinstance(stmt, ast.IfStatement):
        cond = lower_expression(stmt.condition, ctx)
        with ctx.builder.if_then(cond):
            for inner in stmt.then_body:
                _lower_statement(inner, ctx)
        if stmt.else_body:
            with ctx.builder.orelse():
                for inner in stmt.else_body:
                    _lower_statement(inner, ctx)
        return
    if isinstance(stmt, ast.ForLoop):
        _lower_for(stmt, ctx)
        return
    raise ScilabLoweringError(f"unsupported statement {type(stmt).__name__}")


def lower_script(
    script: ast.Script,
    builder: FunctionBuilder,
    bindings: dict[str, Expr],
    temp_prefix: str = "",
) -> None:
    """Lower ``script`` into the builder's current block.

    ``bindings`` maps Scilab names (ports, parameters, state variables) to IR
    expressions; names assigned but not bound become function-local
    temporaries prefixed with ``temp_prefix``.
    """
    ctx = LoweringContext(builder=builder, bindings=dict(bindings), temp_prefix=temp_prefix)
    for stmt in script.statements:
        _lower_statement(stmt, ctx)
