"""Model-to-IR front end (paper Section II-B).

``compile_diagram`` turns a validated dataflow diagram into a single IR entry
function whose body is a sequence of per-block code regions; the mapping from
regions back to blocks is preserved so the HTG extractor can name tasks after
the originating blocks.
"""

from repro.frontend.lowering import ScilabLoweringError, lower_script
from repro.frontend.codegen import (
    INTERFACE_SIGNAL_PREFIXES,
    CompiledModel,
    compile_diagram,
    is_interface_signal,
    protected_signal_names,
)

__all__ = [
    "ScilabLoweringError",
    "lower_script",
    "CompiledModel",
    "compile_diagram",
    "INTERFACE_SIGNAL_PREFIXES",
    "is_interface_signal",
    "protected_signal_names",
]
