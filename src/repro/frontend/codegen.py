"""Compilation of dataflow diagrams into the C-subset IR.

``compile_diagram`` produces one IR entry function representing a single
synchronous step of the diagram.  The function body is a sequence of
per-block regions (one ``ir.Block`` per dataflow block, in execution order);
inter-block signals become shared buffers, diagram inputs/outputs become
function parameters, array-valued block parameters become constant input
arrays, and block state becomes persistent shared storage.

The per-block region mapping (:attr:`CompiledModel.block_regions`) is what
the HTG extractor uses to name tasks after the originating blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ir.builder import FunctionBuilder
from repro.ir.expressions import Const, Expr, Var
from repro.ir.program import Function, Program, Storage, VarDecl
from repro.ir.statements import Block as IRBlock
from repro.ir.types import FLOAT, ArrayType
from repro.frontend.lowering import ScilabLoweringError, lower_script
from repro.model.blocks import Port
from repro.model.diagram import Connection, Diagram


#: Prefixes of the declarations that carry data across task boundaries:
#: inter-block signals (``sig_``) and the model's external interface
#: (``in_``/``out_``).  They are how cores exchange data, so they must stay
#: in shared memory -- passes that privatise storage (e.g. scratchpad
#: allocation) must leave them alone.
INTERFACE_SIGNAL_PREFIXES = ("sig_", "in_", "out_")


def is_interface_signal(name: str) -> bool:
    """Whether ``name`` names an inter-task signal or external port buffer."""
    return name.startswith(INTERFACE_SIGNAL_PREFIXES)


def protected_signal_names(function) -> set[str]:
    """Declarations of ``function`` that must stay in shared memory.

    These are the inter-task communication buffers produced by the front end
    (see :data:`INTERFACE_SIGNAL_PREFIXES`); only block-internal state is
    eligible for privatising transformations such as scratchpad allocation.
    """
    return {decl.name for decl in function.all_decls() if is_interface_signal(decl.name)}


def _signal_name(connection: Connection) -> str:
    return f"sig_{connection.src_block}_{connection.src_port}"


def _input_name(block: str, port: str) -> str:
    return f"in_{block}_{port}"


def _output_name(block: str, port: str) -> str:
    return f"out_{block}_{port}"


def _param_name(block: str, param: str) -> str:
    return f"p_{block}_{param}"


def _state_name(block: str, state: str) -> str:
    return f"st_{block}_{state}"


@dataclass
class CompiledModel:
    """Result of compiling a diagram: IR program plus binding metadata."""

    diagram_name: str
    program: Program
    entry_name: str
    #: External input parameter name -> (block, port, shape).
    inputs: dict[str, tuple[str, str, tuple[int, ...]]] = field(default_factory=dict)
    #: External output parameter name -> (block, port, shape).
    outputs: dict[str, tuple[str, str, tuple[int, ...]]] = field(default_factory=dict)
    #: Constant array parameters that must be passed on every invocation.
    parameter_values: dict[str, np.ndarray] = field(default_factory=dict)
    #: Initial values for persistent state variables.
    state_values: dict[str, Any] = field(default_factory=dict)
    #: Ordered (block name, IR region) pairs composing the entry function body.
    block_regions: list[tuple[str, IRBlock]] = field(default_factory=list)

    @property
    def entry(self) -> Function:
        return self.program.lookup(self.entry_name)

    def run_inputs(self, external: dict[str, Any] | None = None) -> dict[str, Any]:
        """Build a full input binding for the IR interpreter.

        Combines constant parameters, (initial) state values and the caller's
        external inputs keyed either by parameter name or ``block.port``.
        """
        bindings: dict[str, Any] = dict(self.parameter_values)
        bindings.update(self.state_values)
        external = external or {}
        for param_name, (block, port, shape) in self.inputs.items():
            for key in (param_name, f"{block}.{port}"):
                if key in external:
                    bindings[param_name] = external[key]
                    break
            else:
                bindings[param_name] = 0.0 if shape == () else np.zeros(shape)
        return bindings

    def output_key(self, block: str, port: str) -> str:
        return _output_name(block, port)


class ModelCompilationError(ValueError):
    """Raised when a diagram cannot be compiled to IR."""


def _declare_port_var(
    fb: FunctionBuilder, name: str, port: Port, storage: Storage
) -> Var:
    if port.is_scalar:
        if storage is Storage.INPUT:
            return fb.scalar_input(name)
        fb._function.declare(VarDecl(name, FLOAT, storage))
        return Var(name, FLOAT)
    ty = ArrayType(FLOAT, port.shape)
    if storage is Storage.INPUT:
        fb._function.params.append(VarDecl(name, ty, Storage.INPUT))
    else:
        fb._function.declare(VarDecl(name, ty, storage))
    return Var(name, ty)


def compile_diagram(diagram: Diagram, entry_name: str | None = None) -> CompiledModel:
    """Compile ``diagram`` to an IR program (one synchronous step)."""
    diagram.validate()
    entry_name = entry_name or f"{diagram.name}_step"
    fb = FunctionBuilder(entry_name)
    model = CompiledModel(diagram_name=diagram.name, program=Program(diagram.name), entry_name=entry_name)

    # --- declare signals, external I/O, parameters and state -------------- #
    signal_vars: dict[tuple[str, str], Var] = {}
    for conn in diagram.connections:
        key = (conn.src_block, conn.src_port)
        if key in signal_vars:
            continue
        port = diagram.blocks[conn.src_block].output_port(conn.src_port)
        signal_vars[key] = _declare_port_var(fb, _signal_name(conn), port, Storage.SHARED)

    input_vars: dict[tuple[str, str], Var] = {}
    for block_name, port_name in diagram.external_inputs:
        port = diagram.blocks[block_name].input_port(port_name)
        name = _input_name(block_name, port_name)
        input_vars[(block_name, port_name)] = _declare_port_var(fb, name, port, Storage.INPUT)
        model.inputs[name] = (block_name, port_name, port.shape)

    output_vars: dict[tuple[str, str], Var] = {}
    for block_name, port_name in diagram.external_outputs:
        port = diagram.blocks[block_name].output_port(port_name)
        name = _output_name(block_name, port_name)
        output_vars[(block_name, port_name)] = _declare_port_var(fb, name, port, Storage.OUTPUT)
        model.outputs[name] = (block_name, port_name, port.shape)

    param_vars: dict[tuple[str, str], Expr] = {}
    for block in diagram.blocks.values():
        for pname, pvalue in block.params.items():
            if np.isscalar(pvalue):
                param_vars[(block.name, pname)] = Const(
                    int(pvalue) if float(pvalue).is_integer() else float(pvalue)
                )
            else:
                arr = np.asarray(pvalue, dtype=float)
                var_name = _param_name(block.name, pname)
                ty = ArrayType(FLOAT, arr.shape)
                fb._function.params.append(VarDecl(var_name, ty, Storage.INPUT))
                param_vars[(block.name, pname)] = Var(var_name, ty)
                model.parameter_values[var_name] = arr

    state_vars: dict[tuple[str, str], Var] = {}
    for block in diagram.blocks.values():
        for sname, svalue in block.state.items():
            var_name = _state_name(block.name, sname)
            if np.isscalar(svalue):
                fb._function.declare(VarDecl(var_name, FLOAT, Storage.SHARED, initial=float(svalue)))
                state_vars[(block.name, sname)] = Var(var_name, FLOAT)
                model.state_values[var_name] = float(svalue)
            else:
                arr = np.asarray(svalue, dtype=float)
                ty = ArrayType(FLOAT, arr.shape)
                fb._function.declare(VarDecl(var_name, ty, Storage.SHARED))
                state_vars[(block.name, sname)] = Var(var_name, ty)
                model.state_values[var_name] = arr

    # --- lower each block in execution order ------------------------------ #
    driver_of: dict[tuple[str, str], Connection] = {
        (c.dst_block, c.dst_port): c for c in diagram.connections
    }
    for block_name in diagram.execution_order():
        block = diagram.blocks[block_name]
        bindings: dict[str, Expr] = {}
        for port in block.inputs:
            key = (block_name, port.name)
            if key in driver_of:
                conn = driver_of[key]
                bindings[port.name] = signal_vars[(conn.src_block, conn.src_port)]
            elif key in input_vars:
                bindings[port.name] = input_vars[key]
            else:  # pragma: no cover - caught by diagram.validate()
                raise ModelCompilationError(
                    f"input {block_name}.{port.name} has no driver"
                )
        for port in block.outputs:
            key = (block_name, port.name)
            if key in signal_vars:
                bindings[port.name] = signal_vars[key]
            elif key in output_vars:
                bindings[port.name] = output_vars[key]
            else:
                # Unobserved output: still needs storage for the behaviour.
                var = _declare_port_var(
                    fb, f"unused_{block_name}_{port.name}", port, Storage.LOCAL
                )
                bindings[port.name] = var
        for pname in block.params:
            bindings[pname] = param_vars[(block_name, pname)]
        for sname in block.state:
            bindings[sname] = state_vars[(block_name, sname)]

        region = IRBlock()
        fb._blocks.append(region)
        try:
            lower_script(block.script, fb, bindings, temp_prefix=f"{block_name}__")
        except ScilabLoweringError as exc:
            raise ModelCompilationError(
                f"block {block_name!r} ({block.kind}): {exc}"
            ) from exc
        finally:
            fb._blocks.pop()
        fb.emit(region)
        region.annotation = block_name  # type: ignore[attr-defined]
        model.block_regions.append((block_name, region))

        # If an output port is both connected and externally observed, copy
        # the signal buffer into the external output after the block region.
        for port in block.outputs:
            key = (block_name, port.name)
            if key in signal_vars and key in output_vars:
                copy_region = IRBlock()
                fb._blocks.append(copy_region)
                try:
                    src = signal_vars[key]
                    dst = output_vars[key]
                    if port.is_scalar:
                        fb.assign(dst, src)
                    else:
                        with fb.loop(f"cp_{block_name}_{port.name}", 0, port.shape[0]) as i:
                            fb.assign(fb.at(dst, i), fb.at(src, i))
                finally:
                    fb._blocks.pop()
                fb.emit(copy_region)
                model.block_regions.append((f"{block_name}__copyout", copy_region))

    function = fb.build()
    function.annotations["diagram"] = diagram.name
    model.program.add(function)
    return model
