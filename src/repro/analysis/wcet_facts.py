"""WCET tightener: derive IPET flow facts from value-range analysis.

:func:`derive_flow_facts` runs the interval analysis over a function's CFG
and turns its results into a :class:`repro.wcet.ipet.FlowFacts` bundle:

* **infeasible edges** -- edges whose refined environment is bottom (the
  branch condition contradicts every value the variables can hold) become
  ``x_e = 0`` constraints;
* **derived loop bounds** -- for counted loops, the trip count is re-derived
  from the intervals of ``lower``/``upper`` *at the loop entry*, which can
  beat a conservative ``max_trip_count`` annotation (and can bound loops
  the front-end left unannotated);
* **verification findings** -- when a declared bound is provably *below*
  the minimum trip count the analysis can guarantee, a warning finding is
  emitted (the declared bound would make the WCET bound unsound).

Every fact only adds constraints to the IPET maximisation, so
``ipet_wcet(f, m, facts).wcet <= ipet_wcet(f, m).wcet`` holds by
construction whenever both solve.
"""

from __future__ import annotations

import math

from repro.analysis.report import AnalysisReport, Finding
from repro.analysis.dataflow import run_dataflow
from repro.analysis.value_range import INF, ValueRangeAnalysis, eval_range
from repro.ir.cfg import ControlFlowGraph, build_cfg
from repro.ir.program import Function
from repro.ir.statements import For
from repro.wcet.ipet import FlowFacts


def _trip_bounds(stmt: For, env) -> tuple[int | None, int]:
    """(max trips or None if unbounded, provable minimum trips)."""
    lo_r = eval_range(stmt.lower, env)
    up_r = eval_range(stmt.upper, env)
    step = abs(stmt.step)
    if stmt.step > 0:
        span_hi = up_r.hi - lo_r.lo
        span_lo = up_r.lo - lo_r.hi
    else:
        span_hi = lo_r.hi - up_r.lo
        span_lo = lo_r.lo - up_r.hi
    trip_hi = (
        None
        if math.isnan(span_hi) or span_hi >= INF
        else max(0, int(math.ceil(span_hi / step)))
    )
    trip_lo = (
        0
        if math.isnan(span_lo) or span_lo <= -INF or span_lo >= INF
        else max(0, int(math.ceil(span_lo / step)))
    )
    return trip_hi, trip_lo


def derive_flow_facts(
    function: Function, cfg: ControlFlowGraph | None = None
) -> tuple[FlowFacts, AnalysisReport]:
    """Value-range flow facts for ``function`` plus the verification report.

    The report carries warning findings for declared loop bounds below the
    provable minimum trip count and error findings for loops that neither
    an annotation nor the analysis can bound; its ``checked`` counters
    record edges examined, loops verified/tightened/derived and whether the
    fixed point converged.
    """
    cfg = cfg if cfg is not None else build_cfg(function, allow_unbounded=True)
    report = AnalysisReport("wcet_facts")
    analysis = ValueRangeAnalysis(function, cfg)
    result = run_dataflow(cfg, analysis)
    report.bump("iterations", result.iterations)
    if not result.converged:
        # a non-converged iterate is not an over-approximation: emit no facts
        report.add(
            Finding(
                code="wcet.analysis-diverged",
                message="value-range analysis hit the iteration cap; "
                "no flow facts derived",
                function=function.name,
                severity="info",
            )
        )
        return FlowFacts(), report

    infeasible: set[tuple[int, int, str]] = set()
    for edge in cfg.edges:
        report.bump("edges_checked")
        state = analysis.edge_transfer(edge, result.exit[edge.src.bid])
        if state is None:
            infeasible.add(edge.key)
    report.bump("edges_infeasible", len(infeasible))

    loop_bounds: dict[int, int] = {}
    for header_bid, stmt in sorted(cfg.loop_stmts.items()):
        declared = cfg.loop_bounds.get(header_bid)
        if not isinstance(stmt, For):
            if declared is None:
                report.add(
                    Finding(
                        code="wcet.unbounded-loop",
                        message="while loop has no trip-count bound",
                        function=function.name,
                        subject=f"BB{header_bid}",
                    )
                )
            continue
        # environment at loop entry: join over the non-back in-edges
        entry_states = [
            analysis.edge_transfer(e, result.exit[e.src.bid])
            for e in cfg.edges
            if e.dst.bid == header_bid and e.kind != "back"
        ]
        env = analysis.join(entry_states) if entry_states else None
        if env is None:
            # the loop is unreachable; its back edge can never run
            loop_bounds[header_bid] = 0
            report.bump("loops_unreachable")
            continue
        trip_hi, trip_lo = _trip_bounds(stmt, env)
        report.bump("loops_checked")
        if trip_hi is not None:
            if declared is None:
                loop_bounds[header_bid] = trip_hi
                report.bump("bounds_derived")
            elif trip_hi < declared:
                loop_bounds[header_bid] = trip_hi
                report.bump("bounds_tightened")
            else:
                report.bump("bounds_verified")
        elif declared is None:
            report.add(
                Finding(
                    code="wcet.unbounded-loop",
                    message=(
                        f"loop over {stmt.index.name!r} has no max_trip_count "
                        "annotation and no statically derivable bound"
                    ),
                    function=function.name,
                    subject=f"BB{header_bid}",
                )
            )
        if declared is not None and declared < trip_lo:
            report.add(
                Finding(
                    code="wcet.optimistic-loop-bound",
                    message=(
                        f"declared bound {declared} of loop over "
                        f"{stmt.index.name!r} is below the provable minimum "
                        f"trip count {trip_lo}; the WCET bound may be unsound"
                    ),
                    function=function.name,
                    subject=f"BB{header_bid}",
                    severity="warning",
                )
            )
    return FlowFacts(
        infeasible_edges=frozenset(infeasible), loop_bounds=loop_bounds
    ), report


def tightened_ipet_wcet(function: Function, model) -> tuple[float, AnalysisReport]:
    """IPET WCET with flow facts applied; convenience one-call wrapper."""
    from repro.wcet.ipet import ipet_wcet

    facts, report = derive_flow_facts(function)
    result = ipet_wcet(function, model, flow_facts=facts)
    report.bump("wcet_cycles", int(result.wcet))
    return result.wcet, report
