"""Static analyses over the IR, the CFG and scheduled task graphs.

This package is the always-on trust layer of the flow: it verifies the
inputs the WCET machinery takes on faith (loop bounds, branch feasibility),
proves schedules race-free before code generation, and lints the IR the
front-end and the transformation passes produce.  Everything reports
through the typed :class:`~repro.analysis.report.Finding` /
:class:`~repro.analysis.report.AnalysisReport` model consumed by
``python -m repro lint`` and the pipeline gates.

Analysis contract
=================

**Framework.**  :mod:`repro.analysis.dataflow` solves monotone dataflow
problems over :class:`repro.ir.cfg.ControlFlowGraph` with a FIFO worklist.
An analysis declares a direction, a boundary state, a bottom state, a
``join`` (least upper bound), a per-block ``transfer`` and an optional
per-edge ``edge_transfer``.  Facts in a :class:`DataflowResult` are keyed
by block id in *program order*: ``entry[bid]`` holds before the block,
``exit[bid]`` after, for both directions.

**Lattices and termination.**

* *Reaching definitions* (:mod:`~repro.analysis.reaching_defs`): maps
  variable names to frozensets of defining statement ids (sentinels:
  ``-1`` = defined before the function runs, ``-2`` = uninitialised
  local).  Join is per-variable union.  The lattice is finite (statements
  are finite), so the fixed point terminates without widening.
* *Liveness* (:mod:`~repro.analysis.liveness`): backward, frozensets of
  names, join is union; finite lattice, terminates.
* *Value ranges* (:mod:`~repro.analysis.value_range`): maps names to
  closed intervals with infinite endpoints; missing name = top, ``None``
  environment = unreachable (bottom).  Join is the interval hull (names
  missing from either side drop to top).  The lattice has infinite
  ascending chains, so termination comes from jump-to-infinity widening
  after ``widen_after`` re-entries of a block; the solver additionally
  caps per-block visits and flags ``converged=False`` if ever hit, and
  consumers must then discard the states (an unfinished iterate is *not*
  an over-approximation).

**Soundness caveats.**  Array contents are not tracked (element reads are
top, element writes update the whole array weakly); the domains are
non-relational; shared/state variables are top at function entry because
other cores and earlier activations may have written them; float
comparisons refine without the one-integer shrink applied to ``int``-typed
operands.  Within those limits every reported fact is an
over-approximation of the concrete semantics implemented by
:mod:`repro.ir.interpreter`.

**Memory footprints and static interference**
(:mod:`~repro.analysis.footprints`, :mod:`~repro.analysis.static_mhp`).
Per-task footprints bound which *elements* of the shared arrays a task may
touch: first-dimension index intervals evaluated in the loop-nest
environment, endpoint-truncated exactly like the interpreter truncates
indices, with anything unprovable (symbolic strides, reassigned indices,
declared-but-unwalked names) widening to the whole array.  Footprints
answer two different questions and the distinction is load-bearing:

* *conflict-freedom* (no write-write / write-read element overlap) is what
  the race checker needs -- read-read overlap is fine;
* *address-disjointness* (no overlap of any kind, reads included) is what
  interference pruning needs -- two readers of one bank still collide on
  the interconnect.

What footprints do **not** prove: per-element orderings within an
overlapping region, anything about scalars for address-disjointness (the
shared-access counters are array-only by construction), or multi-dim
disjointness beyond the first index.  The historical *assumption* that
sibling loop chunks of a split loop write disjoint slices is retired: the
race checker now *proves* chunk disjointness from footprints and degrades
to a ``race.chunk-overlap-unproven`` warning when it cannot -- never a
silent pass.  The static-MHP relation built on top
(:func:`~repro.analysis.static_mhp.compute_static_mhp`) excludes
dependence-ordered pairs (count-preserving, pure speedup) and
address-disjoint pairs (tightening, models banked arbitration; opt-in via
``static_pruning``), and every exclusion is re-provable by the independent
:class:`~repro.analysis.certify.ContentionCertificate` checker.

**Flow-fact format** (:class:`repro.wcet.ipet.FlowFacts`): infeasible
edges are stable CFG edge keys ``(src bid, dst bid, kind)`` pinned to
``x_e = 0`` in the IPET LP; derived loop bounds map loop-header block ids
to trip counts merged as ``min(declared, derived)``.  Facts only ever add
constraints to a maximisation problem, so the tightened bound is provably
no looser than the plain one.

**Race checking** (:mod:`~repro.analysis.races`): happens-before is the
transitive closure of HTG dependence edges plus per-core program order;
every cross-task conflict (write-write or read-write on a declaration in
``SHARED`` / ``INPUT`` / ``OUTPUT`` storage) must be ordered, else a
``race.*`` finding is produced before codegen.

Incremental re-analysis contract
================================

:mod:`repro.analysis.incremental` turns one finished run into a reusable
**analysis dependency graph**: per-stage *input frontiers* (digests of
everything a stage consumes -- diagram/function/region fingerprints, the
HTG structure digest, the platform cost signature, the config digest) plus
the per-region code fingerprints.  The rules:

* **A frontier match proves reuse.**  A stage may be replayed from the
  previous run exactly when its input frontier is byte-identical; an
  unfingerprintable input (``None`` frontier) can never prove reuse and
  forces a re-run.  The frontiers deliberately over-approximate, so the
  engine errs only towards recomputing.
* **Code-level facts key on the function fingerprint.**  The dataflow /
  lint / flow-facts analyses are pure functions of one IR function's
  content; :class:`~repro.analysis.incremental.IncrementalAnalysisStore`
  replays their reports verbatim for unchanged fingerprints with every
  finding's provenance set to ``reused`` (see
  :data:`~repro.analysis.report.PROVENANCES`).
* **Race pairs re-check only changed endpoints.**
  :func:`~repro.analysis.races.incremental_race_check` reuses the
  transitive closure when the happens-before relation and task universe
  are equal, and re-scans only pairs with a changed endpoint; clean-pair
  findings are replayed as ``reused``.  Any guard mismatch falls back to
  the full scan.
* **Warm starts must be proved, not trusted.**  The system-level fixed
  point may be seeded from a previous converged result
  (:func:`repro.wcet.system_level.warm_start_hint`), but a warm-seeded
  result is only returned after the independent
  :class:`~repro.analysis.certify.FixedPointCertificate` checker accepts
  it; a refutation or non-convergence silently falls back to the cold
  iteration.  Soundness therefore never rests on the seed.
* **Bit-identity is the acceptance bar.**  ``Pipeline.run_incremental``
  must produce results bit-identical to a cold run of the edited model;
  the property tests drive random edit scripts
  (:mod:`repro.usecases.workloads`) to enforce exactly that.

``python -m repro diff <old> <new>`` prints the fingerprint diff and the
minimal invalidation set between two models without running the dirty
stages.

Certificate contract (proof-carrying results)
=============================================

:mod:`repro.analysis.certify` pairs each expensive claim of the flow with
a serializable **certificate** and an **independent checker** that shares
no code with the producer.  Certificate formats (all expose ``as_dict``
for serialization):

* :class:`~repro.analysis.certify.ScheduleCertificate` -- mapping,
  per-core orders, per-task start/finish times, priced cross-core edge
  delays, claimed WCET bound.  The checker re-validates structural
  coverage, per-core exclusivity, precedence with independently re-priced
  communication latencies, and ``wcet_bound == max finish``, directly
  against the HTG and platform.
* :class:`~repro.analysis.certify.IpetCertificate` -- the LP primal
  solution (per-edge counts), block costs, effective loop bounds, pinned
  infeasible edges and, when available, semantic dual values.  The checker
  rebuilds the CFG and re-verifies flow conservation, unit entry/exit
  flow, loop bounds, flow-fact pins and the recomputed objective; with
  duals it additionally proves *optimality* via reduced-cost feasibility
  and a zero duality gap.
* :class:`~repro.analysis.certify.FixedPointCertificate` -- per-task
  windows, effective/base WCETs, shared-access counts, contender counts,
  the penalty table and edge delays, plus the pruned contender skeleton
  (``allowed``) when the run used ``static_pruning``.  The checker
  re-derives contention from the claimed windows (restricted to the
  skeleton when present) and re-applies the interference equations
  once: any component they can still increase refutes the claimed fixed
  point.
* :class:`~repro.analysis.certify.ContentionCertificate` -- the static-MHP
  skeleton itself.  The checker re-proves every excluded cross-core
  sharer pair ordered (its own reachability search over the HTG edges) or
  address-disjoint (its own footprint walker and interval arithmetic);
  a fabricated disjointness claim or a dropped happens-before edge is a
  ``certify.contention.unjustified-exclusion`` refutation.

What the checkers do **not** prove: the ground-truth inputs they carry
verbatim (per-block cycle costs, isolated WCETs, shared-access counts --
the hardware model's and code-level analysis' contract), tightness (slack
is sound for upper bounds), and the soundness of declared loop bounds
(:mod:`~repro.analysis.wcet_facts`' job).  The trust argument is
fault-*independence*: a producer bug must be matched by a compensating
checker bug to go unnoticed.  ``python -m repro certify`` and the
pipeline's ``certify`` stage (``ToolchainConfig.certify``) gate on these
checkers; cache replays re-validate via
``system_level_wcet(..., certify=True)``.
"""

from repro.analysis.certify import (
    CertificateChain,
    CertificationError,
    ContentionCertificate,
    FixedPointCertificate,
    IpetCertificate,
    ScheduleCertificate,
    build_certificates,
    certify_pipeline_result,
)
from repro.analysis.footprints import (
    FootprintStore,
    TaskFootprint,
    footprints_address_disjoint,
    footprints_conflict_free,
    task_footprint,
    task_footprints,
)
from repro.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    run_dataflow,
)
from repro.analysis.incremental import (
    FingerprintDiff,
    IncrementalAnalysisStore,
    IncrementalReport,
    diagram_fingerprint,
    diff_summaries,
    summarize_result,
)
from repro.analysis.liveness import Liveness, dead_stores, liveness
from repro.analysis.races import (
    RaceCheckState,
    check_races,
    check_schedule_races,
    incremental_race_check,
)
from repro.analysis.reaching_defs import (
    DEF_EXTERNAL,
    DEF_UNINIT,
    ReachingDefinitions,
    definitely_uninitialized_uses,
    reaching_definitions,
)
from repro.analysis.report import (
    SEVERITIES,
    AnalysisReport,
    Finding,
    severity_at_least,
)
from repro.analysis.static_mhp import StaticMhpRelation, compute_static_mhp
from repro.analysis.value_range import (
    ValueRange,
    ValueRangeAnalysis,
    assume,
    eval_range,
    truth,
    value_ranges,
)
from repro.analysis.verifier import IRVerifierPass, verify_function
from repro.analysis.wcet_facts import derive_flow_facts, tightened_ipet_wcet

__all__ = [
    "AnalysisReport",
    "CertificateChain",
    "CertificationError",
    "ContentionCertificate",
    "DataflowAnalysis",
    "DataflowResult",
    "DEF_EXTERNAL",
    "DEF_UNINIT",
    "Finding",
    "FingerprintDiff",
    "FixedPointCertificate",
    "FootprintStore",
    "IRVerifierPass",
    "IncrementalAnalysisStore",
    "IncrementalReport",
    "IpetCertificate",
    "Liveness",
    "RaceCheckState",
    "ReachingDefinitions",
    "SEVERITIES",
    "ScheduleCertificate",
    "StaticMhpRelation",
    "TaskFootprint",
    "ValueRange",
    "ValueRangeAnalysis",
    "assume",
    "build_certificates",
    "certify_pipeline_result",
    "check_races",
    "check_schedule_races",
    "compute_static_mhp",
    "dead_stores",
    "definitely_uninitialized_uses",
    "derive_flow_facts",
    "diagram_fingerprint",
    "diff_summaries",
    "eval_range",
    "footprints_address_disjoint",
    "footprints_conflict_free",
    "incremental_race_check",
    "liveness",
    "reaching_definitions",
    "run_dataflow",
    "severity_at_least",
    "summarize_result",
    "task_footprint",
    "task_footprints",
    "tightened_ipet_wcet",
    "truth",
    "value_ranges",
    "verify_function",
]
