"""Proof-carrying results: certificates + independent checkers.

Every expensive claim of the flow -- a schedule's WCET bound, an IPET LP
optimum, a system-level interference fixed point -- is paired with a small
serializable **certificate** holding enough witness data for a cheap
**independent checker** to re-validate it in one pass.  Producer and
checker deliberately share no code: the schedule checker works off the HTG
and platform directly (not :meth:`Schedule.validate`), the IPET checker
rebuilds the CFG and re-verifies feasibility *and* optimality from the LP
witness (flow conservation, loop bounds, objective, duality), and the
fixed-point checker re-applies the interference equations once and rejects
any state they can still increase.

The trust argument: a bug in a producer must now be *matched* by a
compensating bug in its checker to slip through, and cache-served results
(:func:`repro.wcet.system_level.system_level_wcet` with ``certify=True``)
are re-validated at replay, so corrupt, stale or hand-edited cache entries
are detected instead of silently trusted.

Entry points: :func:`certify_pipeline_result` for a finished
:class:`~repro.core.pipeline.PipelineResult` (this is what the pipeline's
``certify`` stage and ``python -m repro certify`` call) and
:func:`build_certificates` for a bare design point.  Rejections carry
typed :class:`~repro.analysis.report.Finding` objects under the
``certify.*`` code namespace; :class:`CertificationError` is raised where
a refuted result must stop the flow.
"""

from repro.analysis.certify.chain import (
    CertificateChain,
    CertificationError,
    build_certificates,
    certify_pipeline_result,
)
from repro.analysis.certify.contention_cert import (
    ContentionCertificate,
    build_contention_certificate,
    check_contention_certificate,
)
from repro.analysis.certify.fixed_point_cert import (
    FixedPointCertificate,
    build_fixed_point_certificate,
    check_fixed_point_certificate,
)
from repro.analysis.certify.ipet_cert import (
    IpetCertificate,
    build_ipet_certificate,
    check_ipet_certificate,
)
from repro.analysis.certify.schedule_cert import (
    ScheduleCertificate,
    build_schedule_certificate,
    check_schedule_certificate,
)

__all__ = [
    "CertificateChain",
    "CertificationError",
    "ContentionCertificate",
    "FixedPointCertificate",
    "IpetCertificate",
    "ScheduleCertificate",
    "build_certificates",
    "build_contention_certificate",
    "build_fixed_point_certificate",
    "build_ipet_certificate",
    "build_schedule_certificate",
    "certify_pipeline_result",
    "check_contention_certificate",
    "check_fixed_point_certificate",
    "check_ipet_certificate",
    "check_schedule_certificate",
]
