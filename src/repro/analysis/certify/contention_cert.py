"""Contention certificates: static-MHP pruning witness + checker.

``system_level_wcet(static_pruning=True)`` excludes task pairs from the
MHP contender derivation when the static interference analysis proves them
dependence-ordered or shared-footprint-disjoint.  An unsound exclusion
silently *lowers* the WCET bound, so the claim needs its own certificate:
the checker re-derives, for **every** cross-core (task, sharer) pair the
skeleton excludes, an independent proof that the exclusion was justified
-- its own reachability search over the HTG edges and its own footprint
walker with its own interval arithmetic, sharing no code with
:mod:`repro.analysis.static_mhp` / :mod:`repro.analysis.footprints`.

A pair the checker can prove neither ordered nor address-disjoint is a
typed refutation (``certify.contention.unjustified-exclusion``); a
fabricated disjointness claim or a dropped happens-before edge therefore
cannot survive checking.  What the checker does *not* prove, mirroring the
fixed-point certificate's trust boundary: the shared-access counts carried
verbatim (they decide who is a sharer) and the HTG edge set itself -- the
checker proves the skeleton consistent with the graph it is handed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.report import AnalysisReport, Finding

_INF = float("inf")
_UNBOUNDED = (-_INF, _INF)


@dataclass
class ContentionCertificate:
    """Serializable witness of one static-MHP pruned contender skeleton."""

    htg_name: str
    function_name: str
    mapping: dict[str, int]
    #: per-task worst-case shared-access counts (who is a sharer)
    shared: dict[str, int]
    #: per-task allowed contenders -- everything *not* listed is claimed
    #: excluded and must be re-proved by the checker
    allowed: dict[str, list[str]] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kind": "contention",
            "htg": self.htg_name,
            "function": self.function_name,
            "mapping": dict(self.mapping),
            "shared": dict(self.shared),
            "allowed": {tid: list(o) for tid, o in sorted(self.allowed.items())},
        }


def build_contention_certificate(result, htg, function) -> ContentionCertificate:
    """Snapshot the pruning claim of a ``SystemWcetResult``.

    Requires ``result.mhp_allowed`` (i.e. a run with ``static_pruning`` on).
    """
    allowed = result.mhp_allowed
    if allowed is None:
        raise ValueError(
            "result carries no static-MHP skeleton (static_pruning was off)"
        )
    return ContentionCertificate(
        htg_name=htg.name,
        function_name=function.name,
        mapping=dict(result.task_cores),
        shared=dict(result.task_shared_accesses),
        allowed={tid: list(others) for tid, others in allowed.items()},
    )


# ---------------------------------------------------------------------- #
# independent interval arithmetic (deliberately NOT value_range.py)
# ---------------------------------------------------------------------- #
def _corners(xs, ys, op):
    vals = []
    for x in xs:
        for y in ys:
            v = op(x, y)
            if not math.isnan(v):
                vals.append(v)
    if not vals:
        return _UNBOUNDED
    return (min(vals), max(vals))


def _eval_bounds(expr, env: dict) -> tuple[float, float]:
    from repro.ir.expressions import ArrayRef, BinOp, Call, Const, UnOp, Var

    if isinstance(expr, Const):
        v = float(expr.value)
        return (v, v)
    if isinstance(expr, Var):
        return env.get(expr.name, _UNBOUNDED)
    if isinstance(expr, BinOp):
        op = expr.op
        if op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
            return (0.0, 1.0)
        alo, ahi = _eval_bounds(expr.left, env)
        blo, bhi = _eval_bounds(expr.right, env)
        if op == "+":
            return (alo + blo, ahi + bhi)
        if op == "-":
            return (alo - bhi, ahi - blo)
        if op == "*":
            return _corners(
                (alo, ahi), (blo, bhi), lambda x, y: 0.0 if math.isnan(x * y) else x * y
            )
        if op == "/":
            if blo > 0 or bhi < 0:
                return _corners((alo, ahi), (blo, bhi), lambda x, y: x / y)
            return _UNBOUNDED
        if op == "%":
            if alo >= 0 and blo > 0 and bhi < _INF:
                return (0.0, min(ahi, bhi - 1) if ahi < _INF else bhi - 1)
            return _UNBOUNDED
        if op == "min":
            return (min(alo, blo), min(ahi, bhi))
        if op == "max":
            return (max(alo, blo), max(ahi, bhi))
        return _UNBOUNDED
    if isinstance(expr, UnOp):
        lo, hi = _eval_bounds(expr.operand, env)
        if expr.op == "-":
            return (-hi, -lo)
        if expr.op == "abs":
            if lo >= 0:
                return (lo, hi)
            if hi <= 0:
                return (-hi, -lo)
            return (0.0, max(-lo, hi))
        if expr.op == "floor":
            return (
                math.floor(lo) if lo > -_INF else -_INF,
                math.floor(hi) if hi < _INF else _INF,
            )
        return _UNBOUNDED
    if isinstance(expr, ArrayRef):
        return _UNBOUNDED
    if isinstance(expr, Call):
        args = [_eval_bounds(a, env) for a in expr.args]
        if expr.func == "min":
            return (min(a[0] for a in args), min(a[1] for a in args))
        if expr.func == "max":
            return (max(a[0] for a in args), max(a[1] for a in args))
        return _UNBOUNDED
    return _UNBOUNDED


def _itrunc(x: float) -> float:
    """The interpreter's ``int()`` truncation, endpoint-wise (monotone)."""
    if x == _INF or x == -_INF:
        return x
    return float(math.trunc(x))


def _loop_values(stmt, env: dict) -> "tuple[float, float] | None":
    """Bounds of the index values the loop *body* observes, or ``None``
    when the loop provably never runs (``int``-truncated like the
    interpreter's loop protocol)."""
    llo, lhi = _eval_bounds(stmt.lower, env)
    ulo, uhi = _eval_bounds(stmt.upper, env)
    if stmt.step > 0:
        lo = _itrunc(llo)
        hi = _itrunc(uhi) - 1 if uhi < _INF else _INF
    else:
        lo = _itrunc(ulo) + 1 if ulo > -_INF else -_INF
        hi = _itrunc(lhi)
    if lo > hi:
        return None
    return (lo, hi)


# ---------------------------------------------------------------------- #
# independent footprint derivation (deliberately NOT footprints.py)
# ---------------------------------------------------------------------- #
def _shared_array_names(function) -> set[str]:
    from repro.ir.program import Storage

    return {
        d.name
        for d in function.all_decls()
        if d.is_array and d.storage in (Storage.SHARED, Storage.INPUT, Storage.OUTPUT)
    }


def _collect_accesses(
    stmt, env: dict, shared: set, acc: dict
) -> None:
    from repro.ir.expressions import ArrayRef
    from repro.ir.statements import Assign, Block, ExprStmt, For, If, Return, While

    def record_expr(expr):
        for node in expr.walk():
            if isinstance(node, ArrayRef) and node.array in shared:
                lo, hi = _eval_bounds(node.indices[0], env)
                acc.setdefault(node.array, []).append((_itrunc(lo), _itrunc(hi)))

    if isinstance(stmt, Assign):
        for expr in stmt.expressions():
            record_expr(expr)
        if isinstance(stmt.target, ArrayRef):
            if stmt.target.array in shared:
                lo, hi = _eval_bounds(stmt.target.indices[0], env)
                acc.setdefault(stmt.target.array, []).append(
                    (_itrunc(lo), _itrunc(hi))
                )
        else:
            env.pop(stmt.target.name, None)
        return
    if isinstance(stmt, (Return, ExprStmt)):
        for expr in stmt.expressions():
            record_expr(expr)
        return
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            _collect_accesses(child, env, shared, acc)
        return
    if isinstance(stmt, If):
        record_expr(stmt.cond)
        _collect_accesses(stmt.then_body, env, shared, acc)
        _collect_accesses(stmt.else_body, env, shared, acc)
        return
    if isinstance(stmt, For):
        for expr in stmt.expressions():
            record_expr(expr)
        values = _loop_values(stmt, env)
        if values is None:
            return
        name = stmt.index.name
        saved = env.get(name)
        env[name] = values
        _collect_accesses(stmt.body, env, shared, acc)
        if saved is None:
            env.pop(name, None)
        else:
            env[name] = saved
        return
    if isinstance(stmt, While):
        record_expr(stmt.cond)
        _collect_accesses(stmt.body, env, shared, acc)
        return


def _task_access_bounds(function, task, shared: set) -> dict:
    """Per shared array, the first-index windows ``task`` may access."""
    acc: dict[str, list[tuple[float, float]]] = {}
    _collect_accesses(task.statements, {}, shared, acc)
    # declared-but-unseen shared arrays count as whole-array accesses
    for name in set(task.reads) | set(task.writes):
        if name in shared and name not in acc:
            acc[name] = [_UNBOUNDED]
    return acc


def _bounds_disjoint(a: dict, b: dict) -> bool:
    for name, windows_a in a.items():
        windows_b = b.get(name)
        if not windows_b:
            continue
        for alo, ahi in windows_a:
            for blo, bhi in windows_b:
                if alo <= bhi and blo <= ahi:
                    return False
    return True


def _reachable_pairs(htg, mapping: dict) -> set:
    """Transitive dependence over mapped-task-induced edges, by plain BFS.

    Restricting to mapped endpoints mirrors what the timeline builder
    enforces: an edge touching an unmapped task constrains nothing.
    """
    succs: dict[str, list[str]] = {}
    for edge in htg.edges:
        if edge.src in mapping and edge.dst in mapping:
            succs.setdefault(edge.src, []).append(edge.dst)
    pairs: set[tuple[str, str]] = set()
    for root in mapping:
        frontier = list(succs.get(root, ()))
        seen = set()
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            pairs.add((root, node))
            frontier.extend(succs.get(node, ()))
    return pairs


def check_contention_certificate(
    certificate: ContentionCertificate, htg, function
) -> AnalysisReport:
    """Re-prove every excluded contender pair ordered or address-disjoint."""
    report = AnalysisReport("certify_contention")
    cert = certificate

    def fail(code: str, message: str, subject: str = "", severity: str = "error"):
        report.add(
            Finding(
                code=code,
                message=message,
                function=cert.function_name,
                subject=subject,
                severity=severity,
            )
        )

    if function.name != cert.function_name:
        fail(
            "certify.contention.coverage",
            f"certificate was built for function {cert.function_name!r}, "
            f"checked against {function.name!r}",
        )
        return report
    unknown = sorted(
        {o for others in cert.allowed.values() for o in others} - set(cert.mapping)
    )
    if unknown:
        fail(
            "certify.contention.coverage",
            f"skeleton names unmapped task(s) {', '.join(unknown)}",
        )
        return report

    ordered = _reachable_pairs(htg, cert.mapping)
    shared_names = _shared_array_names(function)
    sharers = sorted(
        tid for tid in cert.mapping if cert.shared.get(tid, 0) > 0
    )
    bounds: dict[str, dict] = {}

    def bounds_of(tid: str) -> "dict | None":
        if tid not in bounds:
            try:
                task = htg.task(tid)
            except KeyError:
                return None
            bounds[tid] = _task_access_bounds(function, task, shared_names)
        return bounds[tid]

    pairs_checked = exclusions = 0
    for tid in sorted(cert.mapping):
        if tid not in htg.tasks:
            fail(
                "certify.contention.coverage",
                f"mapped task {tid!r} is not in the HTG",
                subject=tid,
            )
            continue
        allowed_here = set(cert.allowed.get(tid, ()))
        for other in sharers:
            if other == tid or cert.mapping[other] == cert.mapping[tid]:
                continue
            pairs_checked += 1
            if other in allowed_here:
                continue
            exclusions += 1
            if (tid, other) in ordered or (other, tid) in ordered:
                report.bump("exclusions_ordered")
                continue
            fa = bounds_of(tid)
            fb = bounds_of(other)
            if fa is not None and fb is not None and _bounds_disjoint(fa, fb):
                report.bump("exclusions_disjoint")
                continue
            fail(
                "certify.contention.unjustified-exclusion",
                f"the skeleton excludes sharer {other!r} from task {tid!r}'s "
                "contenders, but the pair is neither dependence-ordered nor "
                "provably footprint-disjoint",
                subject=f"{tid}<->{other}",
            )
    report.bump("pairs_checked", pairs_checked)
    report.bump("exclusions_checked", exclusions)
    return report
