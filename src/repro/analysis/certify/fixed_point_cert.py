"""Fixed-point certificates: interference-equation witness + checker.

:func:`repro.wcet.system_level.system_level_wcet` iterates the interference
equations to a fixed point (or to the all-contend fall-back).  Re-running
the iteration would duplicate the producer; re-*checking* a fixed point is
much cheaper and independent: a state is a valid post-fixed-point iff
applying the equations **once** does not increase any component.

:func:`build_fixed_point_certificate` snapshots the claimed state -- per
task the start/finish window, effective WCET, contender count, isolated
(base) WCET and shared-access count, plus the platform's interference
penalty table and the priced cross-core edge delays.
:func:`check_fixed_point_certificate` then re-validates, sharing none of
the producer's loop:

* every window's length equals the claimed effective WCET, and no
  effective WCET dips below its base (interference only adds);
* contenders are re-derived from the claimed windows by a fresh MHP pass
  (strict half-open overlap, distinct other cores), and the re-applied
  equation ``base + shared x penalty(contenders)`` must not exceed the
  claimed effective WCET; for a ``converged`` result it must *equal* it;
* every start time is late enough for its core predecessor and all HTG
  dependences (slack is sound for an upper bound, starting early is not);
* the makespan is at least the maximum claimed finish time; and
* when the live platform is at hand, the penalty table and the cross-core
  delays are re-priced and compared.

What this checker does *not* prove: the base WCETs and shared-access
counts themselves (the code-level analysis' ground truth, carried
verbatim) and that the fixed point is the *least* one -- any sound
post-fixed-point upper-bounds the least fixed point, which is all an upper
WCET bound needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import AnalysisReport, Finding

#: Same exact-arithmetic tolerance story as the schedule checker.
REL_EPS = 1e-9


def _tol(*values: float) -> float:
    bound = 1.0
    for v in values:
        if v < 0.0:
            v = -v
        if v > bound:
            bound = v
    return REL_EPS * bound


@dataclass
class FixedPointCertificate:
    """Serializable witness of one system-level fixed-point state."""

    htg_name: str
    makespan: float
    converged: bool
    num_cores: int
    mapping: dict[str, int]
    order: dict[int, list[str]]
    starts: dict[str, float]
    finishes: dict[str, float]
    effective: dict[str, float]
    contenders: dict[str, int]
    base: dict[str, float]
    shared: dict[str, int]
    #: per-core interference penalty table, indexed by contender count
    penalty: dict[int, list[float]] = field(default_factory=dict)
    #: priced worst-case delay of every cross-core HTG edge
    edge_delays: dict[tuple[str, str], float] = field(default_factory=dict)
    #: static-MHP contender skeleton of the claimed result (``None`` for
    #: unpruned results).  The checker restricts its fresh MHP derivation to
    #: the listed sharers per task; a task *missing* from the skeleton is
    #: derived unrestricted, which can only refute, never falsely accept.
    #: Whether the skeleton itself is justified is the contention
    #: certificate's job (:mod:`~repro.analysis.certify.contention_cert`).
    allowed: dict[str, list[str]] | None = None

    def as_dict(self) -> dict:
        extra = (
            {"allowed": {tid: list(o) for tid, o in sorted(self.allowed.items())}}
            if self.allowed is not None
            else {}
        )
        return {
            "kind": "fixed_point",
            "htg": self.htg_name,
            "makespan": self.makespan,
            "converged": self.converged,
            "num_cores": self.num_cores,
            "mapping": dict(self.mapping),
            "order": {str(core): list(tids) for core, tids in self.order.items()},
            "starts": dict(self.starts),
            "finishes": dict(self.finishes),
            "effective": dict(self.effective),
            "contenders": dict(self.contenders),
            "base": dict(self.base),
            "shared": dict(self.shared),
            "penalty": {str(core): list(row) for core, row in self.penalty.items()},
            "edge_delays": {
                f"{src}->{dst}": delay
                for (src, dst), delay in sorted(self.edge_delays.items())
            },
            **extra,
        }


def build_fixed_point_certificate(
    result, order: dict[int, list[str]], platform, htg
) -> FixedPointCertificate:
    """Snapshot a :class:`~repro.wcet.system_level.SystemWcetResult`.

    Results built by hand (old caches, tests) may lack the base-WCET
    witness; those degrade to ``base == effective, shared == 0``, which the
    checker treats as "no interference claimed" rather than rejecting.
    """
    from repro.wcet.hardware_model import HardwareCostModel

    mapping = dict(result.task_cores)
    base = {
        tid: result.task_base_wcet.get(tid, result.task_effective_wcet[tid])
        for tid in mapping
    }
    shared = {tid: result.task_shared_accesses.get(tid, 0) for tid in mapping}
    num_cores = platform.num_cores
    penalty = {
        core.core_id: [
            HardwareCostModel(platform, core.core_id).shared_access_penalty(k)
            for k in range(num_cores)
        ]
        for core in platform.cores
    }
    contenders = max(0, num_cores - 1)
    delays: dict[tuple[str, str], float] = {}
    for edge in htg.edges:
        src_core = mapping.get(edge.src)
        dst_core = mapping.get(edge.dst)
        if src_core is None or dst_core is None or src_core == dst_core:
            continue
        delays[(edge.src, edge.dst)] = (
            0.0
            if edge.payload_bytes == 0
            else platform.communication_latency(
                edge.payload_bytes, src_core, dst_core, contenders
            )
        )
    return FixedPointCertificate(
        htg_name=htg.name,
        makespan=result.makespan,
        converged=result.converged,
        num_cores=num_cores,
        mapping=mapping,
        order={core: list(tids) for core, tids in order.items()},
        starts={tid: iv.start for tid, iv in result.task_intervals.items()},
        finishes={tid: iv.end for tid, iv in result.task_intervals.items()},
        effective=dict(result.task_effective_wcet),
        contenders=dict(result.task_contenders),
        base=base,
        shared=shared,
        penalty=penalty,
        edge_delays=delays,
        allowed=(
            {tid: list(others) for tid, others in result.mhp_allowed.items()}
            if getattr(result, "mhp_allowed", None) is not None
            else None
        ),
    )


def check_fixed_point_certificate(
    certificate: FixedPointCertificate, htg, platform=None
) -> AnalysisReport:
    """Re-validate a fixed-point certificate in one pass.

    ``platform`` is optional: without it the penalty table and edge delays
    carried by the certificate are trusted (offline replay); with it both
    are re-priced from the live model first.
    """
    report = AnalysisReport("certify_fixed_point")
    cert = certificate
    name = cert.htg_name

    def fail(code: str, message: str, subject: str = "", severity: str = "error"):
        report.add(
            Finding(
                code=code, message=message, function=name, subject=subject,
                severity=severity,
            )
        )

    tids = sorted(cert.mapping)
    missing = [
        tid for tid in tids
        if tid not in cert.starts
        or tid not in cert.finishes
        or tid not in cert.effective
        or tid not in cert.base
    ]
    if missing:
        fail(
            "certify.fixed-point.coverage",
            f"certificate lacks timing/WCET state for task(s) {', '.join(missing)}",
        )
        return report

    # -- live re-pricing when the platform is at hand -------------------- #
    penalty = cert.penalty
    edge_delays = cert.edge_delays
    if platform is not None:
        from repro.wcet.hardware_model import HardwareCostModel

        num_cores = platform.num_cores
        live_penalty = {
            core.core_id: [
                HardwareCostModel(platform, core.core_id).shared_access_penalty(k)
                for k in range(num_cores)
            ]
            for core in platform.cores
        }
        for core in sorted(cert.penalty):
            claimed_row = cert.penalty[core]
            live_row = live_penalty.get(core)
            if live_row is None or any(
                abs(a - b) > _tol(a, b) for a, b in zip(claimed_row, live_row)
            ) or len(claimed_row) != len(live_row):
                fail(
                    "certify.fixed-point.penalty-mismatch",
                    "claimed interference penalty table differs from the "
                    "platform's",
                    subject=f"core {core}",
                )
        penalty = live_penalty
        comm_contenders = max(0, num_cores - 1)
        live_delays: dict[tuple[str, str], float] = {}
        for edge in htg.edges:
            src_core = cert.mapping.get(edge.src)
            dst_core = cert.mapping.get(edge.dst)
            if src_core is None or dst_core is None or src_core == dst_core:
                continue
            live_delays[(edge.src, edge.dst)] = (
                0.0
                if edge.payload_bytes == 0
                else platform.communication_latency(
                    edge.payload_bytes, src_core, dst_core, comm_contenders
                )
            )
        for key in sorted(set(cert.edge_delays) | set(live_delays)):
            claimed = cert.edge_delays.get(key)
            live = live_delays.get(key)
            if claimed is None or live is None or abs(claimed - live) > _tol(claimed, live):
                fail(
                    "certify.fixed-point.comm-delay-mismatch",
                    f"claimed cross-core delay {claimed} differs from the "
                    f"platform's worst-case latency {live}",
                    subject=f"{key[0]}->{key[1]}",
                )
        edge_delays = live_delays

    # -- window arithmetic ---------------------------------------------- #
    for tid in tids:
        length = cert.finishes[tid] - cert.starts[tid]
        if abs(length - cert.effective[tid]) > _tol(length, cert.effective[tid]):
            fail(
                "certify.fixed-point.interval-length",
                f"window length {length} differs from the claimed effective "
                f"WCET {cert.effective[tid]}",
                subject=tid,
            )
        if cert.effective[tid] < cert.base[tid] - _tol(cert.base[tid]):
            fail(
                "certify.fixed-point.effective-below-base",
                f"effective WCET {cert.effective[tid]} is below the isolated "
                f"WCET {cert.base[tid]}: interference can only add time",
                subject=tid,
            )
    report.bump("tasks_checked", len(tids))

    # -- one fresh application of the interference equations ------------- #
    # per-sharer windows keyed by id so a claimed static-MHP skeleton can
    # restrict the derivation per task; distinct-core counting is identical
    # to the old grouped-by-core scan
    sharer_windows: dict[str, tuple[int, float, float]] = {}
    for tid in tids:
        if cert.shared.get(tid, 0) > 0:
            sharer_windows[tid] = (
                cert.mapping[tid], cert.starts[tid], cert.finishes[tid]
            )
    if cert.allowed is not None:
        unknown = sorted(
            {o for others in cert.allowed.values() for o in others}
            - set(sharer_windows)
        )
        if unknown:
            fail(
                "certify.fixed-point.allowed-unknown",
                "static-MHP skeleton names non-sharer task(s) "
                f"{', '.join(unknown)}; they cannot contend and are ignored",
                severity="warning",
            )
    all_windows = list(sharer_windows.values())
    for tid in tids:
        own_core = cert.mapping[tid]
        own_start = cert.starts[tid]
        own_finish = cert.finishes[tid]
        if cert.allowed is not None and tid in cert.allowed:
            candidates = [
                sharer_windows[o]
                for o in cert.allowed[tid]
                if o in sharer_windows
            ]
        else:
            # no skeleton entry: derive unrestricted (refutation-safe)
            candidates = all_windows
        contending_cores = set()
        for core, start, finish in candidates:
            if core == own_core:
                continue
            if own_start < finish and start < own_finish:
                contending_cores.add(core)
        derived_contenders = len(contending_cores)
        row = penalty.get(cert.mapping[tid])
        if row is None or derived_contenders >= len(row):
            fail(
                "certify.fixed-point.penalty-coverage",
                f"no penalty entry for {derived_contenders} contenders on "
                f"core {cert.mapping[tid]}",
                subject=tid,
            )
            continue
        reapplied = cert.base[tid] + cert.shared.get(tid, 0) * row[derived_contenders]
        if reapplied > cert.effective[tid] + _tol(reapplied, cert.effective[tid]):
            fail(
                "certify.fixed-point.not-post-fixed-point",
                f"re-applying the interference equations raises the effective "
                f"WCET to {reapplied}, above the claimed {cert.effective[tid]}: "
                "the claimed state is not a sound fixed point",
                subject=tid,
            )
        elif cert.converged and abs(reapplied - cert.effective[tid]) > _tol(
            reapplied, cert.effective[tid]
        ):
            fail(
                "certify.fixed-point.effective-mismatch",
                f"result claims convergence but re-applying the equations "
                f"yields {reapplied}, not the claimed {cert.effective[tid]}",
                subject=tid,
            )
        report.bump("equations_checked")

    # -- start times respect core order and dependences ------------------ #
    core_prev: dict[str, str] = {}
    for tids_on_core in cert.order.values():
        for prev, nxt in zip(tids_on_core, tids_on_core[1:]):
            core_prev[nxt] = prev
    for tid in tids:
        ready = 0.0
        prev = core_prev.get(tid)
        if prev is not None and prev in cert.finishes:
            ready = cert.finishes[prev]
        for pred in htg.predecessors(tid):
            if pred not in cert.mapping or pred not in cert.finishes:
                continue
            delay = (
                0.0
                if cert.mapping[pred] == cert.mapping[tid]
                else edge_delays.get((pred, tid), 0.0)
            )
            ready = max(ready, cert.finishes[pred] + delay)
        if cert.starts[tid] < ready - _tol(ready):
            fail(
                "certify.fixed-point.start-inconsistent",
                f"claimed start {cert.starts[tid]} precedes the earliest "
                f"sound start {ready}",
                subject=tid,
            )

    # -- makespan -------------------------------------------------------- #
    max_finish = max(cert.finishes.values(), default=0.0)
    if max_finish > cert.makespan + _tol(max_finish, cert.makespan):
        fail(
            "certify.fixed-point.makespan-understated",
            f"claimed makespan {cert.makespan} is below the maximum claimed "
            f"finish time {max_finish}",
        )
    elif cert.makespan > max_finish + _tol(max_finish, cert.makespan):
        fail(
            "certify.fixed-point.makespan-overstated",
            f"claimed makespan {cert.makespan} exceeds the maximum finish "
            f"time {max_finish} (sound but loose)",
            severity="warning",
        )
    return report
