"""Schedule certificates: witness + independent checker.

The producer side (:func:`build_schedule_certificate`) snapshots everything
an analysed :class:`~repro.scheduling.schedule.Schedule` claims -- the
mapping, the per-core orders, every task's start/finish time, the priced
cross-core communication delays and the reported WCET bound -- into a small
serializable :class:`ScheduleCertificate`.

The checker side (:func:`check_schedule_certificate`) re-validates those
claims **against the HTG and platform directly**, deliberately sharing no
code with :meth:`Schedule.validate` or the system-level timeline builder:
communication latencies are re-priced straight from
``platform.communication_latency``, precedence and per-core exclusivity are
checked by plain comparisons over the claimed times, and the bound is
re-derived as the maximum finish time.  One pass, linear in tasks + edges.

What this checker does *not* prove: that the per-task durations themselves
are correct (that is the fixed-point certificate's job, and the code-level
costs below it are the cost model's ground truth) and that the claimed
times are *tight* -- a schedule padded with slack passes, because slack is
sound for an upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import AnalysisReport, Finding

#: Relative tolerance absorbing producer/checker float-summation order
#: differences.  Real tampering moves numbers by whole cycles; the checkers
#: must never reject a bound over the last ulp of a different add order.
REL_EPS = 1e-9


def _tol(*values: float) -> float:
    """Comparison slack scaled to the magnitudes involved."""
    # plain loop, no genexpr: this runs a handful of times per task/edge
    bound = 1.0
    for v in values:
        if v < 0.0:
            v = -v
        if v > bound:
            bound = v
    return REL_EPS * bound


@dataclass
class ScheduleCertificate:
    """Serializable witness of one analysed schedule."""

    htg_name: str
    scheduler: str
    wcet_bound: float
    mapping: dict[str, int]
    order: dict[int, list[str]]
    starts: dict[str, float]
    finishes: dict[str, float]
    #: priced worst-case delay of every *cross-core* HTG edge, keyed
    #: ``(src task, dst task)``; same-core edges are delay-free by contract
    edge_delays: dict[tuple[str, str], float]

    def as_dict(self) -> dict:
        return {
            "kind": "schedule",
            "htg": self.htg_name,
            "scheduler": self.scheduler,
            "wcet_bound": self.wcet_bound,
            "mapping": dict(self.mapping),
            "order": {str(core): list(tids) for core, tids in self.order.items()},
            "starts": dict(self.starts),
            "finishes": dict(self.finishes),
            "edge_delays": {
                f"{src}->{dst}": delay
                for (src, dst), delay in sorted(self.edge_delays.items())
            },
        }


def build_schedule_certificate(schedule, htg, platform) -> ScheduleCertificate:
    """Snapshot an analysed schedule's claims into a certificate."""
    result = schedule.result
    if result is None:
        raise ValueError("cannot certify an unanalysed schedule (no timing result)")
    contenders = max(0, platform.num_cores - 1)
    delays: dict[tuple[str, str], float] = {}
    for edge in htg.edges:
        src_core = schedule.mapping.get(edge.src)
        dst_core = schedule.mapping.get(edge.dst)
        if src_core is None or dst_core is None or src_core == dst_core:
            continue
        delays[(edge.src, edge.dst)] = (
            0.0
            if edge.payload_bytes == 0
            else platform.communication_latency(
                edge.payload_bytes, src_core, dst_core, contenders
            )
        )
    return ScheduleCertificate(
        htg_name=schedule.htg_name,
        scheduler=schedule.scheduler,
        wcet_bound=result.makespan,
        mapping=dict(schedule.mapping),
        order={core: list(tids) for core, tids in schedule.order.items()},
        starts={tid: iv.start for tid, iv in result.task_intervals.items()},
        finishes={tid: iv.end for tid, iv in result.task_intervals.items()},
        edge_delays=delays,
    )


def check_schedule_certificate(
    certificate: ScheduleCertificate, htg, platform
) -> AnalysisReport:
    """Independently re-validate a schedule certificate against HTG + platform."""
    report = AnalysisReport("certify_schedule")
    cert = certificate
    name = cert.htg_name

    def fail(code: str, message: str, subject: str = "", severity: str = "error"):
        report.add(
            Finding(
                code=code, message=message, function=name, subject=subject,
                severity=severity,
            )
        )

    # -- structural coverage ------------------------------------------- #
    leaf_ids = {t.task_id for t in htg.leaf_tasks()}
    if set(cert.mapping) != leaf_ids:
        fail(
            "certify.schedule.mapping-coverage",
            f"mapping covers {len(cert.mapping)} tasks, HTG has {len(leaf_ids)}",
        )
    valid_cores = {c.core_id for c in platform.cores}
    for tid, core in sorted(cert.mapping.items()):
        if core not in valid_cores:
            fail(
                "certify.schedule.unknown-core",
                f"task mapped to core {core}, which the platform does not have",
                subject=tid,
            )
    ordered = [tid for tids in cert.order.values() for tid in tids]
    if sorted(ordered) != sorted(cert.mapping):
        fail(
            "certify.schedule.order-coverage",
            "core orders do not cover exactly the mapped tasks",
        )
    for core, tids in sorted(cert.order.items()):
        for tid in tids:
            if cert.mapping.get(tid) != core:
                fail(
                    "certify.schedule.order-core-mismatch",
                    f"task ordered on core {core} but mapped to "
                    f"{cert.mapping.get(tid)}",
                    subject=tid,
                )
    missing = sorted(
        tid for tid in cert.mapping
        if tid not in cert.starts or tid not in cert.finishes
    )
    if missing:
        fail(
            "certify.schedule.missing-interval",
            f"no claimed start/finish time for task(s) {', '.join(missing)}",
        )
        return report  # the timing checks below would KeyError
    for tid in sorted(cert.starts):
        if tid not in cert.mapping:
            fail(
                "certify.schedule.stray-interval",
                "claimed interval for a task absent from the mapping",
                subject=tid,
                severity="warning",
            )
        elif cert.finishes[tid] < cert.starts[tid] - _tol(cert.starts[tid]):
            fail(
                "certify.schedule.negative-duration",
                f"finish {cert.finishes[tid]} precedes start {cert.starts[tid]}",
                subject=tid,
            )
    report.bump("tasks_checked", len(cert.mapping))

    # -- per-core exclusivity and order consistency --------------------- #
    for core, tids in sorted(cert.order.items()):
        for prev, nxt in zip(tids, tids[1:]):
            if prev not in cert.finishes or nxt not in cert.starts:
                continue  # already reported as missing-interval/stray
            if cert.starts[nxt] < cert.finishes[prev] - _tol(cert.finishes[prev]):
                fail(
                    "certify.schedule.core-overlap",
                    f"core {core}: {nxt!r} starts at {cert.starts[nxt]} before "
                    f"{prev!r} finishes at {cert.finishes[prev]}",
                    subject=f"{prev}<->{nxt}",
                )
            report.bump("core_pairs_checked")

    # -- precedence edges with independently re-priced latencies -------- #
    comm_contenders = max(0, platform.num_cores - 1)
    for edge in htg.edges:
        src_core = cert.mapping.get(edge.src)
        dst_core = cert.mapping.get(edge.dst)
        if src_core is None or dst_core is None:
            continue
        if src_core == dst_core or edge.payload_bytes == 0:
            delay = 0.0
        else:
            delay = platform.communication_latency(
                edge.payload_bytes, src_core, dst_core, comm_contenders
            )
        if src_core != dst_core:
            claimed = cert.edge_delays.get((edge.src, edge.dst))
            if claimed is None or abs(claimed - delay) > _tol(claimed or 0.0, delay):
                fail(
                    "certify.schedule.comm-latency-mismatch",
                    f"claimed cross-core delay {claimed} differs from the "
                    f"platform's worst-case latency {delay}",
                    subject=f"{edge.src}->{edge.dst}",
                )
        ready = cert.finishes[edge.src] + delay
        if cert.starts[edge.dst] < ready - _tol(ready):
            fail(
                "certify.schedule.precedence-violated",
                f"{edge.dst!r} starts at {cert.starts[edge.dst]} before its "
                f"dependency {edge.src!r} delivers at {ready}",
                subject=f"{edge.src}->{edge.dst}",
            )
        report.bump("edges_checked")

    # -- the reported bound is exactly the maximum finish time ----------- #
    max_finish = max(cert.finishes.values(), default=0.0)
    if abs(cert.wcet_bound - max_finish) > _tol(cert.wcet_bound, max_finish):
        fail(
            "certify.schedule.bound-mismatch",
            f"claimed wcet_bound {cert.wcet_bound} is not the maximum claimed "
            f"finish time {max_finish}",
        )
    return report
