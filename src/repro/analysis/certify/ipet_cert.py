"""IPET certificates: LP witness + independent checker.

:func:`repro.wcet.ipet.ipet_wcet` retains its full LP solution on the
:class:`~repro.wcet.ipet.IpetResult`; :func:`build_ipet_certificate` lifts
it into a serializable :class:`IpetCertificate` and
:func:`check_ipet_certificate` re-verifies it against a **freshly rebuilt**
CFG, sharing none of the producer's matrix-assembly code:

* the witness covers exactly the CFG's edges and every count is
  non-negative;
* flow conservation holds at every interior block, the entry emits and the
  exit absorbs exactly unit flow;
* every loop header is bounded and every claimed bound is respected
  (back-edge flow <= bound x entry flow, the producer's formulation);
* every flow-fact-pinned edge really carries zero flow;
* the objective recomputed from the claimed counts and block costs equals
  the reported WCET; and
* when the solver exposed dual values, weak/strong duality is re-checked
  arithmetically (dual feasibility via reduced costs, zero duality gap), so
  the witness also proves *optimality* -- the claimed bound is not just a
  feasible path length but the maximal one.

What this checker does *not* prove: the per-block cycle costs themselves
(they are the hardware cost model's ground truth, carried verbatim) and
the soundness of the loop bounds / flow facts fed into the LP (that is the
front-end's and :mod:`repro.analysis.wcet_facts`' contract).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import AnalysisReport, Finding
from repro.ir.cfg import build_cfg

#: Looser than the schedule tolerance: LP solvers satisfy constraints to
#: solver precision (~1e-9 relative), and the objective sums many terms.
REL_EPS = 1e-6


def _tol(*values: float) -> float:
    bound = 1.0
    for v in values:
        if v < 0.0:
            v = -v
        if v > bound:
            bound = v
    return REL_EPS * bound


@dataclass
class IpetCertificate:
    """Serializable witness of one IPET longest-path computation."""

    function: str
    wcet: float
    entry_cost: float
    #: primal solution: execution count per stable edge key
    edge_counts: dict[tuple[int, int, str], float]
    block_costs: dict[int, float]
    #: effective trip bound per loop-header block id
    loop_bounds: dict[int, int]
    #: edge keys pinned to zero by flow facts
    infeasible_edges: frozenset[tuple[int, int, str]]
    #: optimality witness (semantic dual values), or ``None``
    duals: dict | None = None

    def as_dict(self) -> dict:
        return {
            "kind": "ipet",
            "function": self.function,
            "wcet": self.wcet,
            "entry_cost": self.entry_cost,
            "edge_counts": {
                f"{src}:{dst}:{kind}": count
                for (src, dst, kind), count in sorted(self.edge_counts.items())
            },
            "block_costs": {str(bid): cost for bid, cost in sorted(self.block_costs.items())},
            "loop_bounds": {str(bid): b for bid, b in sorted(self.loop_bounds.items())},
            "infeasible_edges": sorted(
                f"{src}:{dst}:{kind}" for src, dst, kind in self.infeasible_edges
            ),
            "has_duals": self.duals is not None,
        }


def build_ipet_certificate(result, function_name: str = "") -> IpetCertificate:
    """Lift the LP witness of an :class:`~repro.wcet.ipet.IpetResult`."""
    if not result.edge_counts:
        raise ValueError(
            "IpetResult carries no LP witness (edge_counts is empty); "
            "was it produced by a pre-witness ipet_wcet?"
        )
    return IpetCertificate(
        function=function_name,
        wcet=result.wcet,
        entry_cost=result.entry_cost,
        edge_counts=dict(result.edge_counts),
        block_costs=dict(result.block_costs),
        loop_bounds=dict(result.loop_bounds),
        infeasible_edges=frozenset(result.infeasible_edges),
        duals=result.duals,
    )


def check_ipet_certificate(
    certificate: IpetCertificate, function=None, cfg=None
) -> AnalysisReport:
    """Re-verify an IPET witness against an independently rebuilt CFG.

    Pass either the IR ``function`` (the CFG is rebuilt from scratch, the
    strongest check) or a ``cfg`` directly.
    """
    report = AnalysisReport("certify_ipet")
    cert = certificate
    name = cert.function

    def fail(code: str, message: str, subject: str = "", severity: str = "error"):
        report.add(
            Finding(
                code=code, message=message, function=name, subject=subject,
                severity=severity,
            )
        )

    if cfg is None:
        if function is None:
            raise ValueError("check_ipet_certificate needs a function or a cfg")
        cfg = build_cfg(function, allow_unbounded=True)

    edges = cfg.edges
    keys = {e.key for e in edges}
    if keys != set(cert.edge_counts):
        fail(
            "certify.ipet.edge-set-mismatch",
            f"witness covers {len(cert.edge_counts)} edges, the rebuilt CFG "
            f"has {len(keys)} (symmetric difference: "
            f"{len(keys ^ set(cert.edge_counts))})",
        )
        return report  # every arithmetic check below would be meaningless
    x = cert.edge_counts

    # -- variable bounds ------------------------------------------------ #
    for key in sorted(x):
        if x[key] < -_tol(x[key]):
            fail(
                "certify.ipet.negative-count",
                f"edge count {x[key]} is negative",
                subject=str(key),
            )
    for key in sorted(cert.infeasible_edges):
        if key in x and abs(x[key]) > _tol(1.0):
            fail(
                "certify.ipet.flow-fact-violated",
                f"edge pinned infeasible by flow facts carries count {x[key]}",
                subject=str(key),
            )
    report.bump("edges_checked", len(edges))

    # -- flow conservation / unit flow ----------------------------------- #
    # one adjacency pass over the edges, then O(1) per block
    in_flow: dict[int, float] = {}
    out_flow: dict[int, float] = {}
    back_flow: dict[int, float] = {}
    for e in edges:
        count = x[e.key]
        in_flow[e.dst.bid] = in_flow.get(e.dst.bid, 0.0) + count
        out_flow[e.src.bid] = out_flow.get(e.src.bid, 0.0) + count
        if e.kind == "back":
            back_flow[e.dst.bid] = back_flow.get(e.dst.bid, 0.0) + count
    for block in cfg.blocks:
        if block is cfg.entry or block is cfg.exit:
            continue
        inflow = in_flow.get(block.bid, 0.0)
        outflow = out_flow.get(block.bid, 0.0)
        if abs(inflow - outflow) > _tol(inflow, outflow):
            fail(
                "certify.ipet.flow-conservation",
                f"in-flow {inflow} != out-flow {outflow}",
                subject=f"BB{block.bid}",
            )
        report.bump("blocks_checked")
    entry_out = out_flow.get(cfg.entry.bid, 0.0)
    exit_in = in_flow.get(cfg.exit.bid, 0.0)
    if abs(entry_out - 1.0) > _tol(entry_out):
        fail(
            "certify.ipet.unit-flow",
            f"entry out-flow is {entry_out}, must be exactly 1",
            subject=f"BB{cfg.entry.bid}",
        )
    if abs(exit_in - 1.0) > _tol(exit_in):
        fail(
            "certify.ipet.unit-flow",
            f"exit in-flow is {exit_in}, must be exactly 1",
            subject=f"BB{cfg.exit.bid}",
        )

    # -- loop bounds ----------------------------------------------------- #
    for header_bid in sorted(cfg.back_edges):
        if header_bid not in cert.loop_bounds:
            fail(
                "certify.ipet.unbounded-loop",
                "loop header carries no trip-count bound in the witness",
                subject=f"BB{header_bid}",
            )
    known_bids = {b.bid for b in cfg.blocks}
    for header_bid, bound in sorted(cert.loop_bounds.items()):
        if header_bid not in known_bids:
            fail(
                "certify.ipet.stray-loop-bound",
                "claimed bound for a block absent from the rebuilt CFG",
                subject=f"BB{header_bid}",
                severity="warning",
            )
            continue
        back = back_flow.get(header_bid, 0.0)
        entry_flow = in_flow.get(header_bid, 0.0) - back
        if back > float(bound) * entry_flow + _tol(back, float(bound) * entry_flow):
            fail(
                "certify.ipet.loop-bound-violated",
                f"back-edge flow {back} exceeds bound {bound} x entry flow "
                f"{entry_flow}",
                subject=f"BB{header_bid}",
            )
        report.bump("loops_checked")

    # -- the objective recomputes to the reported WCET ------------------- #
    missing_costs = sorted(b.bid for b in cfg.blocks if b.bid not in cert.block_costs)
    if missing_costs:
        fail(
            "certify.ipet.cost-coverage",
            "witness carries no cost for block(s) "
            + ", ".join(f"BB{b}" for b in missing_costs),
        )
        return report
    entry_cost = cert.block_costs[cfg.entry.bid]
    if abs(entry_cost - cert.entry_cost) > _tol(entry_cost, cert.entry_cost):
        fail(
            "certify.ipet.entry-cost-mismatch",
            f"claimed entry cost {cert.entry_cost} differs from the entry "
            f"block's cost {entry_cost}",
            subject=f"BB{cfg.entry.bid}",
        )
    objective = cert.entry_cost + sum(
        cert.block_costs[e.dst.bid] * x[e.key] for e in edges
    )
    if abs(objective - cert.wcet) > _tol(objective, cert.wcet):
        fail(
            "certify.ipet.objective-mismatch",
            f"objective recomputed from the witness is {objective}, the "
            f"claimed WCET is {cert.wcet}",
        )

    # -- optimality witness (duality) ------------------------------------ #
    if cert.duals is not None:
        _check_duals(cert, cfg, report, fail)
    return report


def _check_duals(cert: IpetCertificate, cfg, report: AnalysisReport, fail) -> None:
    """Dual feasibility + zero duality gap => the primal witness is optimal.

    The producer solves the *minimisation* ``min c.x`` with
    ``c_e = -cost(dst(e))``; its optimum equals ``entry_cost - wcet``.  With
    equality rows (interior flow, entry, exit) and inequality rows (one per
    bounded loop header), LP duality for ``x >= 0`` requires reduced costs
    ``c - A_eq^T y_eq - A_ub^T y_ub >= 0`` and the dual objective
    ``b.y = y_entry + y_exit`` (every other right-hand side is 0) to equal
    the primal optimum.
    """
    duals = cert.duals
    try:
        y_flow = {int(bid): float(v) for bid, v in duals["flow"].items()}
        y_entry = float(duals["entry"])
        y_exit = float(duals["exit"])
        y_loop = {int(bid): float(v) for bid, v in duals["loop"].items()}
    except (KeyError, TypeError, ValueError):
        fail(
            "certify.ipet.dual-malformed",
            "dual witness is not in the semantic {flow, entry, exit, loop} "
            "format",
            severity="warning",
        )
        return
    interior = {
        b.bid for b in cfg.blocks if b is not cfg.entry and b is not cfg.exit
    }
    if set(y_flow) != interior or set(y_loop) != set(cert.loop_bounds):
        fail(
            "certify.ipet.dual-coverage",
            "dual witness does not cover exactly the interior blocks and "
            "bounded loop headers",
            severity="warning",
        )
        return
    primal = cert.entry_cost - cert.wcet  # the min-problem optimum
    dual_objective = y_entry + y_exit
    if abs(primal - dual_objective) > _tol(primal, dual_objective):
        fail(
            "certify.ipet.duality-gap",
            f"dual objective {dual_objective} differs from the primal "
            f"optimum {primal}: the claimed WCET is not proven maximal",
        )
    pinned = cert.infeasible_edges
    for e in cfg.edges:
        if e.key in pinned:
            continue  # pinned variables carry free bound duals
        c_e = -cert.block_costs[e.dst.bid]
        contribution = 0.0
        if e.dst.bid in interior:
            contribution += y_flow[e.dst.bid]
        if e.src.bid in interior:
            contribution -= y_flow[e.src.bid]
        if e.src is cfg.entry:
            contribution += y_entry
        if e.dst is cfg.exit:
            contribution += y_exit
        if e.dst.bid in y_loop:
            bound = float(cert.loop_bounds[e.dst.bid])
            contribution += (1.0 if e.kind == "back" else -bound) * y_loop[e.dst.bid]
        reduced = c_e - contribution
        if reduced < -_tol(c_e, contribution):
            fail(
                "certify.ipet.dual-infeasible",
                f"reduced cost {reduced} is negative: the dual values do not "
                "certify optimality",
                subject=str(e.key),
            )
    report.bump("duals_checked", len(cfg.edges))
