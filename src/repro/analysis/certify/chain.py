"""Certificate chains: one bundle of proof-carrying results per run.

:func:`build_certificates` turns one analysed design point (schedule +
entry function + HTG + platform) into a :class:`CertificateChain`: the
schedule certificate, the fixed-point certificate and the IPET certificate,
each already re-validated by its independent checker, with the three
:class:`~repro.analysis.report.AnalysisReport` objects attached.
:func:`certify_pipeline_result` is the pipeline-facing entry point working
straight off a :class:`~repro.core.pipeline.PipelineResult`.

A chain is *accepted* when no checker reported an error
(:attr:`CertificateChain.ok`).  Rejections surface as typed findings --
callers decide whether to raise (:class:`CertificationError`), gate a CI
job, or just report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.analysis.certify.contention_cert import (
    ContentionCertificate,
    build_contention_certificate,
    check_contention_certificate,
)
from repro.analysis.certify.fixed_point_cert import (
    FixedPointCertificate,
    build_fixed_point_certificate,
    check_fixed_point_certificate,
)
from repro.analysis.certify.ipet_cert import (
    IpetCertificate,
    build_ipet_certificate,
    check_ipet_certificate,
)
from repro.analysis.certify.schedule_cert import (
    ScheduleCertificate,
    build_schedule_certificate,
    check_schedule_certificate,
)
from repro.analysis.report import AnalysisReport, Finding
from repro.core.exceptions import ToolchainError


class CertificationError(ToolchainError):
    """A certificate checker refuted a claimed result.

    Carries the refuting :class:`~repro.analysis.report.AnalysisReport` (or
    ``None`` for structural failures) so callers can surface the individual
    findings.
    """

    def __init__(self, message: str, report: AnalysisReport | None = None) -> None:
        super().__init__(message)
        self.report = report


@dataclass
class CertificateChain:
    """The certificates of one analysed design point, with their verdicts."""

    schedule: ScheduleCertificate
    fixed_point: FixedPointCertificate
    ipet: IpetCertificate
    reports: list[AnalysisReport] = field(default_factory=list)
    #: Present only when the certified run pruned its contender derivation
    #: (``static_pruning``): the pruned skeleton needs its own justification.
    contention: ContentionCertificate | None = None

    @property
    def ok(self) -> bool:
        """True when every checker accepted (no error-severity finding)."""
        return all(not report.count("error") for report in self.reports)

    def findings(self) -> list[Finding]:
        """All findings of all checkers, flattened."""
        return [finding for report in self.reports for finding in report.findings]

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "certificates": [
                self.schedule.as_dict(),
                self.fixed_point.as_dict(),
                self.ipet.as_dict(),
                *([self.contention.as_dict()] if self.contention is not None else []),
            ],
            "reports": [report.as_dict() for report in self.reports],
        }


def _record_checker(name: str, started: float, report: AnalysisReport) -> None:
    """Fold one checker's verdict and wall time into the metrics registry."""
    registry = obs.metrics()
    registry.histogram(f"certify.{name}.seconds").observe(
        time.perf_counter() - started
    )
    if not report.count("error"):
        registry.counter(f"certify.{name}.ok").inc()
    registry.counter(f"certify.{name}.findings").inc(len(report.findings))


def build_certificates(
    schedule, function, htg, platform, flow_facts=None
) -> CertificateChain:
    """Build and check the full certificate chain of one design point.

    ``flow_facts`` optionally feeds the IPET re-computation (pass the facts
    the producing run used, e.g. from
    :func:`repro.analysis.wcet_facts.derive_flow_facts`); by default the
    plain LP is certified, which keeps certification cheap.
    """
    from repro.wcet.hardware_model import HardwareCostModel
    from repro.wcet.ipet import ipet_wcet

    obs_on = obs.obs_enabled()

    started = time.perf_counter() if obs_on else 0.0
    with obs.span("certify.schedule"):
        schedule_cert = build_schedule_certificate(schedule, htg, platform)
        schedule_report = check_schedule_certificate(schedule_cert, htg, platform)
    if obs_on:
        _record_checker("schedule", started, schedule_report)

    started = time.perf_counter() if obs_on else 0.0
    with obs.span("certify.fixed_point"):
        fp_cert = build_fixed_point_certificate(
            schedule.result, schedule.order, platform, htg
        )
        fp_report = check_fixed_point_certificate(fp_cert, htg, platform)
    if obs_on:
        _record_checker("fixed_point", started, fp_report)

    contention_cert = None
    reports = [schedule_report, fp_report]
    if getattr(schedule.result, "mhp_allowed", None) is not None:
        started = time.perf_counter() if obs_on else 0.0
        with obs.span("certify.contention"):
            contention_cert = build_contention_certificate(
                schedule.result, htg, function
            )
            contention_report = check_contention_certificate(
                contention_cert, htg, function
            )
        if obs_on:
            _record_checker("contention", started, contention_report)
        reports.append(contention_report)

    started = time.perf_counter() if obs_on else 0.0
    with obs.span("certify.ipet", function=function.name):
        model = HardwareCostModel(platform, platform.cores[0].core_id)
        ipet_result = ipet_wcet(function, model, flow_facts)
        ipet_cert = build_ipet_certificate(ipet_result, function.name)
        ipet_report = check_ipet_certificate(ipet_cert, function=function)
    if obs_on:
        _record_checker("ipet", started, ipet_report)
    reports.append(ipet_report)

    return CertificateChain(
        schedule=schedule_cert,
        fixed_point=fp_cert,
        ipet=ipet_cert,
        reports=reports,
        contention=contention_cert,
    )


def certify_pipeline_result(
    result, platform=None, derive_facts: bool = False
) -> CertificateChain:
    """Certify one :class:`~repro.core.pipeline.PipelineResult`.

    ``platform`` defaults to the run's own platform artifact.  With
    ``derive_facts`` the value-range analysis re-derives flow facts for the
    IPET certificate (stronger, costlier); the default certifies the plain
    LP.
    """
    if platform is None:
        platform = result.artifacts.get("platform")
    if platform is None:
        raise CertificationError(
            "pipeline result carries no platform artifact; pass platform= explicitly"
        )
    function = result.model.entry
    flow_facts = None
    if derive_facts:
        from repro.analysis.wcet_facts import derive_flow_facts

        flow_facts, _ = derive_flow_facts(function)
    return build_certificates(
        result.schedule, function, result.htg, platform, flow_facts=flow_facts
    )
