"""IR verifier: structural and dataflow lint over one function.

Checks, in order: every referenced variable is declared; every loop carries
a derivable trip-count bound (named diagnostic per loop); the CFG is
well-formed (entry/exit present, entry has no predecessors, exit no
successors, every block reachable, edge endpoints belong to the graph);
no read of a local scalar is reachable only by the uninitialised state
(def-before-use); no store to a local scalar is dead on every path; no
declared local is entirely unreferenced.

The verifier never mutates the function.  It is surfaced both as a plain
function (:func:`verify_function`, used by ``python -m repro lint``) and as
a registered pipeline pass (``ir_verifier``) that reports through the
normal :class:`~repro.transforms.base.PassReport` channel.
"""

from __future__ import annotations

from repro.analysis.liveness import dead_stores
from repro.analysis.reaching_defs import definitely_uninitialized_uses
from repro.analysis.report import AnalysisReport, Finding
from repro.ir.cfg import EDGE_KINDS, build_cfg
from repro.ir.loops import LoopBoundError, loop_trip_count
from repro.ir.program import Function, Storage
from repro.ir.statements import For, collect_loops
from repro.transforms.base import FunctionPass, PassReport


def _check_declarations(function: Function, report: AnalysisReport) -> None:
    try:
        function.validate()
    except ValueError as exc:
        report.add(
            Finding(
                code="ir.undeclared-variable",
                message=str(exc),
                function=function.name,
            )
        )
    else:
        report.bump("declarations_checked", len(function.all_decls()))


def _check_loop_bounds(function: Function, report: AnalysisReport) -> None:
    for loop in collect_loops(function.body):
        subject = (
            f"loop over {loop.index.name!r}"
            if isinstance(loop, For)
            else "while loop"
        )
        try:
            loop_trip_count(loop)
        except LoopBoundError as exc:
            report.add(
                Finding(
                    code="ir.unbounded-loop",
                    message=str(exc),
                    function=function.name,
                    subject=subject,
                )
            )
        else:
            report.bump("loops_bounded")


def _check_cfg(function: Function, cfg, report: AnalysisReport) -> None:
    if cfg.entry is None or cfg.exit is None:
        report.add(
            Finding(
                code="cfg.missing-entry-exit",
                message="control-flow graph lacks an entry or exit block",
                function=function.name,
            )
        )
        return
    bids = {block.bid for block in cfg.blocks}
    if len(bids) != len(cfg.blocks):
        report.add(
            Finding(
                code="cfg.duplicate-block-id",
                message="basic block ids are not unique",
                function=function.name,
            )
        )
    for edge in cfg.edges:
        if edge.src.bid not in bids or edge.dst.bid not in bids:
            report.add(
                Finding(
                    code="cfg.dangling-edge",
                    message=f"edge {edge.key} references a block outside the graph",
                    function=function.name,
                    subject=str(edge.key),
                )
            )
        if edge.kind not in EDGE_KINDS:
            report.add(
                Finding(
                    code="cfg.bad-edge-kind",
                    message=f"edge {edge.key} has unknown kind {edge.kind!r}",
                    function=function.name,
                    subject=str(edge.key),
                )
            )
    if cfg.predecessors(cfg.entry):
        report.add(
            Finding(
                code="cfg.entry-has-predecessors",
                message="the entry block has incoming edges",
                function=function.name,
                subject=f"BB{cfg.entry.bid}",
            )
        )
    if cfg.successors(cfg.exit):
        report.add(
            Finding(
                code="cfg.exit-has-successors",
                message="the exit block has outgoing edges",
                function=function.name,
                subject=f"BB{cfg.exit.bid}",
            )
        )
    reachable = cfg.reachable_blocks()
    for block in cfg.blocks:
        if block.bid not in reachable:
            report.add(
                Finding(
                    code="cfg.unreachable-block",
                    message=f"basic block BB{block.bid} ({block.label}) is "
                    "unreachable from the entry",
                    function=function.name,
                    subject=f"BB{block.bid}",
                    severity="warning",
                )
            )
    report.bump("blocks_checked", len(cfg.blocks))
    report.bump("edges_checked", len(cfg.edges))


def _check_unused_decls(function: Function, report: AnalysisReport) -> None:
    referenced: set[str] = set()
    for stmt in function.body.walk():
        referenced |= stmt.variables_read()
        referenced |= stmt.variables_written()
    for decl in function.decls:
        if decl.storage is not Storage.LOCAL:
            continue
        if decl.name.startswith("unused_"):
            continue  # deliberate sinks for unconnected ports
        if decl.name not in referenced:
            report.add(
                Finding(
                    code="ir.unused-variable",
                    message=f"local variable {decl.name!r} is never referenced",
                    function=function.name,
                    subject=decl.name,
                    severity="warning",
                )
            )


def verify_function(function: Function) -> AnalysisReport:
    """Run every verifier check on ``function`` and return the report."""
    report = AnalysisReport("ir_verifier")
    _check_declarations(function, report)
    _check_loop_bounds(function, report)
    cfg = build_cfg(function, allow_unbounded=True)
    _check_cfg(function, cfg, report)
    for name, bid in definitely_uninitialized_uses(function, cfg):
        report.add(
            Finding(
                code="ir.use-before-def",
                message=f"local scalar {name!r} is read in BB{bid} before any "
                "assignment on every path",
                function=function.name,
                subject=name,
            )
        )
    for name, bid in dead_stores(function, cfg):
        report.add(
            Finding(
                code="ir.dead-store",
                message=f"value assigned to local scalar {name!r} in BB{bid} is "
                "never read on any path",
                function=function.name,
                subject=name,
                severity="warning",
            )
        )
    _check_unused_decls(function, report)
    return report


class IRVerifierPass(FunctionPass):
    """Pipeline pass wrapper: verifies, reports, never mutates."""

    name = "ir_verifier"

    def run(self, function: Function) -> PassReport:
        report = verify_function(function)
        details: dict[str, float | int | str] = {
            "findings": len(report.findings),
            "errors": report.count("error"),
            "warnings": report.count("warning"),
        }
        if report.findings:
            details["first_finding"] = str(report.findings[0])
        return PassReport(
            pass_name=self.name,
            function_name=function.name,
            changed=False,
            details=details,
        )
