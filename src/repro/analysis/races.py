"""Static data-race check for a scheduled HTG.

Given the HTG, a core mapping and per-core task orders, the checker builds
the happens-before relation the generated parallel program enforces:

* every HTG dependence edge (codegen inserts a signal/wait pair or keeps
  the tasks on one core in order);
* consecutive tasks on the same core (program order).

The transitive closure of that relation must order every pair of tasks
that conflict on a *shared* variable (write-write or read-write on a
``SHARED`` / ``INPUT`` / ``OUTPUT`` declaration); an unordered conflicting
pair mapped to different cores is reported as a race -- before any C code
is emitted.

Sibling loop chunks of the same split loop conflict at name granularity
by construction (they touch the same buffers), so their disjointness is
no longer assumed but *proved*: the memory-footprint analysis
(:mod:`repro.analysis.footprints`) must show the index slices they access
conflict-free (no write-write or write-read overlap).  A chunk pair whose
disjointness cannot be discharged is reported as a
``race.chunk-overlap-unproven`` **warning** -- soundness-relevant but
survivable, and never a silent pass.

Incremental re-checking
-----------------------

:func:`incremental_race_check` additionally returns a
:class:`RaceCheckState` snapshot (happens-before relation, its transitive
closure, the shared-name universe, and the findings).  On a later run over
an *edited* model it accepts the previous state plus the set of tasks whose
content fingerprints changed, and re-derives only what the edit can affect:

* the closure is reused verbatim when the happens-before relation and task
  universe are unchanged (the closure is a pure function of those inputs);
* with the closure reused and an identical shared-name universe, the
  verdict of a pair of *unchanged* tasks is a pure function of unchanged
  inputs (their read/write sets, kinds and parents, and the closure), so
  only pairs with at least one changed endpoint are re-scanned; previous
  findings for clean pairs are replayed with provenance ``reused``.

Any mismatch in the guard inputs falls back to the full scan, so the
incremental path can never be *less* sound than the cold one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.footprints import (
    TaskFootprint,
    default_footprint_store,
    footprints_conflict_free,
)
from repro.analysis.report import AnalysisReport, Finding
from repro.htg.graph import HierarchicalTaskGraph
from repro.htg.task import Task, TaskKind
from repro.ir.program import Function, Storage
from repro.utils.graphs import transitive_closure

#: Storage classes whose variables live in memory visible to every core.
SHARED_STORAGE = (Storage.SHARED, Storage.INPUT, Storage.OUTPUT)


def _chunk_siblings(a: Task, b: Task) -> bool:
    """True for loop chunks of the same split loop (intended to be disjoint)."""
    return (
        a.kind is TaskKind.LOOP_CHUNK
        and b.kind is TaskKind.LOOP_CHUNK
        and a.parent is not None
        and a.parent == b.parent
    )


@dataclass(frozen=True)
class RaceCheckState:
    """Reusable snapshot of one race-check run.

    The closure is by far the dominant cost of the check (networkx
    transitive closure over every task); it depends only on
    ``happens_before`` and the task universe, both recorded here so a
    later run can prove reuse valid by equality.
    """

    #: HTG dependence edges plus per-core program-order pairs.
    happens_before: frozenset[tuple[str, str]]
    #: Transitive closure of ``happens_before`` over ``graph_task_ids``.
    ordered: frozenset[tuple[str, str]]
    #: Every task in the HTG the closure was computed over.
    graph_task_ids: frozenset[str]
    #: The mapped tasks that were pair-scanned.
    scanned_task_ids: frozenset[str]
    #: Shared-variable universe the conflict test used.
    shared_names: frozenset[str]
    #: Findings of the scan (keyed by their ``a<->b`` subject on replay).
    findings: tuple[Finding, ...]


def _happens_before_pairs(
    htg: HierarchicalTaskGraph, order: dict[int, list[str]]
) -> frozenset[tuple[str, str]]:
    pairs: set[tuple[str, str]] = set(htg.edge_pairs())
    for core_tasks in order.values():
        for earlier, later in zip(core_tasks, core_tasks[1:]):
            pairs.add((earlier, later))
    return frozenset(pairs)


def _scan_pair(
    a: Task,
    b: Task,
    ordered: frozenset[tuple[str, str]],
    shared_names: frozenset[str],
    mapping: dict[str, int],
    function: Function,
    report: AnalysisReport,
    footprint_of,
) -> None:
    report.bump("pairs_checked")
    if (a.task_id, b.task_id) in ordered or (b.task_id, a.task_id) in ordered:
        report.bump("pairs_ordered")
        return
    write_write = a.writes & b.writes & shared_names
    write_read = (a.writes & b.reads | a.reads & b.writes) & shared_names
    if not write_write and not write_read:
        report.bump("pairs_disjoint")
        return
    conflict = sorted(write_write | write_read)
    if _chunk_siblings(a, b):
        if footprints_conflict_free(footprint_of(a), footprint_of(b)):
            report.bump("chunk_pairs_proved_disjoint")
            return
        report.add(
            Finding(
                code="race.chunk-overlap-unproven",
                message=(
                    f"sibling loop chunks {a.task_id!r} and {b.task_id!r} "
                    f"conflict on shared variable(s) {', '.join(conflict)} "
                    "and the footprint analysis cannot prove the accessed "
                    "index slices disjoint"
                ),
                function=function.name,
                subject=f"{a.task_id}<->{b.task_id}",
                severity="warning",
            )
        )
        return
    kind = "write-write" if write_write else "write-read"
    report.add(
        Finding(
            code=f"race.{kind}",
            message=(
                f"tasks {a.task_id!r} (core {mapping[a.task_id]}) and "
                f"{b.task_id!r} (core {mapping[b.task_id]}) access shared "
                f"variable(s) {', '.join(conflict)} without a "
                "happens-before ordering"
            ),
            function=function.name,
            subject=f"{a.task_id}<->{b.task_id}",
        )
    )


def incremental_race_check(
    htg: HierarchicalTaskGraph,
    mapping: dict[str, int],
    order: dict[int, list[str]],
    function: Function,
    prev_state: RaceCheckState | None = None,
    changed_tasks: set[str] | None = None,
) -> tuple[AnalysisReport, RaceCheckState]:
    """Race check with optional reuse of a previous run's state.

    ``changed_tasks`` is the set of task ids whose *content* differs from
    the run that produced ``prev_state`` (new tasks included).  Pass
    ``None`` to force a full scan even when the closure is reusable.
    Replayed findings keep the core numbers of the run they came from.
    """
    report = AnalysisReport("race_checker")
    shared_names = frozenset(
        d.name for d in function.all_decls() if d.storage in SHARED_STORAGE
    )
    store = default_footprint_store()
    fp_cache: dict[str, TaskFootprint] = {}

    def footprint_of(task: Task) -> TaskFootprint:
        if task.task_id not in fp_cache:
            fp_cache[task.task_id] = store.footprint(function, task)
        return fp_cache[task.task_id]

    tasks = [t for t in htg.leaf_tasks() if t.task_id in mapping]
    task_ids = frozenset(t.task_id for t in tasks)
    report.bump("tasks", len(tasks))
    report.bump("shared_variables", len(shared_names))

    graph_task_ids = frozenset(htg.tasks.keys())
    happens_before = _happens_before_pairs(htg, order)
    reuse_closure = (
        prev_state is not None
        and happens_before == prev_state.happens_before
        and graph_task_ids == prev_state.graph_task_ids
    )
    if reuse_closure:
        assert prev_state is not None
        ordered = prev_state.ordered
        report.bump("closure_reused")
    else:
        ordered = frozenset(transitive_closure(htg.tasks.keys(), happens_before))

    skip_clean_pairs = (
        reuse_closure
        and changed_tasks is not None
        and prev_state is not None
        and shared_names == prev_state.shared_names
        and task_ids == prev_state.scanned_task_ids
    )
    if skip_clean_pairs:
        assert prev_state is not None and changed_tasks is not None
        changed = {tid for tid in changed_tasks if tid in task_ids}
        index = {t.task_id: i for i, t in enumerate(tasks)}
        # Scan only pairs with >=1 changed endpoint; replay the rest.
        for a in tasks:
            if a.task_id not in changed:
                continue
            ia = index[a.task_id]
            for b in tasks:
                if b.task_id == a.task_id:
                    continue
                ib = index[b.task_id]
                if b.task_id in changed and ib < ia:
                    continue  # the (b, a) iteration covers this pair
                first, second = (b, a) if ib < ia else (a, b)
                _scan_pair(
                    first, second, ordered, shared_names, mapping, function,
                    report, footprint_of,
                )
        total_pairs = len(tasks) * (len(tasks) - 1) // 2
        report.bump("pairs_reused", total_pairs - report.checked.get("pairs_checked", 0))
        for finding in prev_state.findings:
            a_id, _, b_id = finding.subject.partition("<->")
            if a_id not in changed and b_id not in changed:
                report.add(replace(finding, provenance="reused"))
    else:
        for i, a in enumerate(tasks):
            for b in tasks[i + 1:]:
                _scan_pair(
                    a, b, ordered, shared_names, mapping, function,
                    report, footprint_of,
                )

    state = RaceCheckState(
        happens_before=happens_before,
        ordered=ordered,
        graph_task_ids=graph_task_ids,
        scanned_task_ids=task_ids,
        shared_names=shared_names,
        findings=tuple(report.findings),
    )
    return report, state


def check_races(
    htg: HierarchicalTaskGraph,
    mapping: dict[str, int],
    order: dict[int, list[str]],
    function: Function,
) -> AnalysisReport:
    """Prove every conflicting cross-core task pair ordered, or report races."""
    report, _ = incremental_race_check(htg, mapping, order, function)
    return report


def check_schedule_races(
    htg: HierarchicalTaskGraph, schedule, function: Function
) -> AnalysisReport:
    """:func:`check_races` on a :class:`repro.scheduling.schedule.Schedule`."""
    return check_races(htg, schedule.mapping, schedule.order, function)
