"""Static data-race check for a scheduled HTG.

Given the HTG, a core mapping and per-core task orders, the checker builds
the happens-before relation the generated parallel program enforces:

* every HTG dependence edge (codegen inserts a signal/wait pair or keeps
  the tasks on one core in order);
* consecutive tasks on the same core (program order).

The transitive closure of that relation must order every pair of tasks
that conflict on a *shared* variable (write-write or read-write on a
``SHARED`` / ``INPUT`` / ``OUTPUT`` declaration); an unordered conflicting
pair mapped to different cores is reported as a race -- before any C code
is emitted.

Sibling loop chunks of the same split loop are exempt: the extractor
creates them to write *disjoint index slices* of the same buffers, which
the name-granular read/write sets cannot express.  That exemption is the
single trusted assumption of the checker and mirrors the one the HTG
builder itself makes when it omits dependence edges between chunks.
"""

from __future__ import annotations

from repro.analysis.report import AnalysisReport, Finding
from repro.htg.graph import HierarchicalTaskGraph
from repro.htg.task import Task, TaskKind
from repro.ir.program import Function, Storage
from repro.utils.graphs import transitive_closure

#: Storage classes whose variables live in memory visible to every core.
SHARED_STORAGE = (Storage.SHARED, Storage.INPUT, Storage.OUTPUT)


def _chunk_siblings(a: Task, b: Task) -> bool:
    """True for loop chunks of the same split loop (disjoint by construction)."""
    return (
        a.kind is TaskKind.LOOP_CHUNK
        and b.kind is TaskKind.LOOP_CHUNK
        and a.parent is not None
        and a.parent == b.parent
    )


def check_races(
    htg: HierarchicalTaskGraph,
    mapping: dict[str, int],
    order: dict[int, list[str]],
    function: Function,
) -> AnalysisReport:
    """Prove every conflicting cross-core task pair ordered, or report races."""
    report = AnalysisReport("race_checker")
    shared_names = {
        d.name for d in function.all_decls() if d.storage in SHARED_STORAGE
    }
    tasks = [t for t in htg.leaf_tasks() if t.task_id in mapping]
    report.bump("tasks", len(tasks))
    report.bump("shared_variables", len(shared_names))

    happens_before: set[tuple[str, str]] = set(htg.edge_pairs())
    for core_tasks in order.values():
        for earlier, later in zip(core_tasks, core_tasks[1:]):
            happens_before.add((earlier, later))
    ordered = transitive_closure(htg.tasks.keys(), happens_before)

    for i, a in enumerate(tasks):
        for b in tasks[i + 1:]:
            report.bump("pairs_checked")
            if (a.task_id, b.task_id) in ordered or (b.task_id, a.task_id) in ordered:
                report.bump("pairs_ordered")
                continue
            if _chunk_siblings(a, b):
                report.bump("chunk_pairs_exempt")
                continue
            write_write = a.writes & b.writes & shared_names
            write_read = (a.writes & b.reads | a.reads & b.writes) & shared_names
            if not write_write and not write_read:
                report.bump("pairs_disjoint")
                continue
            conflict = sorted(write_write | write_read)
            kind = "write-write" if write_write else "write-read"
            report.add(
                Finding(
                    code=f"race.{kind}",
                    message=(
                        f"tasks {a.task_id!r} (core {mapping[a.task_id]}) and "
                        f"{b.task_id!r} (core {mapping[b.task_id]}) access shared "
                        f"variable(s) {', '.join(conflict)} without a "
                        "happens-before ordering"
                    ),
                    function=function.name,
                    subject=f"{a.task_id}<->{b.task_id}",
                )
            )
    return report


def check_schedule_races(
    htg: HierarchicalTaskGraph, schedule, function: Function
) -> AnalysisReport:
    """:func:`check_races` on a :class:`repro.scheduling.schedule.Schedule`."""
    return check_races(htg, schedule.mapping, schedule.order, function)
