"""Interval (value-range) analysis over IR expressions.

Abstract domain: each scalar variable maps to a closed interval
``[lo, hi]`` with infinite endpoints allowed; a variable absent from the
environment is unconstrained (top), and the environment value ``None``
denotes the unreachable state (bottom).  The lattice has infinite height,
so the dataflow solver applies :meth:`ValueRangeAnalysis.widen` (classic
jump-to-infinity widening) after a few re-entries of a block.

Branch refinement happens on CFG edges: the ``taken`` / ``fallthrough``
edges of an ``if`` assume the condition true / false, the ``taken`` /
``exit`` edges of a loop header constrain the index (``for``) or assume the
condition (``while``).  When an assumption contradicts the incoming
environment the edge state becomes ``None`` -- the edge is statically
infeasible, which the WCET tightener turns into an ``x_e = 0`` IPET
constraint.

Soundness caveats: arrays are not tracked (element reads are top), there is
no relational information (``x < y`` only refines against the other
operand's current interval), and float comparisons are refined without the
one-ulp shrink applied to integers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.dataflow import DataflowAnalysis, DataflowResult, run_dataflow
from repro.ir.cfg import BasicBlock, CFGEdge, ControlFlowGraph, build_cfg
from repro.ir.expressions import ArrayRef, BinOp, Call, Const, Expr, UnOp, Var
from repro.ir.program import Function, Storage
from repro.ir.statements import Assign, For, While
from repro.ir.types import ScalarKind, ScalarType

INF = float("inf")


@dataclass(frozen=True)
class ValueRange:
    """A closed interval ``[lo, hi]``; endpoints may be infinite."""

    lo: float = -INF
    hi: float = INF

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def is_top(self) -> bool:
        return self.lo == -INF and self.hi == INF

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    def hull(self, other: "ValueRange") -> "ValueRange":
        return ValueRange(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "ValueRange") -> "ValueRange | None":
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return None
        return ValueRange(lo, hi)

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


TOP = ValueRange()

#: A variable-range environment; ``None`` is the unreachable state.
Env = dict[str, ValueRange]


def _safe(value: float, fallback: float) -> float:
    """Replace the NaNs of indeterminate infinity arithmetic."""
    return fallback if math.isnan(value) else value


def _mul(a: ValueRange, b: ValueRange) -> ValueRange:
    corners = [
        _safe(x * y, 0.0) for x in (a.lo, a.hi) for y in (b.lo, b.hi)
    ]
    return ValueRange(min(corners), max(corners))


def _div(a: ValueRange, b: ValueRange) -> ValueRange:
    """Interval quotient hull; the caller guarantees ``0`` is outside ``b``.

    ``inf/inf`` corners are indeterminate and dropped: the divisor keeps a
    constant sign, so the matching ``x/inf -> 0`` and ``inf/y -> inf``
    corners already close the hull on both sides of the dropped one.
    """
    corners = [x / y for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
    determinate = [q for q in corners if not math.isnan(q)]
    if not determinate:
        return TOP
    return ValueRange(min(determinate), max(determinate))


def _bool_range(value: "bool | None") -> ValueRange:
    if value is True:
        return ValueRange(1.0, 1.0)
    if value is False:
        return ValueRange(0.0, 0.0)
    return ValueRange(0.0, 1.0)


def eval_range(expr: Expr, env: Env) -> ValueRange:
    """Interval of the possible values of ``expr`` under ``env``."""
    if isinstance(expr, Const):
        v = float(expr.value)
        return ValueRange(v, v)
    if isinstance(expr, Var):
        return env.get(expr.name, TOP)
    if isinstance(expr, ArrayRef):
        return TOP
    if isinstance(expr, BinOp):
        op = expr.op
        if op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
            return _bool_range(truth(expr, env))
        a = eval_range(expr.left, env)
        b = eval_range(expr.right, env)
        if op == "+":
            return ValueRange(_safe(a.lo + b.lo, -INF), _safe(a.hi + b.hi, INF))
        if op == "-":
            return ValueRange(_safe(a.lo - b.hi, -INF), _safe(a.hi - b.lo, INF))
        if op == "*":
            return _mul(a, b)
        if op == "/":
            if b.lo > 0 or b.hi < 0:
                return _div(a, b)
            # divisor range contains zero: any quotient is possible
            return TOP
        if op == "%":
            if a.lo >= 0 and b.lo > 0 and b.hi < INF:
                return ValueRange(0.0, min(a.hi, b.hi - 1) if a.hi < INF else b.hi - 1)
            return TOP
        if op == "min":
            return ValueRange(min(a.lo, b.lo), min(a.hi, b.hi))
        if op == "max":
            return ValueRange(max(a.lo, b.lo), max(a.hi, b.hi))
        return TOP
    if isinstance(expr, UnOp):
        op = expr.op
        if op == "!":
            return _bool_range(truth(expr, env))
        a = eval_range(expr.operand, env)
        if op == "-":
            return ValueRange(-a.hi, -a.lo)
        if op == "abs":
            if a.lo >= 0:
                return a
            if a.hi <= 0:
                return ValueRange(-a.hi, -a.lo)
            return ValueRange(0.0, max(-a.lo, a.hi))
        if op == "floor":
            return ValueRange(
                math.floor(a.lo) if a.lo > -INF else -INF,
                math.floor(a.hi) if a.hi < INF else INF,
            )
        if op == "sqrt":
            if a.hi < 0:
                return TOP
            lo = math.sqrt(a.lo) if a.lo > 0 else 0.0
            return ValueRange(lo, math.sqrt(a.hi) if a.hi < INF else INF)
        if op in ("sin", "cos"):
            return ValueRange(-1.0, 1.0)
        return TOP
    if isinstance(expr, Call):
        func = expr.func
        args = [eval_range(a, env) for a in expr.args]
        if func == "min":
            return ValueRange(min(a.lo for a in args), min(a.hi for a in args))
        if func == "max":
            return ValueRange(max(a.lo for a in args), max(a.hi for a in args))
        if func == "abs":
            return eval_range(UnOp("abs", expr.args[0]), env)
        if func == "clamp":
            x, lo, hi = args
            return ValueRange(
                min(max(x.lo, lo.lo), hi.hi), min(max(x.hi, lo.hi), hi.hi)
            )
        if func in ("sin", "cos"):
            return ValueRange(-1.0, 1.0)
        if func == "atan2":
            return ValueRange(-math.pi, math.pi)
        if func in ("floor", "ceil"):
            a = args[0]
            rnd = math.floor if func == "floor" else math.ceil
            return ValueRange(
                rnd(a.lo) if a.lo > -INF else -INF,
                rnd(a.hi) if a.hi < INF else INF,
            )
        if func == "sqrt":
            return eval_range(UnOp("sqrt", expr.args[0]), env)
        if func == "hypot":
            return ValueRange(0.0, INF)
        return TOP
    return TOP


def truth(cond: Expr, env: Env) -> "bool | None":
    """Tri-state evaluation of a boolean condition under ``env``."""
    if isinstance(cond, Const):
        return bool(cond.value)
    if isinstance(cond, UnOp) and cond.op == "!":
        t = truth(cond.operand, env)
        return None if t is None else not t
    if isinstance(cond, BinOp):
        op = cond.op
        if op == "&&":
            a, b = truth(cond.left, env), truth(cond.right, env)
            if a is False or b is False:
                return False
            if a is True and b is True:
                return True
            return None
        if op == "||":
            a, b = truth(cond.left, env), truth(cond.right, env)
            if a is True or b is True:
                return True
            if a is False and b is False:
                return False
            return None
        if op in ("<", "<=", ">", ">=", "==", "!="):
            a = eval_range(cond.left, env)
            b = eval_range(cond.right, env)
            if op == "<":
                if a.hi < b.lo:
                    return True
                if a.lo >= b.hi:
                    return False
            elif op == "<=":
                if a.hi <= b.lo:
                    return True
                if a.lo > b.hi:
                    return False
            elif op == ">":
                if a.lo > b.hi:
                    return True
                if a.hi <= b.lo:
                    return False
            elif op == ">=":
                if a.lo >= b.hi:
                    return True
                if a.hi < b.lo:
                    return False
            elif op == "==":
                if a.is_constant and b.is_constant and a.lo == b.lo:
                    return True
                if a.hi < b.lo or a.lo > b.hi:
                    return False
            elif op == "!=":
                if a.hi < b.lo or a.lo > b.hi:
                    return True
                if a.is_constant and b.is_constant and a.lo == b.lo:
                    return False
            return None
    return None


_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


def _is_int(expr: Expr) -> bool:
    t = getattr(expr, "type", None)
    return isinstance(t, ScalarType) and t.kind in (ScalarKind.INT, ScalarKind.BOOL)


def _refine_var(env: Env, name: str, constraint: ValueRange) -> "Env | None":
    cur = env.get(name, TOP)
    refined = cur.intersect(constraint)
    if refined is None:
        return None
    out = dict(env)
    out[name] = refined
    return out


def assume(cond: Expr, value: bool, env: Env) -> "Env | None":
    """Refine ``env`` under the assumption ``cond == value``.

    Returns ``None`` when the assumption contradicts the environment (the
    program point is unreachable).  Refinement is best-effort: conditions
    the analysis cannot decompose leave ``env`` unchanged, which is sound.
    """
    t = truth(cond, env)
    if t is not None:
        return env if t == value else None
    if isinstance(cond, UnOp) and cond.op == "!":
        return assume(cond.operand, not value, env)
    if isinstance(cond, BinOp):
        op = cond.op
        if op == "&&" and value:
            left = assume(cond.left, True, env)
            return None if left is None else assume(cond.right, True, left)
        if op == "||" and not value:
            left = assume(cond.left, False, env)
            return None if left is None else assume(cond.right, False, left)
        if op in _NEGATED:
            if not value:
                return assume(BinOp(_NEGATED[op], cond.left, cond.right), True, env)
            left, right = cond.left, cond.right
            # integer comparisons shrink strict bounds by one
            if isinstance(left, Var):
                b = eval_range(right, env)
                eps = 1.0 if _is_int(left) else 0.0
                if op == "<" and b.hi < INF:
                    return _refine_var(env, left.name, ValueRange(-INF, b.hi - eps))
                if op == "<=" and b.hi < INF:
                    return _refine_var(env, left.name, ValueRange(-INF, b.hi))
                if op == ">" and b.lo > -INF:
                    return _refine_var(env, left.name, ValueRange(b.lo + eps, INF))
                if op == ">=" and b.lo > -INF:
                    return _refine_var(env, left.name, ValueRange(b.lo, INF))
                if op == "==" and not b.is_top:
                    return _refine_var(env, left.name, b)
            if isinstance(right, Var):
                a = eval_range(left, env)
                eps = 1.0 if _is_int(right) else 0.0
                if op == "<" and a.lo > -INF:  # a < x  =>  x > a
                    return _refine_var(env, right.name, ValueRange(a.lo + eps, INF))
                if op == "<=" and a.lo > -INF:
                    return _refine_var(env, right.name, ValueRange(a.lo, INF))
                if op == ">" and a.hi < INF:
                    return _refine_var(env, right.name, ValueRange(-INF, a.hi - eps))
                if op == ">=" and a.hi < INF:
                    return _refine_var(env, right.name, ValueRange(-INF, a.hi))
                if op == "==" and not a.is_top:
                    return _refine_var(env, right.name, a)
    return env


class ValueRangeAnalysis(DataflowAnalysis):
    """Forward interval analysis with widening and branch refinement."""

    direction = "forward"
    widen_after = 3

    def __init__(self, function: Function, cfg: ControlFlowGraph) -> None:
        self.function = function
        self.cfg = cfg

    def boundary(self, cfg: ControlFlowGraph) -> Env:
        # Only per-activation locals with a declared initial value start
        # constrained; everything else (parameters, shared buffers,
        # persistent state) can hold anything on entry.
        env: Env = {}
        for decl in self.function.all_decls():
            if (
                decl.storage is Storage.LOCAL
                and not decl.is_array
                and decl.initial is not None
            ):
                v = float(decl.initial)
                env[decl.name] = ValueRange(v, v)
        return env

    def initial(self, cfg: ControlFlowGraph) -> "Env | None":
        return None

    def join(self, states: "list[Env | None]") -> "Env | None":
        live = [s for s in states if s is not None]
        if not live:
            return None
        merged = dict(live[0])
        for state in live[1:]:
            for name in list(merged):
                if name in state:
                    merged[name] = merged[name].hull(state[name])
                else:
                    del merged[name]  # absent = top
        return merged

    def transfer(self, block: BasicBlock, state: "Env | None") -> "Env | None":
        if state is None:
            return None
        env = dict(state)
        header_stmt = self.cfg.loop_stmts.get(block.bid)
        if isinstance(header_stmt, For):
            env[header_stmt.index.name] = self._header_index_range(header_stmt, env)
        for stmt in block.statements:
            if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
                env[stmt.target.name] = eval_range(stmt.value, env)
        return env

    def _header_index_range(self, stmt: For, env: Env) -> ValueRange:
        """All values the index can hold when control reaches the header.

        The interpreter evaluates the index over integers: it starts at
        ``lower`` and steps by ``step`` while ``index < upper`` (step > 0)
        or ``index > upper`` (step < 0); the last header visit therefore
        overshoots ``upper`` by less than one step.
        """
        lo_r = eval_range(stmt.lower, env)
        up_r = eval_range(stmt.upper, env)
        step = abs(stmt.step)
        if stmt.step > 0:
            hi = max(lo_r.hi, up_r.hi + step - 1) if up_r.hi < INF else INF
            return ValueRange(lo_r.lo, max(hi, lo_r.lo) if hi < INF else INF)
        lo = min(lo_r.lo, up_r.lo - step + 1) if up_r.lo > -INF else -INF
        return ValueRange(min(lo, lo_r.hi) if lo > -INF else -INF, lo_r.hi)

    def edge_transfer(self, edge: CFGEdge, state: "Env | None") -> "Env | None":
        if state is None:
            return None
        src = edge.src
        header_stmt = self.cfg.loop_stmts.get(src.bid)
        if header_stmt is not None:
            if isinstance(header_stmt, While):
                if edge.kind == "taken":
                    return assume(header_stmt.cond, True, state)
                if edge.kind == "exit":
                    return assume(header_stmt.cond, False, state)
                return state
            if isinstance(header_stmt, For):
                name = header_stmt.index.name
                up_r = eval_range(header_stmt.upper, state)
                if header_stmt.step > 0:
                    if edge.kind == "taken" and up_r.hi < INF:
                        # index < upper over integers
                        return _refine_var(state, name, ValueRange(-INF, up_r.hi - 1))
                    if edge.kind == "exit" and up_r.lo > -INF:
                        return _refine_var(state, name, ValueRange(up_r.lo, INF))
                else:
                    if edge.kind == "taken" and up_r.lo > -INF:
                        return _refine_var(state, name, ValueRange(up_r.lo + 1, INF))
                    if edge.kind == "exit" and up_r.hi < INF:
                        return _refine_var(state, name, ValueRange(-INF, up_r.hi))
                return state
        if src.conditions and edge.kind in ("taken", "fallthrough"):
            cond = src.conditions[0]
            return assume(cond, edge.kind == "taken", state)
        return state

    def widen(self, old: "Env | None", new: "Env | None") -> "Env | None":
        if old is None or new is None:
            return new
        out: Env = {}
        for name, rng in new.items():
            prev = old.get(name)
            if prev is None:
                continue  # newly constrained after instability: drop to top
            lo = rng.lo if rng.lo >= prev.lo else -INF
            hi = rng.hi if rng.hi <= prev.hi else INF
            out[name] = ValueRange(lo, hi)
        return out


def value_ranges(function: Function, cfg: ControlFlowGraph | None = None) -> DataflowResult:
    """Run value-range analysis on ``function`` and return the fixed point."""
    cfg = cfg if cfg is not None else build_cfg(function, allow_unbounded=True)
    return run_dataflow(cfg, ValueRangeAnalysis(function, cfg))
