"""Typed result model shared by every static analysis in this package.

A :class:`Finding` is one diagnosable fact about the program (a race, an
unreachable block, an unverifiable loop bound ...), identified by a stable
dotted ``code`` so tooling can filter without parsing messages.  An
:class:`AnalysisReport` aggregates the findings of one analysis run plus
"work done" counters (pairs checked, blocks visited ...), so an empty
findings list is distinguishable from an analysis that never ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: Finding severities, most severe first.  ``error`` findings describe
#: programs the flow must reject (races, malformed CFGs); ``warning``
#: findings are soundness-relevant but survivable (a declared loop bound
#: below the provable minimum); ``info`` findings are advisory (a dead
#: store the cleanup passes will remove anyway).
SEVERITIES = ("error", "warning", "info")

#: Finding provenances.  ``computed`` findings were established by running
#: the analysis in this very invocation; ``reused`` findings were replayed
#: from an earlier run whose input fingerprints are unchanged (see
#: :mod:`repro.analysis.incremental`).
PROVENANCES = ("computed", "reused")


def severity_at_least(severity: str, threshold: str) -> bool:
    """True when ``severity`` is at least as severe as ``threshold``.

    The backbone of ``--fail-on`` style gates: with a threshold of
    ``"warning"``, errors and warnings trip the gate and infos do not.
    """
    if severity not in SEVERITIES or threshold not in SEVERITIES:
        raise ValueError(
            f"severities must be one of {SEVERITIES}, "
            f"got {severity!r} / {threshold!r}"
        )
    return SEVERITIES.index(severity) <= SEVERITIES.index(threshold)


@dataclass(frozen=True)
class Finding:
    """One fact established by a static analysis."""

    #: Stable dotted identifier, e.g. ``race.write-write`` or
    #: ``cfg.unreachable-block``.
    code: str
    message: str
    #: Name of the IR function (or HTG) the finding is about.
    function: str = ""
    #: The offending entity: a variable, a ``task_a<->task_b`` pair, a
    #: ``BB<n>`` block label ...
    subject: str = ""
    severity: str = "error"
    #: ``computed`` (fresh) or ``reused`` (replayed from a previous run
    #: whose input fingerprints are unchanged).
    provenance: str = "computed"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        if self.provenance not in PROVENANCES:
            raise ValueError(
                f"provenance must be one of {PROVENANCES}, got {self.provenance!r}"
            )

    def as_dict(self) -> dict[str, str]:
        return {
            "code": self.code,
            "message": self.message,
            "function": self.function,
            "subject": self.subject,
            "severity": self.severity,
            "provenance": self.provenance,
        }

    def __str__(self) -> str:
        where = f" [{self.function}:{self.subject}]" if self.function or self.subject else ""
        return f"{self.severity}: {self.code}{where}: {self.message}"


@dataclass
class AnalysisReport:
    """Findings plus work-done counters of one analysis run."""

    analysis: str
    findings: list[Finding] = field(default_factory=list)
    #: Counters describing the work performed (``pairs_checked``,
    #: ``blocks``, ``loops_verified`` ...); an all-zero report with zero
    #: findings means "nothing to check", not "checked and clean".
    checked: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the run produced no findings at all."""
        return not self.findings

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "AnalysisReport") -> None:
        """Fold another report into this one (counters are summed)."""
        self.findings.extend(other.findings)
        for key, value in other.checked.items():
            self.checked[key] = self.checked.get(key, 0) + value

    def bump(self, counter: str, amount: int = 1) -> None:
        self.checked[counter] = self.checked.get(counter, 0) + amount

    def as_dict(self) -> dict[str, Any]:
        return {
            "analysis": self.analysis,
            "ok": self.ok,
            "findings": [f.as_dict() for f in self.findings],
            "checked": dict(self.checked),
        }

    def summary(self) -> str:
        """One text block per finding plus a trailing counter line."""
        lines = [str(f) for f in self.findings]
        counters = ", ".join(f"{k}={v}" for k, v in sorted(self.checked.items()))
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        lines.append(f"{self.analysis}: {status}" + (f" ({counters})" if counters else ""))
        return "\n".join(lines)
