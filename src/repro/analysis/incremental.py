"""Incremental re-analysis engine: fingerprint-keyed dependency tracking.

The PR 1/4 caches make *identical* inputs free; this module makes *nearly
identical* inputs nearly free.  It records, per pipeline run, an **analysis
dependency graph**: which content-addressed artifacts every stage consumed
(function/region fingerprints, the HTG structure digest, the platform cost
signature, the config digest) and which facts it produced.  Given a second
model, it computes a fingerprint diff and the minimal invalidation set by
walking that graph -- a stage is dirty exactly when its *input frontier*
(the digests of everything it consumes) changed.

The consumers are layered:

* :meth:`repro.core.pipeline.PipelineResult.artifact_summary` serializes the
  graph of a finished run (via :func:`summarize_result`);
* :meth:`repro.core.pipeline.Pipeline.run_incremental` replays stages whose
  frontier is unchanged, re-extracts only changed HTG regions, re-checks only
  race pairs with a changed endpoint, and warm-starts the interference fixed
  point (certificate-checked, see :mod:`repro.wcet.system_level`);
* :class:`IncrementalAnalysisStore` replays code-level
  :class:`~repro.analysis.report.AnalysisReport` findings for functions whose
  fingerprints are unchanged, with provenance marked ``reused``;
* ``python -m repro diff <old> <new>`` prints the invalidation frontier.

What dirties what (the dependency contract)
-------------------------------------------

================  ====================================================
stage             input frontier (a change to any entry dirties it)
================  ====================================================
``frontend``      diagram fingerprint
``transforms``    diagram fingerprint, config digest
``htg``           function fingerprint, extraction knobs, platform sig
``schedule``      function fp, HTG digest, platform sig, config digest,
                  scheduler implementation identity
``parallel``      function fp, HTG digest, schedule digest, platform
                  sig, config digest
``wcet``          function fp, platform sig, config digest, schedule
                  digest
``certify``       function fp, HTG digest, schedule digest, platform
                  sig, config digest
================  ====================================================

The frontiers deliberately over-approximate (the whole config digest stands
in for the knobs a stage actually reads), so a frontier match *proves* the
stage's inputs unchanged while a mismatch merely re-runs work.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.analysis.report import AnalysisReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import PipelineResult
    from repro.model.diagram import Diagram
    from repro.wcet.cache import WcetAnalysisCache

#: Version stamp of the :func:`summarize_result` dict layout.
SUMMARY_VERSION = 1

#: The stages the incremental engine knows the input frontiers of.
TRACKED_STAGES = (
    "frontend",
    "transforms",
    "htg",
    "schedule",
    "parallel",
    "wcet",
    "certify",
)


def _digest(payload: Any) -> str:
    return hashlib.sha1(
        json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()


def diagram_fingerprint(diagram: "Diagram") -> str:
    """Content fingerprint of a model diagram.

    Covers everything :func:`repro.frontend.compile_diagram` reads: block
    names, kinds, port shapes, numeric parameters, behaviour scripts and
    initial state, plus the connection list and the external port marks.
    Array-valued parameters and state are digested by value, so editing one
    FIR tap changes the fingerprint.
    """
    blocks = []
    for name in sorted(diagram.blocks):
        block = diagram.blocks[name]
        blocks.append(
            [
                name,
                block.kind,
                [[p.name, list(p.shape)] for p in block.inputs],
                [[p.name, list(p.shape)] for p in block.outputs],
                sorted((k, str(v)) for k, v in block.params.items()),
                block.behavior,
                sorted((k, str(v)) for k, v in block.state.items()),
            ]
        )
    payload = [
        blocks,
        sorted(
            [c.src_block, c.src_port, c.dst_block, c.dst_port]
            for c in diagram.connections
        ),
        sorted(diagram.external_inputs),
        sorted(diagram.external_outputs),
    ]
    return _digest(payload)


def stage_input_frontiers(fingerprints: Mapping[str, Any]) -> dict[str, str | None]:
    """The per-stage input-frontier keys of the dependency graph.

    ``fingerprints`` carries the global content digests of one run (keys
    ``diagram``, ``platform``, ``config``, ``function``, ``extraction``,
    ``htg``, ``schedule``, ``scheduler``).  A frontier is ``None`` -- never
    comparable, so the stage always re-runs -- when any of its components is
    missing or unfingerprintable (e.g. a platform carrying callables).
    """
    fp = dict(fingerprints)

    def key(stage: str, *parts: str) -> str | None:
        values = [fp.get(part) for part in parts]
        if any(v is None for v in values):
            return None
        return "|".join([stage, *[str(v) for v in values]])

    return {
        "frontend": key("frontend", "diagram"),
        "transforms": key("transforms", "diagram", "config"),
        "htg": key("htg", "function", "extraction", "platform"),
        "schedule": key(
            "schedule", "function", "htg", "platform", "config", "scheduler"
        ),
        "parallel": key(
            "parallel", "function", "htg", "schedule", "platform", "config"
        ),
        "wcet": key("wcet", "function", "platform", "config", "schedule"),
        "certify": key(
            "certify", "function", "htg", "schedule", "platform", "config"
        ),
    }


def summarize_result(
    result: "PipelineResult", cache: "WcetAnalysisCache | None" = None
) -> dict[str, Any]:
    """The analysis dependency graph of a finished run, as a JSON-able dict.

    Records the global content fingerprints, the per-region code
    fingerprints, the per-stage input frontiers and what each stage
    consumed/produced -- everything :func:`diff_summaries` and
    :meth:`~repro.core.pipeline.Pipeline.run_incremental` need to decide
    what a second model invalidates.
    """
    from repro.core.pipeline import (
        _config_digest,
        _htg_fingerprint_of,
        _schedule_digest,
        _scheduler_identity,
    )
    from repro.wcet.cache import platform_signature, shared_cache

    cache = cache if cache is not None else shared_cache()
    diagram = result.artifacts.get("diagram")
    platform = result.artifacts.get("platform")
    model = result.model
    regions = {
        name: cache.region_fingerprint(block) for name, block in model.block_regions
    }
    fingerprints: dict[str, Any] = {
        "diagram": diagram_fingerprint(diagram) if diagram is not None else None,
        "platform": platform_signature(platform) if platform is not None else None,
        "config": _config_digest(result.config),
        "function": cache.function_fingerprint(model.entry),
        "extraction": _digest(
            [result.config.granularity, result.config.loop_chunks]
        ),
        "htg": _htg_fingerprint_of(result.htg, cache),
        "schedule": _schedule_digest(result.schedule),
        "scheduler": _scheduler_identity(result.config.scheduler),
    }
    stages = []
    for record in result.stage_records:
        stages.append(
            {
                "name": record.name,
                "seconds": record.seconds,
                "produced": list(record.produced),
                "info": {
                    k: v
                    for k, v in record.info.items()
                    if isinstance(v, (str, int, float, bool))
                },
            }
        )
    return {
        "version": SUMMARY_VERSION,
        "diagram_name": result.diagram_name,
        "platform_name": result.platform_name,
        "fingerprints": fingerprints,
        "regions": regions,
        "frontiers": stage_input_frontiers(fingerprints),
        "stages": stages,
    }


@dataclass(frozen=True)
class FingerprintDiff:
    """What changed between two runs' artifact summaries."""

    #: Global fingerprint keys whose values differ (or are uncomparable).
    changed_globals: tuple[str, ...]
    changed_regions: tuple[str, ...]
    added_regions: tuple[str, ...]
    removed_regions: tuple[str, ...]
    unchanged_regions: tuple[str, ...]
    #: Stages whose input frontier changed (minimal invalidation set).
    dirty_stages: tuple[str, ...]
    clean_stages: tuple[str, ...]

    @property
    def nothing_changed(self) -> bool:
        return not self.dirty_stages and not self.changed_globals

    @property
    def everything_changed(self) -> bool:
        return not self.clean_stages

    def as_dict(self) -> dict[str, Any]:
        return {
            "changed_globals": list(self.changed_globals),
            "changed_regions": list(self.changed_regions),
            "added_regions": list(self.added_regions),
            "removed_regions": list(self.removed_regions),
            "unchanged_regions": len(self.unchanged_regions),
            "dirty_stages": list(self.dirty_stages),
            "clean_stages": list(self.clean_stages),
        }


def diff_summaries(
    old: Mapping[str, Any], new: Mapping[str, Any]
) -> FingerprintDiff:
    """Fingerprint diff + minimal invalidation set between two summaries.

    Walks the dependency graph: a stage lands in ``dirty_stages`` exactly
    when its input frontier differs between the two runs (a ``None``
    frontier on either side counts as different -- unfingerprintable inputs
    can never prove reuse valid).
    """
    old_fp = dict(old.get("fingerprints", {}))
    new_fp = dict(new.get("fingerprints", {}))
    changed_globals = tuple(
        sorted(
            key
            for key in set(old_fp) | set(new_fp)
            if old_fp.get(key) is None
            or new_fp.get(key) is None
            or old_fp.get(key) != new_fp.get(key)
        )
    )
    old_regions = dict(old.get("regions", {}))
    new_regions = dict(new.get("regions", {}))
    changed = tuple(
        sorted(
            name
            for name in set(old_regions) & set(new_regions)
            if old_regions[name] != new_regions[name]
        )
    )
    added = tuple(sorted(set(new_regions) - set(old_regions)))
    removed = tuple(sorted(set(old_regions) - set(new_regions)))
    unchanged = tuple(
        sorted(
            name
            for name in set(old_regions) & set(new_regions)
            if old_regions[name] == new_regions[name]
        )
    )
    old_frontiers = dict(old.get("frontiers", {}))
    new_frontiers = dict(new.get("frontiers", {}))
    dirty = []
    clean = []
    for stage in TRACKED_STAGES:
        a, b = old_frontiers.get(stage), new_frontiers.get(stage)
        if a is None or b is None or a != b:
            dirty.append(stage)
        else:
            clean.append(stage)
    return FingerprintDiff(
        changed_globals=changed_globals,
        changed_regions=changed,
        added_regions=added,
        removed_regions=removed,
        unchanged_regions=unchanged,
        dirty_stages=tuple(dirty),
        clean_stages=tuple(clean),
    )


# ---------------------------------------------------------------------- #
# code-level report replay
# ---------------------------------------------------------------------- #
def mark_reused(report: AnalysisReport) -> AnalysisReport:
    """A copy of ``report`` with every finding's provenance set to ``reused``."""
    checked = dict(report.checked)
    checked["reused"] = 1
    return AnalysisReport(
        analysis=report.analysis,
        findings=[replace(f, provenance="reused") for f in report.findings],
        checked=checked,
    )


class IncrementalAnalysisStore:
    """Function-fingerprint-keyed store of code-level analysis reports.

    The dataflow/lint/flow-facts analyses are pure functions of one IR
    function's content, so their reports can be replayed verbatim for any
    function whose fingerprint is unchanged.  ``reports_for`` returns the
    stored reports with provenance marked ``reused``; a miss returns
    ``None`` and the caller re-analyses (then calls :meth:`record`).
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be at least 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, list[AnalysisReport]] = {}

    def record(self, fingerprint: str, reports: Iterable[AnalysisReport]) -> None:
        self._entries[fingerprint] = list(reports)
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))

    def reports_for(self, fingerprint: str) -> list[AnalysisReport] | None:
        stored = self._entries.get(fingerprint)
        if stored is None:
            self.misses += 1
            return None
        self.hits += 1
        return [mark_reused(report) for report in stored]

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------- #
# per-run reuse accounting
# ---------------------------------------------------------------------- #
@dataclass
class IncrementalReport:
    """What one :meth:`Pipeline.run_incremental` call reused vs recomputed."""

    #: stage name -> ``"reused"`` (replayed from the previous run),
    #: ``"incremental"`` (re-ran with sub-stage reuse) or ``"recomputed"``.
    stages: dict[str, str] = field(default_factory=dict)
    diff: FingerprintDiff | None = None
    #: Regions whose task decomposition / code-level facts were reused.
    regions_reused: int = 0
    regions_recomputed: int = 0
    #: Race-check pair accounting (when the parallel stage ran).
    race_pairs_reused: int = 0
    race_pairs_checked: int = 0
    #: ``warm_info`` of the system fixed point, when one ran warm.
    warm_fixed_point: dict | None = None
    #: Set when the engine bailed out to a plain cold run.
    fallback_reason: str | None = None

    @property
    def stages_reused(self) -> int:
        return sum(1 for v in self.stages.values() if v == "reused")

    @property
    def stages_recomputed(self) -> int:
        return sum(1 for v in self.stages.values() if v != "reused")

    def as_dict(self) -> dict[str, Any]:
        return {
            "stages": dict(self.stages),
            "stages_reused": self.stages_reused,
            "stages_recomputed": self.stages_recomputed,
            "diff": self.diff.as_dict() if self.diff is not None else None,
            "regions_reused": self.regions_reused,
            "regions_recomputed": self.regions_recomputed,
            "race_pairs_reused": self.race_pairs_reused,
            "race_pairs_checked": self.race_pairs_checked,
            "warm_fixed_point": self.warm_fixed_point,
            "fallback_reason": self.fallback_reason,
        }

    def render(self) -> str:
        """Human-readable invalidation frontier for the ``diff`` CLI."""
        lines = []
        if self.fallback_reason:
            lines.append(f"fallback to cold run: {self.fallback_reason}")
        if self.diff is not None:
            d = self.diff
            lines.append(
                "changed functions: "
                + (", ".join(d.changed_regions) if d.changed_regions else "(none)")
            )
            if d.added_regions:
                lines.append("added functions: " + ", ".join(d.added_regions))
            if d.removed_regions:
                lines.append("removed functions: " + ", ".join(d.removed_regions))
            lines.append(f"unchanged functions: {len(d.unchanged_regions)}")
        for stage in TRACKED_STAGES:
            status = self.stages.get(stage)
            if status is not None:
                lines.append(f"stage {stage:<10} {status}")
        lines.append(
            f"facts: {self.regions_reused} region(s) reused, "
            f"{self.regions_recomputed} recomputed; "
            f"race pairs {self.race_pairs_reused} reused, "
            f"{self.race_pairs_checked} rechecked"
        )
        if self.warm_fixed_point is not None:
            lines.append(f"fixed point: {self.warm_fixed_point}")
        return "\n".join(lines)
