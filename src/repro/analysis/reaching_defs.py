"""Reaching-definitions analysis over the per-function CFG.

The state maps each variable name to the frozenset of statement ids
(``Stmt.sid``) whose assignment may reach the program point.  Two sentinel
"definition sites" complete the lattice:

* :data:`DEF_EXTERNAL` (-1) -- the value existing before the function runs
  (parameters, shared/input/output buffers, initialised locals, persistent
  state);
* :data:`DEF_UNINIT` (-2) -- an uninitialised local: when it is the *only*
  definition reaching a read, the read is provably use-before-def.

Scalar assignments kill strongly (the set is replaced); array-element
assignments update weakly (the set grows), because the analysis does not
reason about indices.  ``for`` headers define their index variable.
"""

from __future__ import annotations

from repro.analysis.dataflow import DataflowAnalysis, DataflowResult, run_dataflow
from repro.ir.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.ir.expressions import Var
from repro.ir.program import Function, Storage
from repro.ir.statements import Assign, For

DEF_EXTERNAL = -1
DEF_UNINIT = -2

RDState = dict[str, frozenset]


class ReachingDefinitions(DataflowAnalysis):
    """Forward may-analysis; join is per-variable set union."""

    direction = "forward"

    def __init__(self, function: Function, cfg: ControlFlowGraph) -> None:
        self.function = function
        self.cfg = cfg

    def boundary(self, cfg: ControlFlowGraph) -> RDState:
        state: RDState = {}
        for decl in self.function.all_decls():
            uninitialised = (
                decl.storage is Storage.LOCAL
                and not decl.is_array
                and decl.initial is None
            )
            state[decl.name] = frozenset(
                {DEF_UNINIT if uninitialised else DEF_EXTERNAL}
            )
        for stmt in self.function.body.walk():
            if isinstance(stmt, For):
                state.setdefault(stmt.index.name, frozenset({DEF_UNINIT}))
        return state

    def initial(self, cfg: ControlFlowGraph) -> RDState:
        return {}

    def join(self, states: list[RDState]) -> RDState:
        merged: RDState = {}
        for state in states:
            for name, defs in state.items():
                merged[name] = merged.get(name, frozenset()) | defs
        return merged

    def transfer(self, block: BasicBlock, state: RDState) -> RDState:
        out = dict(state)
        header_stmt = self.cfg.loop_stmts.get(block.bid)
        if isinstance(header_stmt, For):
            # the header initialises/advances the index before any body use
            out[header_stmt.index.name] = frozenset({header_stmt.sid})
        for stmt in block.statements:
            if not isinstance(stmt, Assign):
                continue
            if isinstance(stmt.target, Var):
                out[stmt.target.name] = frozenset({stmt.sid})
            else:
                name = stmt.target.array
                out[name] = out.get(name, frozenset()) | frozenset({stmt.sid})
        return out


def reaching_definitions(
    function: Function, cfg: ControlFlowGraph | None = None
) -> DataflowResult:
    """Run reaching definitions on ``function`` and return the fixed point."""
    cfg = cfg if cfg is not None else build_cfg(function, allow_unbounded=True)
    return run_dataflow(cfg, ReachingDefinitions(function, cfg))


def definitely_uninitialized_uses(
    function: Function, cfg: ControlFlowGraph | None = None
) -> list[tuple[str, int]]:
    """Reads of local scalars that *only* an uninitialised state can reach.

    Returns ``(variable name, block id)`` pairs for reads where the sole
    reaching definition is :data:`DEF_UNINIT`.  Restricted to ``LOCAL``
    scalars: shared/scratchpad/state variables legitimately carry values
    from outside the function, and arrays are updated weakly so a definite
    verdict is impossible.
    """
    cfg = cfg if cfg is not None else build_cfg(function, allow_unbounded=True)
    analysis = ReachingDefinitions(function, cfg)
    result = run_dataflow(cfg, analysis)
    if not result.converged:  # pragma: no cover - finite lattice, converges
        return []

    local_scalars = {
        d.name
        for d in function.all_decls()
        if d.storage is Storage.LOCAL and not d.is_array and d.initial is None
    }
    uninit_only = frozenset({DEF_UNINIT})
    reachable = cfg.reachable_blocks()
    found: list[tuple[str, int]] = []
    seen: set[tuple[str, int]] = set()

    def check_reads(names, state: RDState, bid: int) -> None:
        for name in names:
            if name not in local_scalars:
                continue
            if state.get(name) == uninit_only and (name, bid) not in seen:
                seen.add((name, bid))
                found.append((name, bid))

    for block in cfg.blocks:
        if block.bid not in reachable:
            continue
        state = dict(result.entry[block.bid])
        header_stmt = cfg.loop_stmts.get(block.bid)
        if header_stmt is not None:
            # bound/condition expressions are evaluated by the header itself
            check_reads(header_stmt.variables_read(), state, block.bid)
        if isinstance(header_stmt, For):
            state[header_stmt.index.name] = frozenset({header_stmt.sid})
        for stmt in block.statements:
            check_reads(stmt.variables_read(), state, block.bid)
            if isinstance(stmt, Assign):
                if isinstance(stmt.target, Var):
                    state[stmt.target.name] = frozenset({stmt.sid})
                else:
                    name = stmt.target.array
                    state[name] = state.get(name, frozenset()) | frozenset({stmt.sid})
        if header_stmt is None:
            for cond in block.conditions:
                check_reads(cond.variables_read(), state, block.bid)
    return found
