"""Per-task shared-memory footprints with index intervals.

For every leaf task this analysis computes *which* shared variables the
task's statements may touch, and for shared arrays *where*: a closed
interval over-approximating every first-dimension index the task can use.
Index intervals come from :mod:`repro.analysis.value_range` expression
evaluation under the loop-index environment built while walking the task's
statements; any index the evaluator cannot bound degrades to the whole
array, so the footprint over-approximates by construction.

Two consumers, two different questions:

* :func:`footprints_conflict_free` -- the race checker's question: can the
  two tasks conflict (write-write or write-read overlap) on any shared
  variable?  Shared *scalars* participate (a scalar is a single cell, its
  footprint is the whole cell); read-read overlap is fine.  This is what
  replaces the old blanket loop-chunk exemption with an actual proof.
* :func:`footprints_address_disjoint` -- the static-MHP question: can the
  two tasks touch a common shared-array element at all?  *Any* access
  overlap (reads included) blocks pruning, because the interference model
  charges contention per access, not per conflict.  Shared scalars are
  ignored here: the system-level analysis only counts shared *array*
  accesses as interference-prone (see
  :func:`repro.ir.analysis.shared_access_summary`).

Soundness notes:

* Only the first index of a multi-dimensional access is tracked.  Two
  accesses with disjoint first-index intervals address disjoint element
  sets regardless of the remaining dimensions, so the one-dimensional test
  is sound (merely imprecise for column-wise sharing).
* The interpreter truncates every index expression to ``int`` before the
  access, so recorded intervals are truncated endpoint-wise
  (``trunc`` is monotone; without it ``[-0.5, -0.2]`` and ``[0.2, 0.5]``
  would look disjoint while both address element 0).
* Tasks run mid-function: declared initial values of locals may have been
  overwritten by earlier tasks, so expression evaluation starts from an
  empty environment (everything top) and only ``for``-loop indices are
  constrained.  A statement assigning a tracked index kills its range.
* Hand-built tasks may declare read/write sets their ``statements`` block
  does not contain (the extractor always keeps them in sync).  Any
  declared-but-unseen shared name is merged as a *whole* footprint, so a
  declared access can never be silently dropped.
"""

from __future__ import annotations

import hashlib
import json
import math
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from repro.analysis.value_range import INF, TOP, Env, ValueRange, eval_range
from repro.htg.task import Task
from repro.ir.expressions import ArrayRef, Expr, Var
from repro.ir.printer import to_c
from repro.ir.program import Function, Storage
from repro.ir.statements import (
    Assign,
    Block,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    While,
)

#: Storage classes visible to every core (mirrors ``races.SHARED_STORAGE``;
#: redeclared here because :mod:`repro.analysis.races` imports this module).
SHARED_STORAGE = (Storage.SHARED, Storage.INPUT, Storage.OUTPUT)


@dataclass(frozen=True)
class TaskFootprint:
    """Over-approximated shared-memory footprint of one task.

    ``array_reads`` / ``array_writes`` map shared array names to the closed
    interval of first-dimension indices the task may use (``TOP`` = the
    whole array).  ``scalar_reads`` / ``scalar_writes`` are the shared
    scalars touched (each is one cell, so no interval is needed).
    """

    task_id: str
    array_reads: dict[str, ValueRange] = field(default_factory=dict)
    array_writes: dict[str, ValueRange] = field(default_factory=dict)
    scalar_reads: frozenset[str] = frozenset()
    scalar_writes: frozenset[str] = frozenset()

    def touched(self) -> frozenset[str]:
        return frozenset(
            set(self.array_reads)
            | set(self.array_writes)
            | self.scalar_reads
            | self.scalar_writes
        )

    def as_dict(self) -> dict:
        def ranges(acc: dict[str, ValueRange]) -> dict[str, list[float]]:
            return {name: [acc[name].lo, acc[name].hi] for name in sorted(acc)}

        return {
            "task": self.task_id,
            "array_reads": ranges(self.array_reads),
            "array_writes": ranges(self.array_writes),
            "scalar_reads": sorted(self.scalar_reads),
            "scalar_writes": sorted(self.scalar_writes),
        }


def _trunc(x: float) -> float:
    """Endpoint-wise ``int()`` truncation; monotone, infinity-preserving."""
    if x == INF or x == -INF:
        return x
    return float(math.trunc(x))


def _index_interval(rng: ValueRange) -> ValueRange:
    return ValueRange(_trunc(rng.lo), _trunc(rng.hi))


def iteration_value_range(stmt: For, env: Env) -> ValueRange | None:
    """Interval of the values the loop *body* can observe in the index.

    Unlike :meth:`ValueRangeAnalysis._header_index_range` this excludes the
    final header visit that fails the loop test -- the body never sees that
    overshoot value.  Returns ``None`` when the loop provably never runs.
    The interpreter truncates both bounds to ``int`` before iterating, so
    the endpoints are truncated the same way.
    """
    lo_r = eval_range(stmt.lower, env)
    up_r = eval_range(stmt.upper, env)
    if stmt.step > 0:
        lo = _trunc(lo_r.lo)
        hi = _trunc(up_r.hi) - 1 if up_r.hi < INF else INF
    else:
        lo = _trunc(up_r.lo) + 1 if up_r.lo > -INF else -INF
        hi = _trunc(lo_r.hi)
    if lo > hi:
        return None
    return ValueRange(lo, hi)


class _FootprintWalker:
    def __init__(self, function: Function) -> None:
        self.shared_arrays: set[str] = set()
        self.shared_scalars: set[str] = set()
        for decl in function.all_decls():
            if decl.storage in SHARED_STORAGE:
                (self.shared_arrays if decl.is_array else self.shared_scalars).add(
                    decl.name
                )
        self.array_reads: dict[str, ValueRange] = {}
        self.array_writes: dict[str, ValueRange] = {}
        self.scalar_reads: set[str] = set()
        self.scalar_writes: set[str] = set()

    def _record(self, acc: dict[str, ValueRange], name: str, rng: ValueRange) -> None:
        cur = acc.get(name)
        acc[name] = rng if cur is None else cur.hull(rng)

    def _read_expr(self, expr: Expr, env: Env) -> None:
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                if node.array in self.shared_arrays:
                    self._record(
                        self.array_reads,
                        node.array,
                        _index_interval(eval_range(node.indices[0], env)),
                    )
            elif isinstance(node, Var) and node.name in self.shared_scalars:
                self.scalar_reads.add(node.name)

    def walk(self, stmt: Stmt, env: Env) -> None:
        if isinstance(stmt, Assign):
            for expr in stmt.expressions():
                self._read_expr(expr, env)
            target = stmt.target
            if isinstance(target, ArrayRef):
                if target.array in self.shared_arrays:
                    self._record(
                        self.array_writes,
                        target.array,
                        _index_interval(eval_range(target.indices[0], env)),
                    )
            else:
                if target.name in self.shared_scalars:
                    self.scalar_writes.add(target.name)
                # flow-insensitive soundness: a tracked index that gets
                # reassigned can no longer be bounded by its loop range
                env.pop(target.name, None)
            return
        if isinstance(stmt, (Return, ExprStmt)):
            for expr in stmt.expressions():
                self._read_expr(expr, env)
            return
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                self.walk(child, env)
            return
        if isinstance(stmt, If):
            self._read_expr(stmt.cond, env)
            self.walk(stmt.then_body, env)
            self.walk(stmt.else_body, env)
            return
        if isinstance(stmt, For):
            for expr in stmt.expressions():
                self._read_expr(expr, env)
            rng = iteration_value_range(stmt, env)
            if rng is None:  # provably zero-trip: the body never executes
                return
            name = stmt.index.name
            saved = env.get(name)
            env[name] = rng
            self.walk(stmt.body, env)
            if saved is None:
                env.pop(name, None)
            else:
                env[name] = saved
            return
        if isinstance(stmt, While):
            self._read_expr(stmt.cond, env)
            self.walk(stmt.body, env)
            return
        raise TypeError(f"unsupported statement {type(stmt).__name__}")


def task_footprint(function: Function, task: Task) -> TaskFootprint:
    """Sound shared-memory footprint of ``task`` (see the module docstring)."""
    walker = _FootprintWalker(function)
    walker.walk(task.statements, {})
    # merge declared-but-unseen shared names as whole footprints: hand-built
    # tasks may declare accesses their statements block does not contain
    for name in task.reads:
        if name in walker.shared_arrays and name not in walker.array_reads:
            walker.array_reads[name] = TOP
        elif name in walker.shared_scalars:
            walker.scalar_reads.add(name)
    for name in task.writes:
        if name in walker.shared_arrays and name not in walker.array_writes:
            walker.array_writes[name] = TOP
        elif name in walker.shared_scalars:
            walker.scalar_writes.add(name)
    return TaskFootprint(
        task_id=task.task_id,
        array_reads=walker.array_reads,
        array_writes=walker.array_writes,
        scalar_reads=frozenset(walker.scalar_reads),
        scalar_writes=frozenset(walker.scalar_writes),
    )


def _overlap(a: ValueRange, b: ValueRange) -> bool:
    """Closed-interval overlap (indices are integers; endpoints count)."""
    return a.lo <= b.hi and b.lo <= a.hi


def footprints_conflict_free(a: TaskFootprint, b: TaskFootprint) -> bool:
    """Prove no write-write or write-read overlap on any shared variable.

    This is the obligation the race checker's loop-chunk exemption must
    discharge: read-read sharing is harmless, every other overlap is a
    potential race.
    """
    if a.scalar_writes & (b.scalar_writes | b.scalar_reads):
        return False
    if b.scalar_writes & a.scalar_reads:
        return False
    for name, wa in a.array_writes.items():
        other = b.array_writes.get(name)
        if other is not None and _overlap(wa, other):
            return False
        other = b.array_reads.get(name)
        if other is not None and _overlap(wa, other):
            return False
    for name, wb in b.array_writes.items():
        other = a.array_reads.get(name)
        if other is not None and _overlap(wb, other):
            return False
    return True


def footprints_address_disjoint(a: TaskFootprint, b: TaskFootprint) -> bool:
    """Prove the two tasks touch no common shared-array element.

    Reads count: the interference model charges every shared-array access,
    so only fully address-disjoint tasks can be excluded from each other's
    contender sets.  Shared scalars are ignored (they generate no counted
    interference accesses).
    """
    for name, ranges_a in _access_ranges(a).items():
        ranges_b = _access_ranges_for(b, name)
        if not ranges_b:
            continue
        for ra in ranges_a:
            for rb in ranges_b:
                if _overlap(ra, rb):
                    return False
    return True


def _access_ranges(fp: TaskFootprint) -> dict[str, list[ValueRange]]:
    out: dict[str, list[ValueRange]] = {}
    for name, rng in fp.array_reads.items():
        out.setdefault(name, []).append(rng)
    for name, rng in fp.array_writes.items():
        out.setdefault(name, []).append(rng)
    return out


def _access_ranges_for(fp: TaskFootprint, name: str) -> list[ValueRange]:
    out = []
    rng = fp.array_reads.get(name)
    if rng is not None:
        out.append(rng)
    rng = fp.array_writes.get(name)
    if rng is not None:
        out.append(rng)
    return out


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


class FootprintStore:
    """Fingerprint-keyed LRU memo of task footprints.

    A footprint is a pure function of the task's statements, its declared
    read/write sets and the function's declaration table -- the same
    context/region fingerprint scheme the code-level WCET cache uses, so
    an incremental re-run recomputes footprints only for edited regions.
    Pass the run's :class:`~repro.wcet.cache.WcetAnalysisCache` to share
    its memoized fingerprints instead of re-rendering regions.
    """

    def __init__(self, wcet_cache=None, max_entries: int = 4096) -> None:
        self._cache = wcet_cache
        self._max_entries = max_entries
        self._entries: OrderedDict[str, TaskFootprint] = OrderedDict()
        self._context_fps: dict[int, str] = {}
        self.hits = 0
        self.misses = 0

    def _context_fingerprint(self, function: Function) -> str:
        if self._cache is not None:
            return self._cache.function_context_fingerprint(function)
        cached = self._context_fps.get(id(function))
        if cached is None:
            decls = sorted(
                (d.name, str(d.type), d.storage.name) for d in function.all_decls()
            )
            cached = _digest(json.dumps(decls, separators=(",", ":")))
            self._context_fps[id(function)] = cached
            try:
                weakref.finalize(function, self._context_fps.pop, id(function), None)
            except TypeError:  # pragma: no cover - Function is weakref-able
                pass
        return cached

    def key(self, function: Function, task: Task) -> str:
        if self._cache is not None:
            region_fp = self._cache.region_fingerprint(task.statements)
        else:
            region_fp = _digest(to_c(task.statements))
        declared = _digest(
            json.dumps(
                [sorted(task.reads), sorted(task.writes)], separators=(",", ":")
            )
        )
        return "|".join((self._context_fingerprint(function), region_fp, declared))

    def footprint(self, function: Function, task: Task) -> TaskFootprint:
        key = self.key(function, task)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached if cached.task_id == task.task_id else replace(
                cached, task_id=task.task_id
            )
        self.misses += 1
        fp = task_footprint(function, task)
        self._entries[key] = fp
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
        return fp


_DEFAULT_STORE: FootprintStore | None = None


def default_footprint_store() -> FootprintStore:
    """Process-wide footprint memo (same idiom as ``shared_cache()``)."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = FootprintStore()
    return _DEFAULT_STORE


def task_footprints(
    function: Function,
    tasks: "list[Task]",
    store: FootprintStore | None = None,
) -> dict[str, TaskFootprint]:
    """Footprints of ``tasks`` keyed by task id (memoized via ``store``)."""
    store = store if store is not None else default_footprint_store()
    return {t.task_id: store.footprint(function, t) for t in tasks}
