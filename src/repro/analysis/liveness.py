"""Live-variable analysis over the per-function CFG.

Backward may-analysis: a variable is live at a point when some path to the
function exit reads it before (strongly) writing it.  The state is a
``frozenset`` of names; join is set union.  Non-local variables (shared,
scratchpad, input, output buffers) are live at the function exit -- their
final values are observable by other cores and by the next activation --
so only ``LOCAL`` values can ever be found dead.

Array-element writes never kill (index-insensitive), and loop headers read
their bound expressions plus, conservatively, the index variable (the back
path increments it), which keeps the analysis sound at the cost of never
reporting loop indices dead.
"""

from __future__ import annotations

from repro.analysis.dataflow import DataflowAnalysis, DataflowResult, run_dataflow
from repro.ir.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.ir.expressions import Var
from repro.ir.program import Function, Storage
from repro.ir.statements import Assign, For

LiveState = frozenset


class Liveness(DataflowAnalysis):
    """Backward may-analysis over frozensets of variable names."""

    direction = "backward"

    def __init__(self, function: Function, cfg: ControlFlowGraph) -> None:
        self.function = function
        self.cfg = cfg

    def boundary(self, cfg: ControlFlowGraph) -> LiveState:
        return frozenset(
            d.name
            for d in self.function.all_decls()
            if d.storage is not Storage.LOCAL
        )

    def initial(self, cfg: ControlFlowGraph) -> LiveState:
        return frozenset()

    def join(self, states: list[LiveState]) -> LiveState:
        merged: set[str] = set()
        for state in states:
            merged |= state
        return frozenset(merged)

    def transfer(self, block: BasicBlock, live_out: LiveState) -> LiveState:
        live = set(live_out)
        # conditions are evaluated at the end of the block
        for cond in block.conditions:
            live |= cond.variables_read()
        header_stmt = self.cfg.loop_stmts.get(block.bid)
        if isinstance(header_stmt, For):
            live |= header_stmt.lower.variables_read()
            live.add(header_stmt.index.name)
        for stmt in reversed(block.statements):
            if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
                live.discard(stmt.target.name)
            live |= stmt.variables_read()
        return frozenset(live)


def liveness(function: Function, cfg: ControlFlowGraph | None = None) -> DataflowResult:
    """Run live-variable analysis on ``function``."""
    cfg = cfg if cfg is not None else build_cfg(function, allow_unbounded=True)
    return run_dataflow(cfg, Liveness(function, cfg))


def dead_stores(
    function: Function, cfg: ControlFlowGraph | None = None
) -> list[tuple[str, int]]:
    """Assignments to local scalars whose value no path ever reads.

    Returns ``(variable name, block id)`` pairs.  Variables whose names start
    with ``unused_`` are skipped: the front-end generates them deliberately
    for unconnected ports.
    """
    cfg = cfg if cfg is not None else build_cfg(function, allow_unbounded=True)
    analysis = Liveness(function, cfg)
    result = run_dataflow(cfg, analysis)
    if not result.converged:  # pragma: no cover - finite lattice, converges
        return []

    local_scalars = {
        d.name
        for d in function.all_decls()
        if d.storage is Storage.LOCAL and not d.is_array
    }
    reachable = cfg.reachable_blocks()
    found: list[tuple[str, int]] = []
    for block in cfg.blocks:
        if block.bid not in reachable:
            continue
        # replay the block backwards from its live-out set, checking each
        # scalar store against liveness immediately after it
        live = set(result.exit[block.bid])
        for cond in block.conditions:
            live |= cond.variables_read()
        header_stmt = cfg.loop_stmts.get(block.bid)
        if isinstance(header_stmt, For):
            live |= header_stmt.lower.variables_read()
            live.add(header_stmt.index.name)
        for stmt in reversed(block.statements):
            if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
                name = stmt.target.name
                if (
                    name in local_scalars
                    and name not in live
                    and not name.startswith("unused_")
                ):
                    found.append((name, block.bid))
                live.discard(name)
            live |= stmt.variables_read()
    return found
