"""Schedule-independent static may-happen-in-parallel pruning.

The system-level fixed point re-derives contender sets from the task
windows on *every* iteration, treating any pair of time-overlapping tasks
on distinct cores as interfering.  Two classes of pairs can be excluded
once, statically, before the iteration starts:

* **Ordered pairs.**  A transitive HTG dependence forces ``finish(u) <=
  start(v)`` in every timeline the builder can produce (edge delays are
  non-negative), so the half-open windows can never overlap.  Excluding
  these pairs cannot change any contender count -- it is a pure speedup.
* **Address-disjoint pairs.**  Tasks whose shared-array footprints
  (:mod:`repro.analysis.footprints`) touch no common element generate no
  interference on an address-sensitive interconnect.  Excluding them can
  only *lower* contender counts, so the pruned bound is never looser than
  the unpruned one -- it models banked/address-aware arbitration, which is
  why pruning is opt-in (``static_pruning``) and the unpruned pass remains
  the differential oracle.

The relation is *schedule-independent*: it uses only the dependence
closure and the footprints, never the candidate timeline, so one relation
serves every fixed-point iteration (and every warm restart) of a design
point.  Same-core pairs are also excluded from the skeleton -- the MHP
passes skip them anyway, so the pruned pair list starts strictly smaller.

Soundness of the ordering argument requires that every dependence the
closure uses is actually enforced by the timeline builder, which drops
edges touching unmapped tasks; the relation therefore falls back to the
closure of the mapped-task-induced subgraph whenever any edge endpoint is
unmapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.footprints import (
    FootprintStore,
    TaskFootprint,
    default_footprint_store,
    footprints_address_disjoint,
)
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.program import Function
from repro.utils.graphs import transitive_closure


@dataclass(frozen=True)
class StaticMhpRelation:
    """Pruned contender skeleton: per task, the sharers that may contend.

    ``allowed[tid]`` lists the cross-core, unordered, non-address-disjoint
    sharers of ``tid`` -- the only tasks any MHP pass needs to test against
    ``tid``'s window.  Every leaf task has an entry (possibly empty).
    """

    allowed: dict[str, tuple[str, ...]]
    candidate_pairs: int
    pruned_same_core: int
    pruned_ordered: int
    pruned_disjoint: int
    kept_pairs: int
    footprints: dict[str, TaskFootprint] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "candidate_pairs": self.candidate_pairs,
            "pruned_same_core": self.pruned_same_core,
            "pruned_ordered": self.pruned_ordered,
            "pruned_disjoint": self.pruned_disjoint,
            "kept_pairs": self.kept_pairs,
        }


def _ordered_pairs(
    htg: HierarchicalTaskGraph, mapping: dict[str, int]
) -> "set[tuple[str, str]] | frozenset[tuple[str, str]]":
    """Dependence closure restricted to orderings the timeline enforces."""
    if all(e.src in mapping and e.dst in mapping for e in htg.edges):
        return htg.dependent_pairs()
    mapped_edges = [
        (e.src, e.dst) for e in htg.edges if e.src in mapping and e.dst in mapping
    ]
    return {
        (str(u), str(v))
        for (u, v) in transitive_closure(set(mapping), mapped_edges)
    }


def compute_static_mhp(
    htg: HierarchicalTaskGraph,
    function: Function,
    mapping: dict[str, int],
    sharers: "list[str] | None" = None,
    store: FootprintStore | None = None,
    use_footprints: bool = True,
) -> StaticMhpRelation:
    """Compute the pruned contender skeleton for one design point.

    ``sharers`` defaults to every mapped leaf task with a non-zero declared
    shared-access count; the system-level analysis passes its code-level
    derivation instead so the two agree exactly.  ``use_footprints=False``
    restricts pruning to the (count-preserving) ordered pairs.
    """
    store = store if store is not None else default_footprint_store()
    leaf_ids = [t.task_id for t in htg.leaf_tasks() if t.task_id in mapping]
    if sharers is None:
        sharers = [
            t.task_id
            for t in htg.leaf_tasks()
            if t.task_id in mapping and t.total_shared_accesses > 0
        ]
    ordered = _ordered_pairs(htg, mapping)
    footprints: dict[str, TaskFootprint] = {}
    if use_footprints:
        for tid in leaf_ids:
            footprints[tid] = store.footprint(function, htg.task(tid))

    allowed: dict[str, tuple[str, ...]] = {}
    candidate = same_core = pruned_ordered = pruned_disjoint = kept = 0
    for tid in leaf_ids:
        keep: list[str] = []
        for other in sorted(sharers):
            if other == tid:
                continue
            candidate += 1
            if mapping[other] == mapping[tid]:
                same_core += 1
                continue
            if (tid, other) in ordered or (other, tid) in ordered:
                pruned_ordered += 1
                continue
            if use_footprints and footprints_address_disjoint(
                footprints[tid], footprints[other]
            ):
                pruned_disjoint += 1
                continue
            keep.append(other)
        kept += len(keep)
        allowed[tid] = tuple(keep)
    return StaticMhpRelation(
        allowed=allowed,
        candidate_pairs=candidate,
        pruned_same_core=same_core,
        pruned_ordered=pruned_ordered,
        pruned_disjoint=pruned_disjoint,
        kept_pairs=kept,
        footprints=footprints,
    )
