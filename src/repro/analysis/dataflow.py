"""Generic worklist dataflow solver over the per-function CFG.

An analysis is described by a :class:`DataflowAnalysis` subclass: direction,
the boundary state at the entry (forward) or exit (backward), the bottom
state for not-yet-reached blocks, a lattice ``join``, a per-block
``transfer`` function and an optional per-edge ``edge_transfer`` (branch
refinement).  :func:`run_dataflow` iterates transfers to a fixed point with
a FIFO worklist; analyses over infinite-height lattices (value ranges)
terminate through ``widen``, which is applied once a block has been
re-entered more than ``widen_after`` times.

States are opaque to the solver; they only need ``==`` (used to detect the
fixed point, overridable through :meth:`DataflowAnalysis.equal`).  ``None``
is a valid state and conventionally means *unreachable* (the analysis's
``join``/``transfer`` must then handle it, as the value-range analysis
does).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.ir.cfg import CFGEdge, BasicBlock, ControlFlowGraph

#: Hard per-block revisit cap: a correct analysis (finite lattice, or a
#: proper ``widen``) converges far below this; hitting it flags the result
#: as non-converged instead of looping forever.
MAX_VISITS_PER_BLOCK = 200


class DataflowAnalysis:
    """Base class describing one dataflow problem to :func:`run_dataflow`."""

    #: "forward" propagates entry -> exit, "backward" exit -> entry.
    direction = "forward"
    #: Number of re-entries of one block after which ``widen`` kicks in.
    widen_after = 3

    def boundary(self, cfg: ControlFlowGraph) -> Any:
        """State at the CFG entry (forward) / exit (backward)."""
        raise NotImplementedError

    def initial(self, cfg: ControlFlowGraph) -> Any:
        """Bottom state assumed for blocks before they are first reached."""
        raise NotImplementedError

    def join(self, states: list[Any]) -> Any:
        """Least upper bound of the incoming states (len >= 1)."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, state: Any) -> Any:
        """State after executing ``block`` starting from ``state``."""
        raise NotImplementedError

    def edge_transfer(self, edge: CFGEdge, state: Any) -> Any:
        """Refine ``state`` along ``edge`` (default: unchanged)."""
        return state

    def widen(self, old: Any, new: Any) -> Any:
        """Accelerate convergence; must eventually stabilise (default: new)."""
        return new

    def equal(self, a: Any, b: Any) -> bool:
        return a == b


@dataclass
class DataflowResult:
    """Fixed point of one analysis: program-order facts per block.

    ``entry[bid]`` is the fact holding *before* the block executes,
    ``exit[bid]`` the fact *after* -- for both directions (a backward
    analysis computes ``entry`` from ``exit``).  Consumers must check
    ``converged`` before trusting the states: a ``False`` flag means the
    visit cap was hit and the states are an unfinished iterate, not a sound
    over-approximation.
    """

    analysis_name: str
    entry: dict[int, Any] = field(default_factory=dict)
    exit: dict[int, Any] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = True


def run_dataflow(cfg: ControlFlowGraph, analysis: DataflowAnalysis) -> DataflowResult:
    """Iterate ``analysis`` over ``cfg`` to a fixed point."""
    if analysis.direction not in ("forward", "backward"):
        raise ValueError(f"unknown dataflow direction {analysis.direction!r}")
    forward = analysis.direction == "forward"
    blocks = cfg.blocks
    start = cfg.entry if forward else cfg.exit

    # "pre" is the state flowing into the transfer function (block entry for
    # forward, block exit for backward); "post" is what the transfer yields.
    pre: dict[int, Any] = {}
    post: dict[int, Any] = {b.bid: analysis.initial(cfg) for b in blocks}

    # Edges feeding a block in analysis order.
    in_edges: dict[int, list[CFGEdge]] = {b.bid: [] for b in blocks}
    out_blocks: dict[int, list[BasicBlock]] = {b.bid: [] for b in blocks}
    for edge in cfg.edges:
        if forward:
            in_edges[edge.dst.bid].append(edge)
            out_blocks[edge.src.bid].append(edge.dst)
        else:
            in_edges[edge.src.bid].append(edge)
            out_blocks[edge.dst.bid].append(edge.src)

    ordered: Iterable[BasicBlock] = blocks if forward else list(reversed(blocks))
    worklist: deque[BasicBlock] = deque(ordered)
    queued = {b.bid for b in blocks}
    visits = {b.bid: 0 for b in blocks}
    iterations = 0
    converged = True

    while worklist:
        block = worklist.popleft()
        queued.discard(block.bid)
        iterations += 1
        visits[block.bid] += 1
        if visits[block.bid] > MAX_VISITS_PER_BLOCK:
            converged = False
            continue

        if block is start:
            merged = analysis.boundary(cfg)
        else:
            incoming = [
                analysis.edge_transfer(
                    e, post[(e.src.bid if forward else e.dst.bid)]
                )
                for e in in_edges[block.bid]
            ]
            merged = analysis.join(incoming) if incoming else analysis.initial(cfg)

        if block.bid in pre and visits[block.bid] > analysis.widen_after:
            merged = analysis.widen(pre[block.bid], merged)
        pre[block.bid] = merged

        new_post = analysis.transfer(block, merged)
        if analysis.equal(post[block.bid], new_post):
            continue
        post[block.bid] = new_post
        for dependent in out_blocks[block.bid]:
            if dependent.bid not in queued:
                queued.add(dependent.bid)
                worklist.append(dependent)

    result = DataflowResult(
        analysis_name=type(analysis).__name__,
        iterations=iterations,
        converged=converged,
    )
    for block in blocks:
        before = pre.get(block.bid, analysis.initial(cfg))
        after = post[block.bid]
        if forward:
            result.entry[block.bid] = before
            result.exit[block.bid] = after
        else:
            result.entry[block.bid] = after
            result.exit[block.bid] = before
    return result
