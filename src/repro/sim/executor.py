"""Execution of an explicit parallel program on the platform model.

The simulation is task-granular and time-compositional, mirroring the
execution model the WCET analysis assumes:

* every core executes its task sequence in order;
* a task starts when its same-core predecessor has finished and every
  cross-core dependence has been signalled (plus the worst-case communication
  latency for the transferred payload);
* a task's duration is computed from its *actual* operation counts and memory
  accesses (obtained by interpreting its IR with the concrete input data)
  priced with the same hardware cost model as the analysis;
* shared-memory accesses are charged the arbitration penalty for the number
  of contending cores the system-level analysis budgeted for that task
  (``contention="static"``, the default, models a platform whose arbiter
  enforces the analysed reservation and guarantees measured <= bound), or the
  concurrency observed during simulation (``contention="dynamic"``).

Because actual counts never exceed worst-case counts and the start rules are
the analysis' rules, the measured makespan is a lower bound on the system
WCET -- the tightness ratio measured by experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.adl.architecture import Platform
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.interpreter import ExecutionStats, Interpreter
from repro.ir.program import Function
from repro.parallel.model import ParallelProgram
from repro.utils.intervals import Interval
from repro.wcet.hardware_model import HardwareCostModel


@dataclass
class SimulationResult:
    """Timing and functional outcome of one simulated execution."""

    makespan: float
    task_intervals: dict[str, Interval]
    task_durations: dict[str, float]
    env: dict[str, Any]
    total_shared_accesses: int
    per_core_busy: dict[int, float]

    def observed_value(self, name: str) -> Any:
        return self.env[name]


def _stats_cost(
    stats: ExecutionStats,
    function: Function,
    model: HardwareCostModel,
) -> tuple[float, int]:
    """Cycles implied by dynamic stats, plus the number of shared accesses."""
    cycles = 0.0
    for op, count in stats.operations.items():
        cycles += model.op_cycles(op) * count
    shared_accesses = 0
    for name, count in stats.array_reads.items():
        cycles += model.read_cycles(function, name) * count
        if model.is_shared(function, name):
            shared_accesses += count
    for name, count in stats.array_writes.items():
        cycles += model.write_cycles(function, name) * count
        if model.is_shared(function, name):
            shared_accesses += count
    return cycles, shared_accesses


def simulate_parallel_program(
    program: ParallelProgram,
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    inputs: Mapping[str, Any] | None = None,
    contention: str = "static",
) -> SimulationResult:
    """Simulate one synchronous step of the parallel program."""
    if contention not in ("static", "dynamic"):
        raise ValueError("contention must be 'static' or 'dynamic'")
    schedule = program.schedule
    mapping = schedule.mapping
    interpreter = Interpreter()
    env = interpreter.initial_environment(function, inputs)

    models = {
        core: HardwareCostModel(platform, core)
        for core in {mapping[tid] for tid in mapping}
    }

    # Execute tasks in dependence-consistent order while computing the
    # timeline; data must be produced before consumers run, so functional
    # execution follows the same order as the timing computation.
    order = schedule.order
    position = {tid: (core, idx) for core, tids in order.items() for idx, tid in enumerate(tids)}
    finish: dict[str, float] = {}
    start: dict[str, float] = {}
    durations: dict[str, float] = {}
    stats_by_task: dict[str, ExecutionStats] = {}
    shared_by_task: dict[str, int] = {}
    pending = {t.task_id for t in htg.leaf_tasks()}
    comm_contenders = max(0, platform.num_cores - 1)
    total_shared = 0

    analysed_contenders = schedule.result.task_contenders if schedule.result else {}

    guard = 0
    while pending:
        guard += 1
        if guard > len(position) ** 2 + 10:
            raise RuntimeError("simulation could not make progress; inconsistent schedule")
        for tid in sorted(pending, key=lambda t: (position[t][0], position[t][1])):
            core, idx = position[tid]
            preds = htg.predecessors(tid)
            if any(p in pending for p in preds):
                continue
            if idx > 0 and order[core][idx - 1] in pending:
                continue
            # functional execution with dynamic accounting
            stats = interpreter.run_statements(htg.task(tid).statements, env)
            stats_by_task[tid] = stats
            base_cycles, shared_accesses = _stats_cost(stats, function, models[core])
            shared_by_task[tid] = shared_accesses
            total_shared += shared_accesses

            ready_core = finish[order[core][idx - 1]] if idx > 0 else 0.0
            ready_deps = 0.0
            for p in preds:
                delay = 0.0
                if mapping[p] != core:
                    edge = htg.edge(p, tid)
                    payload = edge.payload_bytes if edge else 0
                    if payload:
                        delay = platform.communication_latency(payload, mapping[p], core, comm_contenders)
                ready_deps = max(ready_deps, finish[p] + delay)
            task_start = max(ready_core, ready_deps)

            if contention == "static":
                contenders = analysed_contenders.get(tid, 0)
            else:
                window = Interval(task_start, task_start + max(base_cycles, 1e-9))
                contenders = len(
                    {
                        mapping[other]
                        for other, iv in zip(start.keys(), (Interval(start[o], finish[o]) for o in start))
                        if mapping[other] != core and iv.overlaps(window) and shared_by_task.get(other, 0) > 0
                    }
                )
            duration = base_cycles + shared_accesses * models[core].shared_access_penalty(contenders)
            start[tid] = task_start
            finish[tid] = task_start + duration
            durations[tid] = duration
            pending.discard(tid)
            break
        else:
            continue

    intervals = {tid: Interval(start[tid], finish[tid]) for tid in start}
    makespan = max((iv.end for iv in intervals.values()), default=0.0)
    per_core_busy: dict[int, float] = {}
    for tid, duration in durations.items():
        per_core_busy[mapping[tid]] = per_core_busy.get(mapping[tid], 0.0) + duration
    return SimulationResult(
        makespan=makespan,
        task_intervals=intervals,
        task_durations=durations,
        env=env,
        total_shared_accesses=total_shared,
        per_core_busy=per_core_busy,
    )
