"""Discrete-event multi-core timing simulator.

The simulator executes an explicit parallel program on the ADL platform model
with *actual* (input-dependent) operation counts and memory accesses, using
the same component cost models as the WCET analysis.  It is the stand-in for
the FPGA prototypes of the real ARGO project and is used to validate that the
computed WCET bounds are never exceeded (experiment E6) and to measure the
worst-case-to-observed gap.
"""

from repro.sim.executor import SimulationResult, simulate_parallel_program

__all__ = ["SimulationResult", "simulate_parallel_program"]
