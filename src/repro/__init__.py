"""repro -- reproduction of the ARGO WCET-aware parallelization tool chain.

The ARGO approach (Derrien et al., DATE 2017) combines model-based design,
automatic parallelization and multi-core WCET analysis in a single flow.  This
package implements every stage of that flow:

* :mod:`repro.model` -- Xcos-like dataflow modelling with a mini-Scilab
  behaviour language (Section II-A of the paper).
* :mod:`repro.adl` -- Architecture Description Language and predictable
  multi-core platform presets (Sections II-A, III-B, IV-C).
* :mod:`repro.ir` -- C-subset intermediate representation (Section II-B).
* :mod:`repro.frontend` -- compilation of dataflow models to the IR.
* :mod:`repro.transforms` -- predictability-enhancing source-to-source
  transformations (Sections II-B, III-C).
* :mod:`repro.htg` -- Hierarchical Task Graph extraction (Section II-B).
* :mod:`repro.scheduling` -- WCET-aware scheduling and mapping (Section II-B).
* :mod:`repro.parallel` -- explicit parallel program model (Section II-C).
* :mod:`repro.wcet` -- code-level and system-level WCET analysis
  (Section II-D).
* :mod:`repro.sim` -- discrete-event multi-core timing simulator used to
  validate WCET bounds.
* :mod:`repro.core` -- the end-to-end tool chain with iterative cross-layer
  feedback (Section II-E, Fig. 1).
* :mod:`repro.usecases` -- the EGPWS, WEAA and POLKA use cases (Section IV).
"""

from repro._version import __version__

__all__ = ["__version__"]
