"""Code-level and system-level WCET analysis (paper Section II-D).

* :mod:`repro.wcet.hardware_model` turns the ADL description into per-access
  and per-operation worst-case costs.
* :mod:`repro.wcet.code_level` computes the isolated (contention-free) WCET of
  IR fragments / HTG tasks, either structurally or through the IPET
  longest-path formulation of :mod:`repro.wcet.ipet`.
* :mod:`repro.wcet.system_level` adds shared-resource interference based on a
  may-happen-in-parallel analysis of the scheduled parallel program and the
  platform's interconnect cost model, iterated to a fixed point.
"""

from repro.wcet.hardware_model import HardwareCostModel
from repro.wcet.code_level import analyze_function_wcet, analyze_task_wcet, annotate_htg_wcets
from repro.wcet.ipet import ipet_wcet
from repro.wcet.system_level import SystemWcetResult, system_level_wcet

__all__ = [
    "HardwareCostModel",
    "analyze_function_wcet",
    "analyze_task_wcet",
    "annotate_htg_wcets",
    "ipet_wcet",
    "SystemWcetResult",
    "system_level_wcet",
]
