"""Code-level and system-level WCET analysis (paper Section II-D).

* :mod:`repro.wcet.hardware_model` turns the ADL description into per-access
  and per-operation worst-case costs.
* :mod:`repro.wcet.code_level` computes the isolated (contention-free) WCET of
  IR fragments / HTG tasks, either structurally or through the IPET
  longest-path formulation of :mod:`repro.wcet.ipet`.
* :mod:`repro.wcet.system_level` adds shared-resource interference based on a
  may-happen-in-parallel analysis of the scheduled parallel program and the
  platform's interconnect cost model, iterated to a fixed point (vectorised
  via ``numpy.searchsorted`` on large graphs, bit-for-bit identical to the
  scalar reference pass).
* :mod:`repro.wcet.cache` memoizes code-level results so the schedulers, the
  system-level fixed point and the cross-layer feedback loop analyse each
  distinct (code region, core cost signature) pair exactly once --
  per process, or across processes when the cache is disk-backed.

Cache-invalidation contract
---------------------------
:class:`~repro.wcet.cache.WcetAnalysisCache` entries are **content
addressed** (function + region fingerprints, hardware *cost signature*,
average/worst flag), so a cache can safely be shared across schedulers,
analyses, toolchain runs, feedback iterations and -- when disk-backed --
across processes: changed IR or a different platform simply produces
different keys, and unchanged IR hits the cache.  The cost signature is
derived from the numbers the code-level analysis can observe (operation cost
table, branch/loop overheads, scratchpad and uncontended shared-memory
latencies, storage overrides), never from object identities, so identical
cores share entries even on heterogeneous platforms and across platform
rebuilds.  Only two situations require explicit action from callers:

* **IR transforms that mutate a function in place** (e.g. running a
  ``PassManager`` after code has already been analysed) must be followed by
  ``cache.invalidate_function(function)``, which drops the memoized
  object-identity fingerprints so they are recomputed from the new contents.
  The toolchain runs all transforms *before* the first analysis and the
  feedback loop recompiles the model per candidate (fresh objects), so
  neither needs this.
* **Platform, processor or cost-model objects mutated in place** require
  ``cache.clear()`` -- their cost signatures are memoized per object.  The
  supported style is to build fresh objects instead, which needs no
  invalidation at all.

:meth:`~repro.wcet.cache.WcetAnalysisCache.invalidate_fingerprints` is the
single dispatching entry point for both rules: hand it whatever was mutated
in place -- a ``Function``, a statement ``Block``, a ``Task``, a whole
``HierarchicalTaskGraph`` or a ``HardwareCostModel`` -- and every memoized
fingerprint/cost signature derived from that object is forgotten (content
addressing keeps the *entries* valid; only the identity-keyed memos can go
stale).  Mutating a fingerprinted object without calling it is undefined
behaviour.  The incremental re-analysis engine
(:meth:`repro.core.pipeline.Pipeline.run_incremental`) and the edit-script
generators in :mod:`repro.usecases.workloads` rely on this API.

Since schema **v3**, code-level entry keys embed the function's
*declaration-table* fingerprint (name, type, storage class of every
param/decl) instead of the whole-function fingerprint: a region's WCET
reads the enclosing function only through that table, so editing one
region leaves every other region's entry addressable -- the property the
incremental engine's ≥5x single-edit win rests on.  The
:data:`~repro.wcet.cache.CACHE_SCHEMA_VERSION` bump (2 → 3) retires the
old whole-function-keyed on-disk entries by the ordinary versioning rule.

System-level / result tiers
---------------------------
The same contract extends to the **system-level result tier**
(:class:`~repro.wcet.cache.SystemResultCache`, reached through
``cache.system_results`` and consulted by
:func:`~repro.wcet.system_level.system_level_wcet`): result keys embed the
function/region fingerprints, the mapping and per-core order, the per-core
cost signatures, the shared-access penalty tables, the priced worst-case
edge delays and the fixed-point knobs (``max_iterations``, core count), so
entries can never go stale and need no invalidation either.  The two
caller-cooperation rules above apply unchanged (the fingerprints and cost
signatures are the same memos); additionally:

* ``mhp_backend`` is **not** part of a result key -- the scalar and
  vectorised MHP passes are bit-for-bit identical, so their results are
  interchangeable.  Code that must *re-run* the fixed point (differential
  tests, backend timing) passes ``result_cache=False``.
* The pipeline's per-stage artifact cache
  (:class:`repro.core.pipeline.StageArtifactCache`) follows the same rule:
  a stage may only be cached under a key that covers the *content* of every
  input (IR fingerprints, HTG structure,
  :func:`~repro.wcet.cache.platform_signature`, the full config); stages
  whose inputs cannot be fingerprinted must return ``None`` and stay
  uncached.

On-disk format and versioning
-----------------------------
A disk-backed cache (``WcetAnalysisCache.open(dir)`` /
``cache.load(dir)`` / ``cache.flush()``, or the process-wide
:func:`~repro.wcet.cache.shared_cache` with the ``REPRO_WCET_CACHE_DIR``
environment variable) persists entries under a **version-stamped**
subdirectory ``<dir>/v<CACHE_SCHEMA_VERSION>/``:

* ``entries-<pid>-<token>.jsonl`` shards hold one JSON object per entry:
  the content key plus the five
  :class:`~repro.wcet.code_level.WcetBreakdown` fields.  Every cache
  instance owns exactly one shard and rewrites it atomically on flush
  (tempfile + ``os.replace``), so concurrent flushes -- e.g. the worker
  processes of ``repro.core.sweep.sweep`` -- can never corrupt the
  directory.  ``load`` merges every ``entries*.jsonl`` file (including a
  legacy append-only ``entries.jsonl``); duplicate keys across shards are
  harmless (the key fully determines the value) and malformed lines are
  skipped.  Because keys are content addressed, on-disk entries can never
  go stale and need no invalidation, ever.
* ``stats-<pid>-<token>.jsonl`` shards accumulate one hit/disk-hit/miss
  delta record per flush (single writer, append-only);
  :func:`~repro.wcet.cache.read_cache_dir_stats` aggregates all
  ``stats*.jsonl`` files across processes (``benchmarks/run_all.py
  --cache-dir`` reports them in its ``BENCH_*.json`` records).
* the system-level tier persists ``sys-entries-*.jsonl`` /
  ``sys-stats-*.jsonl`` shards to the *same* version directory under the
  same atomicity rules; one entry is a whole serialized
  :class:`~repro.wcet.cache.SystemResultCache` record (the fixed-point
  outcome), and its stats ``misses`` count the fixed points actually run.

**Eviction:** shared directories are bounded, not pruned by staleness
(nothing ever goes stale): :meth:`~repro.wcet.cache.WcetAnalysisCache.evict`
-- exposed as ``python -m repro cache evict`` and
``benchmarks/run_all.py --cache-evict-*`` -- compacts the current schema
version's shards down to entry-count / byte / age bounds, keeping entries
used by the running process first.  Other schema versions are never
touched.

**Versioning rule:** bump
:data:`~repro.wcet.cache.CACHE_SCHEMA_VERSION` whenever the *meaning* of a
cached number can change -- the code-level cost semantics, the C-printer
rendering behind the fingerprints, the cost-signature composition, the
``WcetBreakdown`` fields, or the system-level result record.  Old versions
are simply ignored (each lives in its own ``v<N>`` directory); never
reinterpret them in place.

Certification contract (proof-carrying results)
-----------------------------------------------
Two producers in this package emit witnesses for the independent checkers
of :mod:`repro.analysis.certify`:

* :func:`~repro.wcet.ipet.ipet_wcet` keeps its full LP solution on the
  :class:`~repro.wcet.ipet.IpetResult` -- primal edge counts, block costs,
  effective loop bounds, pinned infeasible edges and, when the solver
  exposes marginals, *semantic* dual values (keyed by block id, never by
  matrix row order).  The checker re-verifies feasibility against a
  freshly rebuilt CFG and, with duals, optimality (reduced costs + zero
  duality gap).  It does **not** re-derive the per-block cycle costs; those
  remain the hardware model's ground truth.
* :func:`~repro.wcet.system_level.system_level_wcet` carries the
  per-task isolated WCETs and shared-access counts on the
  :class:`~repro.wcet.system_level.SystemWcetResult` so the fixed-point
  checker can re-apply the interference equations once to the reported
  state: a valid post-fixed-point cannot increase.  The base WCETs
  themselves are the code-level analysis' contract, not re-proved.

Content addressing makes cache entries immune to *staleness*, but not to
*corruption* (bit rot, hand edits, a writer bug).  ``certify=True``
closes that gap: a memoized system-level result served from the result
tier is re-validated by the fixed-point checker before being returned and
a refuted entry raises
:class:`~repro.analysis.certify.CertificationError` instead of being
silently trusted.  Freshly computed results are not re-checked on this
path -- the pipeline's ``certify`` stage (``ToolchainConfig.certify``)
covers them.

Warm-started fixed points follow the same discipline:
:func:`~repro.wcet.system_level.warm_start_hint` (used by the incremental
pipeline around the schedule stage) seeds the interference iteration from
a previous converged result, and the warm-seeded outcome is returned only
after the independent fixed-point checker accepts it -- otherwise the
cold iteration runs.  Warm results are never stored in the result tier,
which must only ever serve the cold answer.
"""

from repro.wcet.hardware_model import HardwareCostModel
from repro.wcet.cache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    SystemResultCache,
    WcetAnalysisCache,
    platform_signature,
    read_cache_dir_stats,
    reset_shared_cache,
    shared_cache,
)
from repro.wcet.code_level import analyze_function_wcet, analyze_task_wcet, annotate_htg_wcets
from repro.wcet.ipet import ipet_wcet
from repro.wcet.system_level import (
    SystemWcetResult,
    contention_oblivious_bound,
    system_level_wcet,
    warm_start_hint,
)

__all__ = [
    "HardwareCostModel",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "SystemResultCache",
    "WcetAnalysisCache",
    "platform_signature",
    "read_cache_dir_stats",
    "reset_shared_cache",
    "shared_cache",
    "analyze_function_wcet",
    "analyze_task_wcet",
    "annotate_htg_wcets",
    "ipet_wcet",
    "SystemWcetResult",
    "contention_oblivious_bound",
    "system_level_wcet",
    "warm_start_hint",
]
