"""Code-level and system-level WCET analysis (paper Section II-D).

* :mod:`repro.wcet.hardware_model` turns the ADL description into per-access
  and per-operation worst-case costs.
* :mod:`repro.wcet.code_level` computes the isolated (contention-free) WCET of
  IR fragments / HTG tasks, either structurally or through the IPET
  longest-path formulation of :mod:`repro.wcet.ipet`.
* :mod:`repro.wcet.system_level` adds shared-resource interference based on a
  may-happen-in-parallel analysis of the scheduled parallel program and the
  platform's interconnect cost model, iterated to a fixed point.
* :mod:`repro.wcet.cache` memoizes code-level results so the schedulers, the
  system-level fixed point and the cross-layer feedback loop analyse each
  distinct (code region, core cost signature) pair exactly once.

Cache-invalidation contract
---------------------------
:class:`~repro.wcet.cache.WcetAnalysisCache` entries are **content
addressed** (function + region fingerprints, hardware cost signature,
average/worst flag), so a cache can safely be shared across schedulers,
analyses, toolchain runs and feedback iterations: changed IR or a different
platform simply produces different keys, and unchanged IR hits the cache.
Only two situations require explicit action from callers:

* **IR transforms that mutate a function in place** (e.g. running a
  ``PassManager`` after code has already been analysed) must be followed by
  ``cache.invalidate_function(function)``, which drops the memoized
  object-identity fingerprints so they are recomputed from the new contents.
  The toolchain runs all transforms *before* the first analysis and the
  feedback loop recompiles the model per candidate (fresh objects), so
  neither needs this.
* **Platform or processor objects mutated in place** require
  ``cache.clear()`` -- their identity is part of the cost signature.  The
  supported style is to build a fresh :class:`~repro.adl.architecture.Platform`
  instead, which needs no invalidation at all.
"""

from repro.wcet.hardware_model import HardwareCostModel
from repro.wcet.cache import CacheStats, WcetAnalysisCache
from repro.wcet.code_level import analyze_function_wcet, analyze_task_wcet, annotate_htg_wcets
from repro.wcet.ipet import ipet_wcet
from repro.wcet.system_level import SystemWcetResult, system_level_wcet

__all__ = [
    "HardwareCostModel",
    "CacheStats",
    "WcetAnalysisCache",
    "analyze_function_wcet",
    "analyze_task_wcet",
    "annotate_htg_wcets",
    "ipet_wcet",
    "SystemWcetResult",
    "system_level_wcet",
]
