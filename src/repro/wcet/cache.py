"""Memoized code-level WCET analysis shared across the whole flow.

Every layer of the ARGO flow re-derives the same isolated task WCETs: the
list scheduler analyses each (task, candidate core) pair during placement,
the system-level fixed point re-analyses the mapped tasks, and the
metaheuristic / branch-and-bound mappers re-evaluate thousands of complete
mappings.  :class:`WcetAnalysisCache` memoizes those code-level results so
each distinct analysis is performed exactly once per process -- and, when the
cache is disk-backed, exactly once across *all* processes sharing one cache
directory.

Cache keys are **content addressed**: an entry is keyed by

* the fingerprint of the enclosing function (declarations with their storage
  classes plus the whole body, rendered through the C printer),
* the fingerprint of the analysed statement region (a task's statements or
  the function body),
* the *cost signature* of the hardware model -- the processor's operation
  cost table, branch and loop overheads, the core's scratchpad latencies,
  the platform's uncontended shared-memory latencies and any storage
  overrides, and
* the average/worst-case flag.

The cost signature is derived purely from the numbers that determine
code-level costs, never from object identities.  Any two cores with the same
cost parameters therefore share entries: all cores of a homogeneous
platform, identical-type cores of a heterogeneous platform (even when their
:class:`~repro.adl.processor.ProcessorModel` objects are distinct), and the
"same" core rebuilt in a different process against a fresh ``Platform``.

Because entries are content addressed they can never go stale: changing the
IR or analysing a different platform simply produces different keys.

Disk persistence
----------------
A cache becomes disk-backed through :meth:`WcetAnalysisCache.load` (or the
:meth:`WcetAnalysisCache.open` constructor).  Entries live under a
version-stamped subdirectory, ``<cache_dir>/v<CACHE_SCHEMA_VERSION>/``:

* ``entries-<pid>-<token>.jsonl`` -- one *shard* per cache instance: one
  JSON object per line, ``{"key": <content key>, "total": .., "compute": ..,
  "memory": .., "control": .., "shared_accesses": ..}``.  Every instance
  writes only its own shard, and each :meth:`flush` rewrites that shard
  atomically (tempfile + ``os.replace``), so any number of processes -- e.g.
  the workers of a :func:`repro.core.sweep.sweep` -- can flush to the same
  directory concurrently without corrupting it.  :meth:`load` merges every
  ``entries*.jsonl`` file (including the legacy single ``entries.jsonl``
  written by older versions); duplicate keys across shards are harmless (the
  content key fully determines the value) and malformed lines are skipped.
* ``stats-<pid>-<token>.jsonl`` -- one JSON object per :meth:`flush`,
  recording the hit/disk-hit/miss deltas of the flushing instance
  (single-writer, append-only).  Aggregated together with any legacy
  ``stats.jsonl`` by :func:`read_cache_dir_stats` so drivers like
  ``benchmarks/run_all.py`` can report cache effectiveness across
  subprocesses.

:meth:`flush` persists every entry not yet on disk and is cheap when there
is nothing new.  Other schema versions in the same directory are ignored, so
bumping :data:`CACHE_SCHEMA_VERSION` (see the invalidation contract in
:mod:`repro.wcet`) invalidates old on-disk entries without deleting them.

:func:`shared_cache` returns the process-wide cache every toolchain,
scheduler and mapper uses by default.  When the ``REPRO_WCET_CACHE_DIR``
environment variable is set, the shared cache is disk-backed at that
directory and flushed automatically at interpreter exit.

Invalidation contract
---------------------
The only mutable state is the set of *memos* mapping live ``Function`` /
statement / model objects (by identity) to their fingerprints and cost
signatures, which avoids re-rendering the IR and re-digesting cost tables on
every query.  Situations requiring cooperation from the caller:

1. **In-place IR mutation.**  If a function (or a task's statement block) is
   mutated after it has been analysed -- e.g. by running an IR transform --
   call :meth:`WcetAnalysisCache.invalidate_function` so the memoized
   fingerprint is recomputed.  The toolchain runs all transforms *before*
   the first analysis, so it never needs to do this.
2. **In-place platform / processor / cost-model mutation.**  Platform,
   processor and :class:`~repro.wcet.hardware_model.HardwareCostModel`
   objects are treated as immutable (their cost signature is memoized per
   object).  Mutating one in place requires
   :meth:`WcetAnalysisCache.clear` (or simply building fresh objects, which
   is the supported style and needs no invalidation at all).

Everything else -- new functions, new platforms, new storage overrides,
feedback iterations that recompile the model -- is handled transparently:
unchanged IR hits the cache, changed IR misses it.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import tempfile
import uuid
import weakref
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.htg.graph import HierarchicalTaskGraph
from repro.htg.task import Task
from repro.ir.printer import function_to_c, to_c
from repro.ir.program import Function
from repro.ir.statements import Block
from repro.wcet.code_level import WcetBreakdown, statement_wcet
from repro.wcet.hardware_model import HardwareCostModel

#: Version of the on-disk entry format *and* of the cost-model semantics the
#: cached numbers were produced under.  Bump it whenever the code-level
#: analysis, the printer rendering used for fingerprints, or the meaning of a
#: :class:`WcetBreakdown` field changes; old versions are simply ignored on
#: disk (each lives in its own ``v<N>`` subdirectory).
CACHE_SCHEMA_VERSION = 1

#: Environment variable naming the cache directory of the process-wide
#: shared cache (see :func:`shared_cache`).
CACHE_DIR_ENV_VAR = "REPRO_WCET_CACHE_DIR"

_ENTRY_FIELDS = ("total", "compute", "memory", "control", "shared_accesses")


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`WcetAnalysisCache`.

    ``hits`` counts lookups served by entries computed in this process,
    ``disk_hits`` lookups served by entries loaded from a cache directory,
    and ``misses`` actual code-level re-analyses.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return (self.hits + self.disk_hits) / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.hits} hits + {self.disk_hits} disk hits / "
            f"{self.misses} misses ({self.hit_rate:.1%})"
        )


def _digest(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


@dataclass
class WcetAnalysisCache:
    """Shared memo of code-level WCET analyses (see module docstring)."""

    stats: CacheStats = field(default_factory=CacheStats)
    #: content-key -> analysed breakdown (never stale; see module docstring)
    _entries: dict[str, WcetBreakdown] = field(default_factory=dict, repr=False)
    #: id(Function) -> fingerprint (dropped via weakref.finalize on GC)
    _function_fps: dict[int, str] = field(default_factory=dict, repr=False)
    #: id(Block) -> fingerprint
    _region_fps: dict[int, str] = field(default_factory=dict, repr=False)
    #: id(HardwareCostModel) -> (signature tuple, digest)
    _model_sigs: dict[int, tuple[tuple, str]] = field(default_factory=dict, repr=False)
    #: objects that could not be weakref'd, pinned so their ids stay valid
    _pins: list = field(default_factory=list, repr=False)
    #: keys of entries loaded from disk (they count as ``disk_hits``)
    _loaded: set[str] = field(default_factory=set, repr=False)
    #: keys already present in any on-disk shard (loaded or flushed)
    _persisted: set[str] = field(default_factory=set, repr=False)
    #: full content of this instance's own shard file (survives clear();
    #: rewritten wholesale on every flush so the replace is atomic)
    _own_entries: dict[str, WcetBreakdown] = field(default_factory=dict, repr=False)
    #: per-instance token making the shard file name unique even when two
    #: caches in one process share a directory
    _shard_token: str = field(default_factory=lambda: uuid.uuid4().hex[:8], repr=False)
    #: stats snapshot at the last flush, for per-flush delta records
    _flushed_stats: tuple[int, int, int] = field(default=(0, 0, 0), repr=False)
    _cache_dir: Path | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # content addressing
    # ------------------------------------------------------------------ #
    def _remember(self, memo: dict, obj, value):
        """Memoize ``value`` under ``id(obj)`` without leaking the object.

        A finalizer drops the memo entry when the object is collected (at
        which point its id may be reused); objects that do not support weak
        references are pinned instead so their ids stay valid.
        """
        memo[id(obj)] = value
        try:
            weakref.finalize(obj, memo.pop, id(obj), None)
        except TypeError:  # pragma: no cover - all memoized types are weakref-able
            self._pins.append(obj)
        return value

    def _function_fingerprint(self, function: Function) -> str:
        cached = self._function_fps.get(id(function))
        if cached is None:
            cached = self._remember(
                self._function_fps, function, _digest(function_to_c(function))
            )
        return cached

    def _region_fingerprint(self, region: Block) -> str:
        cached = self._region_fps.get(id(region))
        if cached is None:
            cached = self._remember(self._region_fps, region, _digest(to_c(region)))
        return cached

    def model_signature(self, model: HardwareCostModel) -> tuple:
        """Cost-relevant identity of a hardware model, by *content*.

        Collects every number the code-level analysis can observe through the
        model: the processor's operation cost table and control overheads,
        the core's scratchpad latencies, the platform's uncontended
        shared-memory latencies and the storage overrides.  Identical cores
        therefore share entries regardless of object identity, platform
        instance or process -- which is what makes heterogeneous platforms
        with repeated core types, and disk-backed sharing, work.
        """
        return self._model_signature(model)[0]

    def _model_signature(self, model: HardwareCostModel) -> tuple[tuple, str]:
        cached = self._model_sigs.get(id(model))
        if cached is None:
            platform = model.platform
            core = platform.core(model.core_id)
            proc = core.processor
            override = tuple(
                sorted((name, storage.name) for name, storage in model.storage_override.items())
            )
            signature = (
                tuple(sorted((op, float(c)) for op, c in proc.op_cycles.items())),
                float(proc.branch_cycles),
                float(proc.loop_overhead_cycles),
                float(core.scratchpad.read_latency),
                float(core.scratchpad.write_latency),
                float(platform.shared_read_latency(0)),
                float(platform.shared_write_latency(0)),
                override,
            )
            digest = _digest(json.dumps(signature, separators=(",", ":")))
            cached = self._remember(self._model_sigs, model, (signature, digest))
        return cached

    def entry_key(
        self,
        region: Block,
        function: Function,
        model: HardwareCostModel,
        average: bool = False,
    ) -> str:
        """The stable content key of one analysis (also the on-disk key)."""
        return "|".join(
            (
                self._function_fingerprint(function),
                self._region_fingerprint(region),
                self._model_signature(model)[1],
                "avg" if average else "wc",
            )
        )

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def region_wcet(
        self,
        region: Block,
        function: Function,
        model: HardwareCostModel,
        average: bool = False,
    ) -> WcetBreakdown:
        """Memoized :func:`~repro.wcet.code_level.statement_wcet` of a region."""
        key = self.entry_key(region, function, model, average)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            entry = statement_wcet(region, function, model, average)
            self._entries[key] = entry
        elif key in self._loaded:
            self.stats.disk_hits += 1
        else:
            self.stats.hits += 1
        # hand out a copy so callers can never corrupt the cached entry
        return replace(entry)

    def task_wcet(
        self,
        task: Task,
        function: Function,
        model: HardwareCostModel,
        average: bool = False,
    ) -> WcetBreakdown:
        """Memoized isolated WCET of one HTG task."""
        return self.region_wcet(task.statements, function, model, average)

    def function_wcet(
        self, function: Function, model: HardwareCostModel, average: bool = False
    ) -> WcetBreakdown:
        """Memoized isolated WCET of a whole function body."""
        return self.region_wcet(function.body, function, model, average)

    def annotate_htg(
        self,
        htg: HierarchicalTaskGraph,
        function: Function,
        model: HardwareCostModel,
        acet_model: HardwareCostModel | None = None,
    ) -> None:
        """Cached counterpart of :func:`~repro.wcet.code_level.annotate_htg_wcets`."""
        for task in htg.tasks.values():
            if task.is_synthetic:
                task.wcet = 0.0
                task.acet = 0.0
                continue
            task.wcet = self.task_wcet(task, function, model).total
            acet = self.task_wcet(task, function, acet_model or model, average=True).total
            task.acet = min(acet, task.wcet)

    # ------------------------------------------------------------------ #
    # disk persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, cache_dir: str | Path) -> "WcetAnalysisCache":
        """A fresh cache pre-loaded from (and flushing to) ``cache_dir``."""
        cache = cls()
        cache.load(cache_dir)
        return cache

    @property
    def cache_dir(self) -> Path | None:
        """The backing directory, or ``None`` for a memory-only cache."""
        return self._cache_dir

    def _version_dir(self) -> Path:
        assert self._cache_dir is not None
        return self._cache_dir / f"v{CACHE_SCHEMA_VERSION}"

    def _shard_path(self, vdir: Path, kind: str) -> Path:
        # The pid is resolved at write time, not at construction: a cache
        # instance inherited through fork() then gets its own shard file in
        # the child process instead of racing the parent for one.
        return vdir / f"{kind}-{os.getpid()}-{self._shard_token}.jsonl"

    def load(self, cache_dir: str | Path) -> int:
        """Attach the cache to ``cache_dir`` and pull in its entries.

        Creates the version-stamped subdirectory if needed, merges every
        well-formed line of every ``entries*.jsonl`` shard (duplicates and
        torn lines are skipped) and returns the number of entries added.
        Entries from other schema versions are ignored.

        Re-attaching to a *different* directory forgets what was persisted
        where: every in-memory entry becomes flushable to the new directory
        (so switching directories cannot silently drop entries).
        """
        cache_dir = Path(cache_dir)
        if self._cache_dir is not None and cache_dir != self._cache_dir:
            self._persisted.clear()
            self._loaded.clear()
            self._own_entries.clear()
        self._cache_dir = cache_dir
        vdir = self._version_dir()
        vdir.mkdir(parents=True, exist_ok=True)
        loaded = 0
        for entries_path in sorted(vdir.glob("entries*.jsonl")):
            for line in entries_path.read_text(encoding="utf-8").splitlines():
                try:
                    record = json.loads(line)
                    key = record["key"]
                    entry = WcetBreakdown(
                        total=float(record["total"]),
                        compute=float(record["compute"]),
                        memory=float(record["memory"]),
                        control=float(record["control"]),
                        shared_accesses=int(record["shared_accesses"]),
                    )
                except (ValueError, KeyError, TypeError):
                    continue  # torn line or foreign content: skip, never fail
                self._persisted.add(key)
                if key not in self._entries:
                    self._entries[key] = entry
                    self._loaded.add(key)
                    loaded += 1
        return loaded

    def flush(self) -> int:
        """Persist every not-yet-persisted entry to this instance's shard.

        Returns the number of new entries written (0 for a memory-only
        cache, so it is always safe to call).  The shard file is rewritten
        through a tempfile and ``os.replace``, so a concurrent reader never
        sees a torn file and concurrent flushes from other processes (which
        own different shards) cannot interleave.  Also appends one hit/miss
        delta record to this instance's stats shard so cache effectiveness
        can be aggregated across processes by :func:`read_cache_dir_stats`.
        """
        if self._cache_dir is None:
            return 0
        fresh = {
            key: entry for key, entry in self._entries.items() if key not in self._persisted
        }
        snapshot = (self.stats.hits, self.stats.disk_hits, self.stats.misses)
        if not fresh and snapshot == self._flushed_stats:
            return 0  # nothing to record: do not even touch the directory
        vdir = self._version_dir()
        vdir.mkdir(parents=True, exist_ok=True)
        if fresh:
            self._own_entries.update(fresh)
            lines = [
                json.dumps(
                    {"key": key, **{f: getattr(entry, f) for f in _ENTRY_FIELDS}},
                    separators=(",", ":"),
                )
                for key, entry in self._own_entries.items()
            ]
            fd, tmp_name = tempfile.mkstemp(dir=vdir, prefix=".entries-", suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write("\n".join(lines) + "\n")
                os.replace(tmp_name, self._shard_path(vdir, "entries"))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
                raise
            self._persisted.update(fresh)
        delta = tuple(now - then for now, then in zip(snapshot, self._flushed_stats))
        if fresh or any(delta):
            record = {
                "pid": os.getpid(),
                "hits": delta[0],
                "disk_hits": delta[1],
                "misses": delta[2],
                "flushed": len(fresh),
            }
            # single writer per shard: a plain append is safe here
            with self._shard_path(vdir, "stats").open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._flushed_stats = snapshot
        return len(fresh)

    # ------------------------------------------------------------------ #
    def invalidate_function(self, function: Function) -> None:
        """Forget memoized fingerprints after an in-place IR mutation.

        Content-addressed entries themselves stay valid (the mutated IR will
        simply produce new keys); only the identity -> fingerprint memos must
        be dropped so they are recomputed from the new contents.
        """
        self._function_fps.pop(id(function), None)
        self._region_fps.pop(id(function.body), None)
        for stmt in function.body.walk():
            if isinstance(stmt, Block):
                self._region_fps.pop(id(stmt), None)

    def clear(self) -> None:
        """Drop every in-memory entry and memo (stats are kept).

        On-disk entries are *not* deleted: the backing directory stays
        attached and can be re-read with :meth:`load`, and already-persisted
        keys are remembered so a later :meth:`flush` does not duplicate them.
        """
        self._entries.clear()
        self._function_fps.clear()
        self._region_fps.clear()
        self._model_sigs.clear()
        self._pins.clear()
        self._loaded.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        """An empty cache is still a cache (``len`` would make it falsy)."""
        return True


def read_cache_dir_stats(cache_dir: str | Path, count_entries: bool = True) -> dict:
    """Aggregate the stats records of a cache directory.

    Sums every record of every ``stats*.jsonl`` shard (one record per flush,
    across all processes) and, with ``count_entries``, also counts the
    distinct persisted entries (a full scan of every ``entries*.jsonl``
    shard -- pass ``False`` when diffing snapshots in a loop).  Returns
    zeros for a missing or empty directory, so callers can diff
    before/after snapshots without special cases.
    """
    totals = {"hits": 0, "disk_hits": 0, "misses": 0, "flushed": 0, "entries": 0}
    vdir = Path(cache_dir) / f"v{CACHE_SCHEMA_VERSION}"
    if not vdir.is_dir():
        return totals
    for stats_path in sorted(vdir.glob("stats*.jsonl")):
        for line in stats_path.read_text(encoding="utf-8").splitlines():
            try:
                record = json.loads(line)
                for key in ("hits", "disk_hits", "misses", "flushed"):
                    totals[key] += int(record.get(key, 0))
            except (ValueError, TypeError):
                continue
    if count_entries:
        keys = set()
        for entries_path in sorted(vdir.glob("entries*.jsonl")):
            for line in entries_path.read_text(encoding="utf-8").splitlines():
                try:
                    keys.add(json.loads(line)["key"])
                except (ValueError, KeyError, TypeError):
                    continue
        totals["entries"] = len(keys)
    return totals


# ---------------------------------------------------------------------- #
# the process-wide shared cache
# ---------------------------------------------------------------------- #
_shared: WcetAnalysisCache | None = None
_atexit_registered = False


def _flush_shared_at_exit() -> None:  # pragma: no cover - interpreter teardown
    if _shared is not None:
        _shared.flush()


def shared_cache() -> WcetAnalysisCache:
    """The process-wide analysis cache used by every flow entry point.

    Toolchains, schedulers and mappers that are not handed an explicit cache
    all share this one, so a session running several mappers (or the same
    flow repeatedly) pays each distinct code-level analysis exactly once.
    When the :data:`CACHE_DIR_ENV_VAR` environment variable is set at first
    use, the shared cache is disk-backed at that directory and flushed
    automatically at interpreter exit, extending the "exactly once" to every
    process pointed at the same directory.
    """
    global _shared, _atexit_registered
    if _shared is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV_VAR)
        if cache_dir:
            _shared = WcetAnalysisCache.open(cache_dir)
            if not _atexit_registered:
                # one hook flushing whichever instance is current at exit,
                # so resets never stack stale callbacks
                atexit.register(_flush_shared_at_exit)
                _atexit_registered = True
        else:
            _shared = WcetAnalysisCache()
    return _shared


def reset_shared_cache() -> None:
    """Drop the process-wide cache so the next use re-reads the environment.

    Flushes a disk-backed shared cache first.  Intended for tests and
    long-running drivers that change :data:`CACHE_DIR_ENV_VAR` mid-process.
    """
    global _shared
    if _shared is not None:
        _shared.flush()
    _shared = None
