"""Content-addressed result caching shared across the whole flow.

This module is the flow's **two-tier result cache**:

* the *code-level* tier (:class:`WcetAnalysisCache`) memoizes isolated task /
  region WCET analyses, and
* the *system-level* tier (:class:`SystemResultCache`, reachable as
  ``cache.system_results``) memoizes entire
  :class:`~repro.wcet.system_level.SystemWcetResult` objects -- the outcome
  of the contention-aware fixed point -- for repeated identical
  (mapped tasks, mapping, platform, config) combinations, so a warm sweep
  over a previously analysed design point skips the fixed point entirely.

Every layer of the ARGO flow re-derives the same isolated task WCETs: the
list scheduler analyses each (task, candidate core) pair during placement,
the system-level fixed point re-analyses the mapped tasks, and the
metaheuristic / branch-and-bound mappers re-evaluate thousands of complete
mappings.  :class:`WcetAnalysisCache` memoizes those code-level results so
each distinct analysis is performed exactly once per process -- and, when the
cache is disk-backed, exactly once across *all* processes sharing one cache
directory.

Code-level cache keys are **content addressed**: an entry is keyed by

* the fingerprint of the enclosing function (declarations with their storage
  classes plus the whole body, rendered through the C printer),
* the fingerprint of the analysed statement region (a task's statements or
  the function body),
* the *cost signature* of the hardware model -- the processor's operation
  cost table, branch and loop overheads, the core's scratchpad latencies,
  the platform's uncontended shared-memory latencies and any storage
  overrides, and
* the average/worst-case flag.

The cost signature is derived purely from the numbers that determine
code-level costs, never from object identities.  Any two cores with the same
cost parameters therefore share entries: all cores of a homogeneous
platform, identical-type cores of a heterogeneous platform (even when their
:class:`~repro.adl.processor.ProcessorModel` objects are distinct), and the
"same" core rebuilt in a different process against a fresh ``Platform``.

Because entries are content addressed they can never go stale: changing the
IR or analysing a different platform simply produces different keys.

System-level result tier
------------------------
:class:`SystemResultCache` keys a full system-level analysis on

* the fingerprints of the function and of every mapped task's statement
  region (the same fingerprints the code-level tier uses),
* the mapping and the per-core ordering,
* the platform's *contention signature*: the per-core cost signatures, each
  used core's shared-access penalty table for every possible contender
  count, and the worst-case priced delay of every edge between mapped
  tasks (which captures the interconnect/NoC transfer model), and
* the knobs that steer the fixed point itself (``max_iterations``,
  the number of cores).

``mhp_backend`` is deliberately **not** part of the key: the scalar and
vectorised MHP passes are bit-for-bit identical, so their results are
interchangeable.  Callers that specifically want to re-run the fixed point
(differential tests, backend benchmarks) pass ``result_cache=False`` to
:func:`~repro.wcet.system_level.system_level_wcet`.

Disk persistence
----------------
A cache becomes disk-backed through :meth:`WcetAnalysisCache.load` (or the
:meth:`WcetAnalysisCache.open` constructor).  Entries live under a
version-stamped subdirectory, ``<cache_dir>/v<CACHE_SCHEMA_VERSION>/``:

* ``entries-<pid>-<token>.jsonl`` -- one *shard* per cache instance: one
  JSON object per line, ``{"key": <content key>, "total": .., "compute": ..,
  "memory": .., "control": .., "shared_accesses": ..}``.  Every instance
  writes only its own shard, and each :meth:`flush` rewrites that shard
  atomically (tempfile + ``os.replace``), so any number of processes -- e.g.
  the workers of a :func:`repro.core.sweep.sweep` -- can flush to the same
  directory concurrently without corrupting it.  :meth:`load` merges every
  ``entries*.jsonl`` file (including the legacy single ``entries.jsonl``
  written by older versions); duplicate keys across shards are harmless (the
  content key fully determines the value) and malformed lines are skipped.
* ``stats-<pid>-<token>.jsonl`` -- one JSON object per :meth:`flush`,
  recording the hit/disk-hit/miss deltas of the flushing instance
  (single-writer, append-only).  Aggregated together with any legacy
  ``stats.jsonl`` by :func:`read_cache_dir_stats` so drivers like
  ``benchmarks/run_all.py`` can report cache effectiveness across
  subprocesses.

The system-level tier persists to the same version directory through its own
``sys-entries-*.jsonl`` / ``sys-stats-*.jsonl`` shards, following exactly the
same atomic-rewrite and merge-on-load rules; :meth:`WcetAnalysisCache.load`,
:meth:`~WcetAnalysisCache.flush` and :meth:`~WcetAnalysisCache.clear` always
cover both tiers.

:meth:`flush` persists every entry not yet on disk and is cheap when there
is nothing new.  Other schema versions in the same directory are ignored, so
bumping :data:`CACHE_SCHEMA_VERSION` (see the invalidation contract in
:mod:`repro.wcet`) invalidates old on-disk entries without deleting them.

Eviction
--------
Content addressing means entries never go *stale*, but shared directories do
grow without bound.  :meth:`WcetAnalysisCache.evict` bounds the current
schema version's shards by entry count, serialized bytes and/or shard age:
entries used in this process rank highest (they are never age-evicted),
everything else ranks newest-shard-first, and the survivors are compacted
into this instance's own shards.  Other schema versions are never touched.
``python -m repro cache evict`` and ``benchmarks/run_all.py --cache-evict``
expose the policy for shared cache directories.

:func:`shared_cache` returns the process-wide cache every toolchain,
scheduler and mapper uses by default.  When the ``REPRO_WCET_CACHE_DIR``
environment variable is set, the shared cache is disk-backed at that
directory and flushed automatically at interpreter exit.

Invalidation contract
---------------------
The only mutable state is the set of *memos* mapping live ``Function`` /
statement / model objects (by identity) to their fingerprints and cost
signatures, which avoids re-rendering the IR and re-digesting cost tables on
every query.  Situations requiring cooperation from the caller:

1. **In-place IR mutation.**  If a function (or a task's statement block) is
   mutated after it has been analysed -- e.g. by running an IR transform --
   call :meth:`WcetAnalysisCache.invalidate_function` so the memoized
   fingerprint is recomputed.  The toolchain runs all transforms *before*
   the first analysis, so it never needs to do this.
2. **In-place platform / processor / cost-model mutation.**  Platform,
   processor and :class:`~repro.wcet.hardware_model.HardwareCostModel`
   objects are treated as immutable (their cost signature is memoized per
   object).  Mutating one in place requires
   :meth:`WcetAnalysisCache.clear` (or simply building fresh objects, which
   is the supported style and needs no invalidation at all).

Everything else -- new functions, new platforms, new storage overrides,
feedback iterations that recompile the model -- is handled transparently:
unchanged IR hits the cache, changed IR misses it.
"""

from __future__ import annotations

import atexit
import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
import uuid
import weakref
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Collection, Iterator

from repro import obs
from repro.htg.graph import HierarchicalTaskGraph
from repro.htg.task import Task
from repro.ir.printer import function_to_c, to_c
from repro.ir.program import Function
from repro.ir.statements import Block
from repro.utils.intervals import Interval
from repro.wcet.code_level import WcetBreakdown, statement_wcet
from repro.wcet.hardware_model import HardwareCostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adl.architecture import Platform
    from repro.wcet.system_level import SystemWcetResult

#: Version of the on-disk entry format *and* of the cost-model semantics the
#: cached numbers were produced under.  Bump it whenever the code-level
#: analysis, the printer rendering used for fingerprints, or the meaning of a
#: :class:`WcetBreakdown` field changes; old versions are simply ignored on
#: disk (each lives in its own ``v<N>`` subdirectory).
#: v2: system-level task rows grew from 4 to 6 elements (isolated base WCET
#: and shared-access count appended, needed by certificate checking).
CACHE_SCHEMA_VERSION = 3

#: Environment variable naming the cache directory of the process-wide
#: shared cache (see :func:`shared_cache`).
CACHE_DIR_ENV_VAR = "REPRO_WCET_CACHE_DIR"

_ENTRY_FIELDS = ("total", "compute", "memory", "control", "shared_accesses")


@dataclass
class CacheStats:
    """Hit/miss counters of one cache tier.

    ``misses`` counts actual re-analyses.  ``disk_hits`` counts the *first*
    lookup of each entry that came from a cache directory -- i.e. the number
    of distinct analyses this process avoided thanks to the disk; every
    repeat lookup of the same entry is an ordinary in-process ``hit``
    (regardless of where the entry originally came from), so hot entries
    cannot inflate the disk-hit rate.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return (self.hits + self.disk_hits) / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.hits} hits + {self.disk_hits} disk hits / "
            f"{self.misses} misses ({self.hit_rate:.1%})"
        )


def _digest(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# shard-file primitives shared by both cache tiers
# ---------------------------------------------------------------------- #
def _iter_shard_lines(path: Path) -> Iterator[tuple[str, str, dict]]:
    """Yield ``(key, raw line, parsed record)`` for every well-formed line.

    Torn lines and foreign content are skipped, never raised -- the shard
    files are a cache, not a database.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:  # pragma: no cover - racing deletion is fine
        return
    for line in text.splitlines():
        try:
            record = json.loads(line)
            key = record["key"]
        except (ValueError, KeyError, TypeError):
            continue
        if not isinstance(key, str):
            continue
        yield key, line, record


def _replace_shard(vdir: Path, final_path: Path, lines: list[str]) -> None:
    """Atomically rewrite one shard file (tempfile + ``os.replace``)."""
    fd, tmp_name = tempfile.mkstemp(dir=vdir, prefix=".shard-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        os.replace(tmp_name, final_path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


class _ShardBackedTier:
    """Shared shard-file plumbing of the two cache tiers.

    Expects the concrete tier to provide ``_cache_dir`` (``Path | None``),
    ``_shard_token`` (``str``), ``_entries`` / ``_loaded`` / ``_persisted``
    and ``_own_lines`` attributes following the semantics documented on
    :class:`WcetAnalysisCache`.
    """

    _cache_dir: Path | None
    _shard_token: str
    _entries: dict[str, Any]
    _loaded: set[str]
    _persisted: set[str]
    _own_lines: dict[str, str]

    def _version_dir(self) -> Path:
        assert self._cache_dir is not None
        return self._cache_dir / f"v{CACHE_SCHEMA_VERSION}"

    def _shard_path(self, vdir: Path, kind: str) -> Path:
        # The pid is resolved at write time, not at construction: a cache
        # instance inherited through fork() then gets its own shard file in
        # the child process instead of racing the parent for one.
        return vdir / f"{kind}-{os.getpid()}-{self._shard_token}.jsonl"

    def _hot_keys(self) -> set[str]:
        """Keys used in this process (computed, or looked up at least once)."""
        return set(self._entries) - self._loaded

    def _rewrite_disk_entries(self, vdir: Path, kind: str, kept: dict[str, str]) -> None:
        """Compact this tier's on-disk shards down to ``kept`` (key -> line)."""
        own = self._shard_path(vdir, kind)
        for path in vdir.glob(f"{kind}*.jsonl"):
            if path != own:
                path.unlink(missing_ok=True)
        if kept:
            _replace_shard(vdir, own, list(kept.values()))
        else:
            own.unlink(missing_ok=True)
        self._persisted = set(kept)
        self._loaded &= set(kept)
        self._own_lines = dict(kept)


@dataclass
class WcetAnalysisCache(_ShardBackedTier):
    """Shared memo of code-level WCET analyses (see module docstring)."""

    stats: CacheStats = field(default_factory=CacheStats)
    #: content-key -> analysed breakdown (never stale; see module docstring)
    _entries: dict[str, WcetBreakdown] = field(default_factory=dict, repr=False)
    #: id(Function) -> fingerprint (dropped via weakref.finalize on GC)
    _function_fps: dict[int, str] = field(default_factory=dict, repr=False)
    #: id(Block) -> fingerprint
    _region_fps: dict[int, str] = field(default_factory=dict, repr=False)
    #: id(Function) -> declaration-table fingerprint (see ``entry_key``)
    _context_fps: dict[int, str] = field(default_factory=dict, repr=False)
    #: id(HardwareCostModel) -> (signature tuple, digest)
    _model_sigs: dict[int, tuple[tuple, str]] = field(default_factory=dict, repr=False)
    #: objects that could not be weakref'd, pinned so their ids stay valid
    _pins: list = field(default_factory=list, repr=False)
    #: keys of entries loaded from disk (they count as ``disk_hits``)
    _loaded: set[str] = field(default_factory=set, repr=False)
    #: keys already present in any on-disk shard (loaded or flushed)
    _persisted: set[str] = field(default_factory=set, repr=False)
    #: serialized content of this instance's own shard file (survives
    #: clear(); rewritten wholesale on every flush so the replace is atomic)
    _own_lines: dict[str, str] = field(default_factory=dict, repr=False)
    #: lazily created system-level result tier (see :attr:`system_results`)
    _system: "SystemResultCache | None" = field(default=None, repr=False)
    #: per-instance token making the shard file name unique even when two
    #: caches in one process share a directory
    _shard_token: str = field(default_factory=lambda: uuid.uuid4().hex[:8], repr=False)
    #: stats snapshot at the last flush, for per-flush delta records
    _flushed_stats: tuple[int, int, int] = field(default=(0, 0, 0), repr=False)
    _cache_dir: Path | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # content addressing
    # ------------------------------------------------------------------ #
    def _remember(self, memo: dict, obj, value):
        """Memoize ``value`` under ``id(obj)`` without leaking the object.

        A finalizer drops the memo entry when the object is collected (at
        which point its id may be reused); objects that do not support weak
        references are pinned instead so their ids stay valid.
        """
        memo[id(obj)] = value
        try:
            weakref.finalize(obj, memo.pop, id(obj), None)
        except TypeError:  # pragma: no cover - all memoized types are weakref-able
            self._pins.append(obj)
        return value

    def _function_fingerprint(self, function: Function) -> str:
        cached = self._function_fps.get(id(function))
        if cached is None:
            cached = self._remember(
                self._function_fps, function, _digest(function_to_c(function))
            )
        return cached

    def _region_fingerprint(self, region: Block) -> str:
        cached = self._region_fps.get(id(region))
        if cached is None:
            cached = self._remember(self._region_fps, region, _digest(to_c(region)))
        return cached

    def _function_context_fingerprint(self, function: Function) -> str:
        """Fingerprint of everything the code-level analysis reads *through*
        the function: its declaration table (name -> type, storage class).

        A region's WCET is a pure function of the region's statements, the
        cost model and this table (storage classification decides memory
        latencies), NOT of the other regions' code -- keying entries by the
        whole-function fingerprint would invalidate every region's memo on
        any single-region edit, which is exactly what the incremental
        re-analysis engine must avoid.
        """
        cached = self._context_fps.get(id(function))
        if cached is None:
            decls = sorted(
                (decl.name, str(decl.type), decl.storage.name)
                for decl in (*function.params, *function.decls)
            )
            cached = self._remember(
                self._context_fps,
                function,
                _digest(json.dumps(decls, separators=(",", ":"))),
            )
        return cached

    def model_signature(self, model: HardwareCostModel) -> tuple:
        """Cost-relevant identity of a hardware model, by *content*.

        Collects every number the code-level analysis can observe through the
        model: the processor's operation cost table and control overheads,
        the core's scratchpad latencies, the platform's uncontended
        shared-memory latencies and the storage overrides.  Identical cores
        therefore share entries regardless of object identity, platform
        instance or process -- which is what makes heterogeneous platforms
        with repeated core types, and disk-backed sharing, work.
        """
        return self._model_signature(model)[0]

    def function_fingerprint(self, function: Function) -> str:
        """Memoized content fingerprint of a whole function (public API)."""
        return self._function_fingerprint(function)

    def function_context_fingerprint(self, function: Function) -> str:
        """Memoized decl-table fingerprint of a function (public API).

        The key component region-scoped analyses (code-level WCET entries,
        task footprints) combine with a region fingerprint so single-region
        edits keep every other region's memo addressable.
        """
        return self._function_context_fingerprint(function)

    def region_fingerprint(self, region: Block) -> str:
        """Memoized content fingerprint of one statement region (public API)."""
        return self._region_fingerprint(region)

    def model_signature_digest(self, model: HardwareCostModel) -> str:
        """Digest of :meth:`model_signature` (what entry keys embed)."""
        return self._model_signature(model)[1]

    def _model_signature(self, model: HardwareCostModel) -> tuple[tuple, str]:
        cached = self._model_sigs.get(id(model))
        if cached is None:
            platform = model.platform
            core = platform.core(model.core_id)
            proc = core.processor
            override = tuple(
                sorted((name, storage.name) for name, storage in model.storage_override.items())
            )
            signature = (
                tuple(sorted((op, float(c)) for op, c in proc.op_cycles.items())),
                float(proc.branch_cycles),
                float(proc.loop_overhead_cycles),
                float(core.scratchpad.read_latency),
                float(core.scratchpad.write_latency),
                float(platform.shared_read_latency(0)),
                float(platform.shared_write_latency(0)),
                override,
            )
            digest = _digest(json.dumps(signature, separators=(",", ":")))
            cached = self._remember(self._model_sigs, model, (signature, digest))
        return cached

    def entry_key(
        self,
        region: Block,
        function: Function,
        model: HardwareCostModel,
        average: bool = False,
    ) -> str:
        """The stable content key of one analysis (also the on-disk key).

        Keyed by the *region* content plus the function's declaration-table
        fingerprint (not the whole function body): the analysis only reads
        the function through its decl table, so editing one region leaves
        every other region's entry addressable -- the property the
        incremental re-analysis engine relies on.
        """
        return "|".join(
            (
                self._function_context_fingerprint(function),
                self._region_fingerprint(region),
                self._model_signature(model)[1],
                "avg" if average else "wc",
            )
        )

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def region_wcet(
        self,
        region: Block,
        function: Function,
        model: HardwareCostModel,
        average: bool = False,
    ) -> WcetBreakdown:
        """Memoized :func:`~repro.wcet.code_level.statement_wcet` of a region."""
        key = self.entry_key(region, function, model, average)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            entry = statement_wcet(region, function, model, average)
            self._entries[key] = entry
        elif key in self._loaded:
            # only the *first* use of a loaded entry is a disk hit; repeat
            # lookups are in-process hits (see the CacheStats docstring)
            self._loaded.discard(key)
            self.stats.disk_hits += 1
        else:
            self.stats.hits += 1
        # hand out a copy so callers can never corrupt the cached entry
        return replace(entry)

    def task_wcet(
        self,
        task: Task,
        function: Function,
        model: HardwareCostModel,
        average: bool = False,
    ) -> WcetBreakdown:
        """Memoized isolated WCET of one HTG task."""
        return self.region_wcet(task.statements, function, model, average)

    def function_wcet(
        self, function: Function, model: HardwareCostModel, average: bool = False
    ) -> WcetBreakdown:
        """Memoized isolated WCET of a whole function body."""
        return self.region_wcet(function.body, function, model, average)

    def annotate_htg(
        self,
        htg: HierarchicalTaskGraph,
        function: Function,
        model: HardwareCostModel,
        acet_model: HardwareCostModel | None = None,
        only: "Collection[str] | None" = None,
    ) -> None:
        """Cached counterpart of :func:`~repro.wcet.code_level.annotate_htg_wcets`.

        With ``only`` set, just the named tasks are (re)annotated; the
        caller asserts every other task already carries a valid
        ``wcet``/``acet`` for ``model`` (the incremental pipeline passes the
        re-extracted task ids here -- reused tasks are copies of previously
        annotated ones and the platform signature is proven unchanged).
        """
        for task in htg.tasks.values():
            if only is not None and task.task_id not in only and not task.is_synthetic:
                continue
            if task.is_synthetic:
                task.wcet = 0.0
                task.acet = 0.0
                continue
            task.wcet = self.task_wcet(task, function, model).total
            acet = self.task_wcet(task, function, acet_model or model, average=True).total
            task.acet = min(acet, task.wcet)

    # ------------------------------------------------------------------ #
    # disk persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, cache_dir: str | Path) -> "WcetAnalysisCache":
        """A fresh cache pre-loaded from (and flushing to) ``cache_dir``."""
        cache = cls()
        cache.load(cache_dir)
        return cache

    @property
    def cache_dir(self) -> Path | None:
        """The backing directory, or ``None`` for a memory-only cache."""
        return self._cache_dir

    def load(self, cache_dir: str | Path) -> int:
        """Attach the cache to ``cache_dir`` and pull in its entries.

        Creates the version-stamped subdirectory if needed, merges every
        well-formed line of every ``entries*.jsonl`` shard (duplicates and
        torn lines are skipped) and returns the number of entries added.
        Entries from other schema versions are ignored.

        Re-attaching to a *different* directory forgets what was persisted
        where: every in-memory entry becomes flushable to the new directory
        (so switching directories cannot silently drop entries).
        """
        cache_dir = Path(cache_dir)
        if self._cache_dir is not None and cache_dir != self._cache_dir:
            self._persisted.clear()
            self._loaded.clear()
            self._own_lines.clear()
        self._cache_dir = cache_dir
        vdir = self._version_dir()
        vdir.mkdir(parents=True, exist_ok=True)
        loaded = 0
        for entries_path in sorted(vdir.glob("entries*.jsonl")):
            for key, _line, record in _iter_shard_lines(entries_path):
                try:
                    entry = WcetBreakdown(
                        total=float(record["total"]),
                        compute=float(record["compute"]),
                        memory=float(record["memory"]),
                        control=float(record["control"]),
                        shared_accesses=int(record["shared_accesses"]),
                    )
                except (ValueError, KeyError, TypeError):
                    continue  # torn line or foreign content: skip, never fail
                self._persisted.add(key)
                if key not in self._entries:
                    self._entries[key] = entry
                    self._loaded.add(key)
                    loaded += 1
        if self._system is not None:
            self._system.load(cache_dir)
        return loaded

    def flush(self) -> int:
        """Persist every not-yet-persisted entry to this instance's shard.

        Returns the number of new entries written (0 for a memory-only
        cache, so it is always safe to call).  The shard file is rewritten
        through a tempfile and ``os.replace``, so a concurrent reader never
        sees a torn file and concurrent flushes from other processes (which
        own different shards) cannot interleave.  Also appends one hit/miss
        delta record to this instance's stats shard so cache effectiveness
        can be aggregated across processes by :func:`read_cache_dir_stats`.

        The system-level result tier (when it has been used) is flushed
        along; the return value counts *code-level* entries only.
        """
        if self._system is not None:
            self._system.flush()
        if self._cache_dir is None:
            return 0
        fresh = {
            key: entry for key, entry in self._entries.items() if key not in self._persisted
        }
        snapshot = (self.stats.hits, self.stats.disk_hits, self.stats.misses)
        # self-heal: a concurrent evict() in another process deletes every
        # shard it does not own, including this live instance's -- restore
        # our own flushed entries rather than silently losing them
        clobbered = bool(self._own_lines) and not self._shard_path(
            self._version_dir(), "entries"
        ).exists()
        if not fresh and not clobbered and snapshot == self._flushed_stats:
            return 0  # nothing to record: do not even touch the directory
        vdir = self._version_dir()
        vdir.mkdir(parents=True, exist_ok=True)
        if fresh or clobbered:
            for key, entry in fresh.items():
                self._own_lines[key] = json.dumps(
                    {"key": key, **{f: getattr(entry, f) for f in _ENTRY_FIELDS}},
                    separators=(",", ":"),
                )
            _replace_shard(vdir, self._shard_path(vdir, "entries"), list(self._own_lines.values()))
            self._persisted.update(fresh)
        delta = tuple(now - then for now, then in zip(snapshot, self._flushed_stats))
        if fresh or any(delta):
            record = {
                "pid": os.getpid(),
                "hits": delta[0],
                "disk_hits": delta[1],
                "misses": delta[2],
                "flushed": len(fresh),
            }
            # single writer per shard: a plain append is safe here
            with self._shard_path(vdir, "stats").open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._flushed_stats = snapshot
        return len(fresh)

    # ------------------------------------------------------------------ #
    # the system-level result tier
    # ------------------------------------------------------------------ #
    @property
    def system_results(self) -> "SystemResultCache":
        """The system-level tier of this cache (created on first use).

        Shares this instance's fingerprint memos (so keys are cheap to
        derive) and its backing directory: when the cache is disk-backed the
        tier is loaded from the same version directory, and
        :meth:`flush` / :meth:`clear` / :meth:`evict` cover it.
        """
        if self._system is None:
            self._system = SystemResultCache(fingerprints=self)
            if self._cache_dir is not None:
                self._system.load(self._cache_dir)
        return self._system

    # ------------------------------------------------------------------ #
    # eviction
    # ------------------------------------------------------------------ #
    def evict(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        max_age_seconds: float | None = None,
    ) -> dict:
        """Bound the attached cache directory (current schema version only).

        Ranks every on-disk entry of *both* tiers -- code-level analyses and
        system-level results -- and drops the lowest-ranked ones until the
        configured bounds hold:

        * entries used in this process since :meth:`load` rank highest and
          are exempt from ``max_age_seconds``, so eviction can never throw
          away an entry that was just used;
        * all other entries rank by the mtime of the shard holding them,
          newest first; ``max_age_seconds`` drops those whose shard is older;
        * ``max_entries`` bounds the total entry count across both tiers and
          ``max_bytes`` the total serialized entry bytes.

        In-memory entries are untouched (an entry evicted from disk but
        still in memory simply becomes flushable again).  Survivors are
        compacted into this instance's own shard files and every other entry
        shard of the *current* schema version is deleted; other schema
        versions are never touched (they are invalidated by the versioning
        rule, not by this policy).  Stats shards are only pruned by
        ``max_age_seconds``.  Pending entries are flushed first, so calling
        this at the end of a run cannot lose fresh results.  Evicting while
        *other* processes are mid-run is safe but best-effort: a live
        writer whose shard was deleted restores its own flushed entries on
        its next :meth:`flush` (so nothing a running process produced is
        ever lost), which may push the directory back over the bound until
        the next eviction.  Returns a report dict with kept/evicted counts
        per tier.
        """
        if self._cache_dir is None:
            raise ValueError("evict() requires a disk-backed cache; call load() first")
        self.flush()
        system = self.system_results
        vdir = self._version_dir()
        if not vdir.is_dir():  # nothing was ever flushed
            return {"kept": 0, "evicted": 0, "kept_bytes": 0, "tiers": {}}
        now = time.time()
        #: rank order at equal age: one system-level result replaces an
        #: entire fixed point, so the system tier must never be starved by
        #: the (far more numerous, individually cheaper) code entries that
        #: the same flush wrote moments later
        tiers: dict[str, tuple] = {
            "system": (system, "sys-entries"),
            "code": (self, "entries"),
        }
        tier_rank = {name: rank for rank, name in enumerate(tiers)}
        candidates: list[tuple[bool, float, str, str, str]] = []
        for tier_name, (tier, kind) in tiers.items():
            hot = tier._hot_keys()
            per_key: dict[str, tuple[float, str]] = {}
            shard_mtimes: dict[Path, float] = {}
            for path in vdir.glob(f"{kind}*.jsonl"):
                try:
                    shard_mtimes[path] = path.stat().st_mtime
                except OSError:  # racing a concurrent evict/flush: skip
                    continue
            # oldest first, so the newest shard wins duplicate keys
            for path, mtime in sorted(shard_mtimes.items(), key=lambda kv: kv[1]):
                for key, line, _record in _iter_shard_lines(path):
                    per_key[key] = (mtime, line)
            for key, (mtime, line) in per_key.items():
                is_hot = key in hot
                candidates.append((is_hot, now if is_hot else mtime, tier_name, key, line))
        # hot entries first, then newest at whole-second granularity (both
        # tiers of one flush land in the same bucket, where the system tier
        # ranks first); ties broken by key for determinism
        candidates.sort(
            key=lambda c: (not c[0], -int(c[1]), tier_rank[c[2]], c[3])
        )
        kept: dict[str, dict[str, str]] = {name: {} for name in tiers}
        kept_count = 0
        kept_bytes = 0
        evicted = 0
        budget_full = False
        for is_hot, mtime, tier_name, key, line in candidates:
            size = len(line.encode("utf-8")) + 1  # newline included
            if max_age_seconds is not None and not is_hot and now - mtime > max_age_seconds:
                evicted += 1
                continue
            if max_entries is not None and kept_count >= max_entries:
                evicted += 1
                continue
            if budget_full or (max_bytes is not None and kept_bytes + size > max_bytes):
                # rank-monotonic cutoff: once the byte budget refuses an
                # entry, nothing ranked lower may be kept either -- packing
                # smaller cold entries around a dropped hot one would break
                # the "just-used entries survive first" guarantee
                budget_full = True
                evicted += 1
                continue
            kept[tier_name][key] = line
            kept_count += 1
            kept_bytes += size
        for tier_name, (tier, kind) in tiers.items():
            tier._rewrite_disk_entries(vdir, kind, kept[tier_name])
        stats_shards_removed = 0
        if max_age_seconds is not None:
            for kind in ("stats", "sys-stats"):
                for path in vdir.glob(f"{kind}*.jsonl"):
                    try:
                        aged = now - path.stat().st_mtime > max_age_seconds
                    except OSError:  # pragma: no cover - racing deletion
                        continue
                    if aged:
                        path.unlink(missing_ok=True)
                        stats_shards_removed += 1
        if obs.obs_enabled():
            registry = obs.metrics()
            registry.counter("cache.evictions").inc()
            registry.counter("cache.evicted_entries").inc(evicted)
            registry.counter("cache.kept_entries").inc(kept_count)
        return {
            "kept": kept_count,
            "evicted": evicted,
            "kept_bytes": kept_bytes,
            "stats_shards_removed": stats_shards_removed,
            "tiers": {name: len(kept[name]) for name in tiers},
        }

    # ------------------------------------------------------------------ #
    def invalidate_function(self, function: Function) -> None:
        """Forget memoized fingerprints after an in-place IR mutation.

        Content-addressed entries themselves stay valid (the mutated IR will
        simply produce new keys); only the identity -> fingerprint memos must
        be dropped so they are recomputed from the new contents.
        """
        self._function_fps.pop(id(function), None)
        self._context_fps.pop(id(function), None)
        self._region_fps.pop(id(function.body), None)
        for stmt in function.body.walk():
            if isinstance(stmt, Block):
                self._region_fps.pop(id(stmt), None)

    def invalidate_fingerprints(self, obj: object) -> None:
        """Forget every memoized fingerprint/signature derived from ``obj``.

        The fingerprint memos are keyed by ``id(obj)``: cheap, but blind to
        in-place mutation.  **Mutating an object after this cache has
        fingerprinted it, without calling this method, is undefined
        behaviour** -- the stale memo would keep addressing the pre-mutation
        analysis results.  Callers that mutate IR, tasks or cost models in
        place (transform passes, the incremental re-analysis engine, edit
        scripts) must invalidate first; content-addressed entries themselves
        stay valid because the re-rendered object simply produces new keys.

        Accepts a :class:`~repro.ir.program.Function`, a statement
        :class:`~repro.ir.statements.Block`, a :class:`~repro.htg.task.Task`,
        a whole :class:`~repro.htg.graph.HierarchicalTaskGraph` or a
        :class:`~repro.wcet.hardware_model.HardwareCostModel`.
        """
        if isinstance(obj, Function):
            self.invalidate_function(obj)
        elif isinstance(obj, Block):
            self._region_fps.pop(id(obj), None)
            for stmt in obj.walk():
                if isinstance(stmt, Block):
                    self._region_fps.pop(id(stmt), None)
        elif isinstance(obj, Task):
            self.invalidate_fingerprints(obj.statements)
        elif isinstance(obj, HierarchicalTaskGraph):
            for task in obj.tasks.values():
                self.invalidate_fingerprints(task.statements)
        elif isinstance(obj, HardwareCostModel):
            self._model_sigs.pop(id(obj), None)
        else:
            raise TypeError(
                "invalidate_fingerprints expects a Function, Block, Task, "
                f"HierarchicalTaskGraph or HardwareCostModel, got {type(obj).__name__}"
            )

    def clear(self) -> None:
        """Drop every in-memory entry and memo (stats are kept).

        On-disk entries are *not* deleted: the backing directory stays
        attached and can be re-read with :meth:`load`, and already-persisted
        keys are remembered so a later :meth:`flush` does not duplicate them.
        """
        self._entries.clear()
        self._function_fps.clear()
        self._region_fps.clear()
        self._context_fps.clear()
        self._model_sigs.clear()
        self._pins.clear()
        self._loaded.clear()
        if self._system is not None:
            self._system.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        """An empty cache is still a cache (``len`` would make it falsy)."""
        return True


# ---------------------------------------------------------------------- #
# the system-level result tier
# ---------------------------------------------------------------------- #
class SystemResultCache(_ShardBackedTier):
    """Content-addressed memo of whole system-level analysis results.

    The second tier of the flow's result cache (see the module docstring):
    one entry is a complete :class:`~repro.wcet.system_level.SystemWcetResult`
    keyed by everything the fixed point can observe -- the function and
    per-task region fingerprints, the mapping, the per-core ordering, the
    per-core cost signatures and shared-access penalty tables, the priced
    worst-case delay of every edge between mapped tasks, the core count and
    ``max_iterations``.  Identical design points therefore share entries
    across schedulers, processes and (when disk-backed) machines, and a warm
    lookup skips the fixed point *and* the per-task code-level analyses.

    The in-memory side is a bounded LRU (``max_memory_entries``): mapper
    metaheuristics evaluate thousands of distinct mappings, and keeping all
    of their full results alive would trade one scaling problem for another.
    Disk persistence follows the exact shard scheme of the code-level tier,
    under ``sys-entries*.jsonl`` / ``sys-stats*.jsonl`` in the same
    version-stamped directory.

    Instances are usually reached through
    :attr:`WcetAnalysisCache.system_results`, which shares the code-level
    tier's fingerprint memos and backing directory.
    """

    def __init__(
        self,
        fingerprints: WcetAnalysisCache | None = None,
        max_memory_entries: int | None = 2048,
    ) -> None:
        self.stats = CacheStats()
        self.max_memory_entries = max_memory_entries
        #: fingerprint/memo provider (identity memos shared with the owning
        #: code-level tier so keys are cheap to derive)
        self._fingerprints = fingerprints if fingerprints is not None else WcetAnalysisCache()
        #: content key -> serializable record (insertion order = LRU order)
        self._entries: dict[str, dict] = {}
        self._loaded: set[str] = set()
        self._persisted: set[str] = set()
        self._own_lines: dict[str, str] = {}
        self._shard_token = uuid.uuid4().hex[:8]
        self._flushed_stats: tuple[int, int, int] = (0, 0, 0)
        self._cache_dir: Path | None = None

    # ------------------------------------------------------------------ #
    # content addressing
    # ------------------------------------------------------------------ #
    def result_key(
        self,
        htg: HierarchicalTaskGraph,
        function: Function,
        platform: "Platform",
        mapping: dict[str, int],
        order: dict[int, list[str]],
        storage_override=None,
        max_iterations: int = 25,
        models: dict[int, HardwareCostModel] | None = None,
        comm_delay=None,
        static_pruning: bool = False,
    ) -> str:
        """The stable content key of one system-level analysis.

        ``models`` may pass in the per-core :class:`HardwareCostModel`
        objects the caller already built (so their cost signatures are
        memoized once) and ``comm_delay`` the caller's
        :func:`~repro.wcet.system_level.make_edge_latency` closure (so each
        edge is priced once, not once for the key and once for the
        analysis); both are constructed on the fly when absent.
        """
        storage_override = dict(storage_override or {})
        fp = self._fingerprints
        leaf_ids = [t.task_id for t in htg.leaf_tasks()]
        used_cores = sorted({mapping[tid] for tid in leaf_ids if tid in mapping})
        models = dict(models or {})
        for core_id in used_cores:
            if core_id not in models:
                models[core_id] = HardwareCostModel(platform, core_id, storage_override)
        num_cores = platform.num_cores
        comm_contenders = max(0, num_cores - 1)
        if comm_delay is None:
            from repro.wcet.system_level import make_edge_latency

            comm_delay = make_edge_latency(htg, platform, mapping, comm_contenders)
        tasks = [
            (
                tid,
                fp.region_fingerprint(htg.task(tid).statements),
                mapping.get(tid, -1),
            )
            for tid in sorted(leaf_ids)
        ]
        edges = sorted(
            (
                e.src,
                e.dst,
                0.0 if mapping[e.src] == mapping[e.dst] else comm_delay(e.src, e.dst),
            )
            for e in htg.edges
            if e.src in mapping and e.dst in mapping
        )
        payload = {
            "function": fp.function_fingerprint(function),
            "tasks": tasks,
            "order": sorted((core, list(tids)) for core, tids in order.items()),
            "models": [
                (
                    core_id,
                    fp.model_signature_digest(models[core_id]),
                    [models[core_id].shared_access_penalty(k) for k in range(num_cores)],
                )
                for core_id in used_cores
            ],
            "edges": edges,
            "num_cores": num_cores,
            "max_iterations": max_iterations,
        }
        if static_pruning:
            # added only when pruning is on: unpruned keys stay byte-identical
            # to every earlier schema (old disk entries remain addressable and
            # the opt-out path is bit-identical), while pruned results live
            # under keys unpruned code never derives
            payload["static_pruning"] = True
        return _digest(json.dumps(payload, separators=(",", ":"), sort_keys=True))

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    @staticmethod
    def _record_of(result: "SystemWcetResult") -> dict:
        return {
            "makespan": result.makespan,
            "iterations": result.iterations,
            "converged": bool(result.converged),
            # convergence evidence (optional key: pre-PR-10 records default
            # to 0.0 on replay; ``iteration_deltas`` is diagnostic-only and
            # deliberately not serialized, like ``warm_info``)
            "final_delta": getattr(result, "final_delta", 0.0),
            "interference": result.interference_cycles,
            "communication": result.communication_cycles,
            "tasks": {
                tid: [
                    interval.start,
                    interval.end,
                    result.task_effective_wcet[tid],
                    result.task_contenders[tid],
                    # base WCET / shared accesses feed the fixed-point
                    # certificate checker on replay; hand-built results
                    # without them degrade to base == effective, shared == 0
                    # (every certificate check stays sound, some lose teeth)
                    result.task_base_wcet.get(tid, result.task_effective_wcet[tid]),
                    result.task_shared_accesses.get(tid, 0),
                ]
                for tid, interval in result.task_intervals.items()
            },
            # kept separately: the mapping may cover tasks beyond the
            # analysed timeline, and round-trips must be exact
            "cores": dict(result.task_cores),
            **(
                {
                    "allowed": {
                        tid: list(others)
                        for tid, others in result.mhp_allowed.items()
                    }
                }
                if getattr(result, "mhp_allowed", None) is not None
                else {}
            ),
        }

    @staticmethod
    def _result_of(record: dict) -> "SystemWcetResult":
        from repro.wcet.system_level import SystemWcetResult

        # coerce explicitly: _valid_record only checks *convertibility*, so
        # a foreign shard carrying numeric strings must still rebuild into a
        # result with real numbers (float(float) is the identity, so records
        # this module wrote round-trip bit-exactly)
        tasks = record["tasks"]
        return SystemWcetResult(
            makespan=float(record["makespan"]),
            task_intervals={
                tid: Interval(float(row[0]), float(row[1])) for tid, row in tasks.items()
            },
            task_cores={tid: int(core) for tid, core in record["cores"].items()},
            task_effective_wcet={tid: float(row[2]) for tid, row in tasks.items()},
            task_contenders={tid: int(row[3]) for tid, row in tasks.items()},
            interference_cycles=float(record["interference"]),
            communication_cycles=float(record["communication"]),
            iterations=int(record["iterations"]),
            converged=bool(record["converged"]),
            task_base_wcet={tid: float(row[4]) for tid, row in tasks.items()},
            task_shared_accesses={tid: int(row[5]) for tid, row in tasks.items()},
            mhp_allowed=(
                {
                    tid: tuple(str(o) for o in others)
                    for tid, others in record["allowed"].items()
                }
                if "allowed" in record
                else None
            ),
            final_delta=float(record.get("final_delta", 0.0)),
        )

    @staticmethod
    def _valid_record(record: dict) -> bool:
        try:
            tasks = record["tasks"]
            cores = record["cores"]
            if not isinstance(tasks, dict) or not isinstance(cores, dict):
                return False
            for row in tasks.values():
                if len(row) != 6:
                    return False
                float(row[0]), float(row[1]), float(row[2]), int(row[3])
                float(row[4]), int(row[5])
            for core in cores.values():
                int(core)
            allowed = record.get("allowed")
            if allowed is not None:
                if not isinstance(allowed, dict):
                    return False
                for others in allowed.values():
                    if not isinstance(others, list) or not all(
                        isinstance(o, str) for o in others
                    ):
                        return False
            float(record["makespan"])
            float(record["interference"])
            float(record["communication"])
            float(record.get("final_delta", 0.0))
            int(record["iterations"])
            return isinstance(record["converged"], bool)
        except (KeyError, TypeError, ValueError):
            return False

    def get(self, key: str) -> "SystemWcetResult | None":
        """The cached result under ``key`` (a fresh object), or ``None``.

        A ``None`` return counts as a miss -- the caller is expected to run
        the analysis and :meth:`put` the outcome.
        """
        record = self._entries.get(key)
        if record is None:
            self.stats.misses += 1
            return None
        if key in self._loaded:
            self._loaded.discard(key)
            self.stats.disk_hits += 1
        else:
            self.stats.hits += 1
        # LRU touch: re-insertion moves the key to the newest position
        del self._entries[key]
        self._entries[key] = record
        return self._result_of(record)

    def put(self, key: str, result: "SystemWcetResult") -> None:
        """Memoize ``result`` under ``key`` (oldest entries drop past the LRU bound)."""
        self._entries.pop(key, None)
        self._entries[key] = self._record_of(result)
        if self.max_memory_entries is not None:
            while len(self._entries) > self.max_memory_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self._loaded.discard(oldest)

    # ------------------------------------------------------------------ #
    # disk persistence (same shard scheme as the code-level tier)
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, cache_dir: str | Path) -> "SystemResultCache":
        """A fresh standalone tier pre-loaded from (and flushing to) ``cache_dir``."""
        cache = cls()
        cache.load(cache_dir)
        return cache

    @property
    def cache_dir(self) -> Path | None:
        return self._cache_dir

    def load(self, cache_dir: str | Path) -> int:
        """Attach to ``cache_dir`` and merge its ``sys-entries*.jsonl`` shards."""
        cache_dir = Path(cache_dir)
        if self._cache_dir is not None and cache_dir != self._cache_dir:
            self._persisted.clear()
            self._loaded.clear()
            self._own_lines.clear()
        self._cache_dir = cache_dir
        vdir = self._version_dir()
        vdir.mkdir(parents=True, exist_ok=True)
        loaded = 0
        for entries_path in sorted(vdir.glob("sys-entries*.jsonl")):
            for key, _line, record in _iter_shard_lines(entries_path):
                record.pop("key", None)
                if not self._valid_record(record):
                    continue
                self._persisted.add(key)
                if key not in self._entries:
                    self._entries[key] = record
                    self._loaded.add(key)
                    loaded += 1
        return loaded

    def flush(self) -> int:
        """Persist every not-yet-persisted result to this instance's shard."""
        if self._cache_dir is None:
            return 0
        fresh = {
            key: record for key, record in self._entries.items() if key not in self._persisted
        }
        snapshot = (self.stats.hits, self.stats.disk_hits, self.stats.misses)
        # self-heal after a concurrent evict() deleted this shard (see the
        # code-level tier's flush for the rationale)
        clobbered = bool(self._own_lines) and not self._shard_path(
            self._version_dir(), "sys-entries"
        ).exists()
        if not fresh and not clobbered and snapshot == self._flushed_stats:
            return 0
        vdir = self._version_dir()
        vdir.mkdir(parents=True, exist_ok=True)
        if fresh or clobbered:
            for key, record in fresh.items():
                self._own_lines[key] = json.dumps(
                    {"key": key, **record}, separators=(",", ":")
                )
            self._persisted.update(fresh)
            # the own-shard buffer obeys the same bound as the LRU: without
            # this, every flush of a long-lived driver would accrete more
            # multi-KB result lines forever and the "bounded in-memory
            # side" promise would only hold for _entries
            if self.max_memory_entries is not None:
                while len(self._own_lines) > self.max_memory_entries:
                    oldest = next(iter(self._own_lines))
                    del self._own_lines[oldest]
                    self._persisted.discard(oldest)
            _replace_shard(
                vdir, self._shard_path(vdir, "sys-entries"), list(self._own_lines.values())
            )
        delta = tuple(now - then for now, then in zip(snapshot, self._flushed_stats))
        if fresh or any(delta):
            record = {
                "pid": os.getpid(),
                "hits": delta[0],
                "disk_hits": delta[1],
                "misses": delta[2],
                "flushed": len(fresh),
            }
            with self._shard_path(vdir, "sys-stats").open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._flushed_stats = snapshot
        return len(fresh)

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every in-memory result (stats and on-disk shards are kept)."""
        self._entries.clear()
        self._loaded.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return True


class _Unfingerprintable(Exception):
    """A platform component content addressing cannot describe."""


def _describe_component(obj):
    """JSON-able content description of one platform component.

    Every dataclass level records its concrete type name, so a subclass
    that overrides behaviour while keeping the base fields (a custom
    processor model, say) can never digest identically to the base.
    Anything that is neither a dataclass, a plain container nor a scalar is
    refused -- a ``str()`` fallback would happily bake an address-bearing
    ``repr`` into the digest and defeat content addressing.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        described = {"__type__": type(obj).__name__}
        for field_ in dataclasses.fields(obj):
            described[field_.name] = _describe_component(getattr(obj, field_.name))
        return described
    if isinstance(obj, dict):
        return {str(key): _describe_component(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_describe_component(item) for item in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    raise _Unfingerprintable(type(obj).__name__)


def platform_signature(platform: "Platform") -> str | None:
    """Content digest of everything a platform contributes to flow results.

    Used by the pipeline's per-stage artifact cache to key stage outputs by
    platform *content* rather than object identity.  The digest covers the
    full ADL description -- cores (processor timing models, scratchpads,
    tiles), the shared memory, the interconnect and the optional NoC --
    including the concrete type of every nested component.  Returns ``None``
    when any component cannot be introspected (a custom non-dataclass
    model), in which case callers must treat the platform as uncacheable
    rather than risk a stale hit.
    """
    try:
        payload = _describe_component(platform)
    except _Unfingerprintable:
        return None
    return _digest(json.dumps(payload, sort_keys=True))


def read_cache_dir_stats(cache_dir: str | Path, count_entries: bool = True) -> dict:
    """Aggregate the stats records of a cache directory.

    Sums every record of every ``stats*.jsonl`` shard (one record per flush,
    across all processes) and, with ``count_entries``, also counts the
    distinct persisted entries (a full scan of every ``entries*.jsonl``
    shard -- pass ``False`` when diffing snapshots in a loop).  The
    system-level result tier is aggregated the same way from its
    ``sys-stats*.jsonl`` / ``sys-entries*.jsonl`` shards into the nested
    ``"system"`` dict; its ``misses`` count the fixed points actually run.
    Returns zeros for a missing or empty directory, so callers can diff
    before/after snapshots without special cases.
    """
    counter_keys = ("hits", "disk_hits", "misses", "flushed")
    totals = {key: 0 for key in counter_keys}
    totals["entries"] = 0
    totals["system"] = {key: 0 for key in counter_keys}
    totals["system"]["entries"] = 0
    vdir = Path(cache_dir) / f"v{CACHE_SCHEMA_VERSION}"
    if not vdir.is_dir():
        return totals

    def _aggregate(stats_pattern: str, entries_pattern: str, into: dict) -> None:
        for stats_path in sorted(vdir.glob(stats_pattern)):
            for line in stats_path.read_text(encoding="utf-8").splitlines():
                try:
                    record = json.loads(line)
                    for key in counter_keys:
                        into[key] += int(record.get(key, 0))
                except (ValueError, TypeError):
                    continue
        if count_entries:
            keys = set()
            for entries_path in sorted(vdir.glob(entries_pattern)):
                for key, _line, _record in _iter_shard_lines(entries_path):
                    keys.add(key)
            into["entries"] = len(keys)

    _aggregate("stats*.jsonl", "entries*.jsonl", totals)
    _aggregate("sys-stats*.jsonl", "sys-entries*.jsonl", totals["system"])
    return totals


# ---------------------------------------------------------------------- #
# the process-wide shared cache
# ---------------------------------------------------------------------- #
_shared: WcetAnalysisCache | None = None
_atexit_registered = False


def _flush_shared_at_exit() -> None:  # pragma: no cover - interpreter teardown
    if _shared is not None:
        _shared.flush()


def shared_cache() -> WcetAnalysisCache:
    """The process-wide analysis cache used by every flow entry point.

    Toolchains, schedulers and mappers that are not handed an explicit cache
    all share this one, so a session running several mappers (or the same
    flow repeatedly) pays each distinct code-level analysis exactly once.
    When the :data:`CACHE_DIR_ENV_VAR` environment variable is set at first
    use, the shared cache is disk-backed at that directory and flushed
    automatically at interpreter exit, extending the "exactly once" to every
    process pointed at the same directory.
    """
    global _shared, _atexit_registered
    if _shared is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV_VAR)
        if cache_dir:
            _shared = WcetAnalysisCache.open(cache_dir)
            if not _atexit_registered:
                # one hook flushing whichever instance is current at exit,
                # so resets never stack stale callbacks
                atexit.register(_flush_shared_at_exit)
                _atexit_registered = True
        else:
            _shared = WcetAnalysisCache()
    return _shared


def reset_shared_cache() -> None:
    """Drop the process-wide cache so the next use re-reads the environment.

    Flushes a disk-backed shared cache first.  Intended for tests and
    long-running drivers that change :data:`CACHE_DIR_ENV_VAR` mid-process.
    """
    global _shared
    if _shared is not None:
        _shared.flush()
    _shared = None
