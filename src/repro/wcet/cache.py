"""Memoized code-level WCET analysis shared across the whole flow.

Every layer of the ARGO flow re-derives the same isolated task WCETs: the
list scheduler analyses each (task, candidate core) pair during placement,
the system-level fixed point re-analyses the mapped tasks, and the
metaheuristic / branch-and-bound mappers re-evaluate thousands of complete
mappings.  :class:`WcetAnalysisCache` memoizes those code-level results so
each distinct analysis is performed exactly once per process.

Cache keys are **content addressed**: an entry is keyed by

* the fingerprint of the enclosing function (declarations with their storage
  classes plus the whole body, rendered through the C printer),
* the fingerprint of the analysed statement region (a task's statements or
  the function body),
* the cost signature of the hardware model (platform identity, processor
  identity, scratchpad latencies and any storage overrides), and
* the average/worst-case flag.

Because entries are content addressed they can never go stale: changing the
IR or analysing a different platform simply produces different keys.  On
homogeneous platforms, cores sharing one processor model also share cache
entries, so a k-core placement loop costs a single analysis per task.

Invalidation contract
---------------------
The only mutable state is the *fingerprint memo* mapping live ``Function`` /
statement objects (by identity) to their fingerprints, which avoids
re-rendering the IR on every query.  Two situations require cooperation from
the caller:

1. **In-place IR mutation.**  If a function (or a task's statement block) is
   mutated after it has been analysed -- e.g. by running an IR transform --
   call :meth:`WcetAnalysisCache.invalidate_function` so the memoized
   fingerprint is recomputed.  The toolchain runs all transforms *before*
   the first analysis, so it never needs to do this.
2. **In-place platform mutation.**  Platform and processor objects are
   treated as immutable (their ``id`` is part of the model signature).
   Mutating one in place requires :meth:`WcetAnalysisCache.clear` (or simply
   building a fresh ``Platform``, which is the supported style).

Everything else -- new functions, new platforms, new storage overrides,
feedback iterations that recompile the model -- is handled transparently:
unchanged IR hits the cache, changed IR misses it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.htg.graph import HierarchicalTaskGraph
from repro.htg.task import Task
from repro.ir.printer import function_to_c, to_c
from repro.ir.program import Function
from repro.ir.statements import Block
from repro.wcet.code_level import WcetBreakdown, statement_wcet
from repro.wcet.hardware_model import HardwareCostModel


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`WcetAnalysisCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.hits} hits / {self.misses} misses ({self.hit_rate:.1%})"


def _digest(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


@dataclass
class WcetAnalysisCache:
    """Process-wide memo of code-level WCET analyses (see module docstring)."""

    stats: CacheStats = field(default_factory=CacheStats)
    #: content-key -> analysed breakdown (never stale; see module docstring)
    _entries: dict[tuple, WcetBreakdown] = field(default_factory=dict, repr=False)
    #: id(Function) -> (pinned function, fingerprint)
    _function_fps: dict[int, tuple[Function, str]] = field(default_factory=dict, repr=False)
    #: id(Block) -> (pinned block, fingerprint)
    _region_fps: dict[int, tuple[Block, str]] = field(default_factory=dict, repr=False)
    #: pins keeping platform/processor objects alive while their ids key entries
    _model_pins: dict[int, object] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    def _function_fingerprint(self, function: Function) -> str:
        key = id(function)
        cached = self._function_fps.get(key)
        if cached is None:
            cached = (function, _digest(function_to_c(function)))
            self._function_fps[key] = cached
        return cached[1]

    def _region_fingerprint(self, region: Block) -> str:
        key = id(region)
        cached = self._region_fps.get(key)
        if cached is None:
            cached = (region, _digest(to_c(region)))
            self._region_fps[key] = cached
        return cached[1]

    def model_signature(self, model: HardwareCostModel) -> tuple:
        """Cost-relevant identity of a hardware model.

        Uses object identities for the platform and processor (pinned so the
        ids stay valid) plus the per-core scratchpad latencies, so identical
        cores of a homogeneous platform share entries.
        """
        platform = model.platform
        core = platform.core(model.core_id)
        self._model_pins.setdefault(id(platform), platform)
        self._model_pins.setdefault(id(core.processor), core.processor)
        override = tuple(
            sorted((name, storage.name) for name, storage in model.storage_override.items())
        )
        return (
            id(platform),
            id(core.processor),
            float(core.scratchpad.read_latency),
            float(core.scratchpad.write_latency),
            override,
        )

    # ------------------------------------------------------------------ #
    def region_wcet(
        self,
        region: Block,
        function: Function,
        model: HardwareCostModel,
        average: bool = False,
    ) -> WcetBreakdown:
        """Memoized :func:`~repro.wcet.code_level.statement_wcet` of a region."""
        key = (
            self._function_fingerprint(function),
            self._region_fingerprint(region),
            self.model_signature(model),
            average,
        )
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            entry = statement_wcet(region, function, model, average)
            self._entries[key] = entry
        else:
            self.stats.hits += 1
        # hand out a copy so callers can never corrupt the cached entry
        return replace(entry)

    def task_wcet(
        self,
        task: Task,
        function: Function,
        model: HardwareCostModel,
        average: bool = False,
    ) -> WcetBreakdown:
        """Memoized isolated WCET of one HTG task."""
        return self.region_wcet(task.statements, function, model, average)

    def function_wcet(
        self, function: Function, model: HardwareCostModel, average: bool = False
    ) -> WcetBreakdown:
        """Memoized isolated WCET of a whole function body."""
        return self.region_wcet(function.body, function, model, average)

    def annotate_htg(
        self,
        htg: HierarchicalTaskGraph,
        function: Function,
        model: HardwareCostModel,
        acet_model: HardwareCostModel | None = None,
    ) -> None:
        """Cached counterpart of :func:`~repro.wcet.code_level.annotate_htg_wcets`."""
        for task in htg.tasks.values():
            if task.is_synthetic:
                task.wcet = 0.0
                task.acet = 0.0
                continue
            task.wcet = self.task_wcet(task, function, model).total
            acet = self.task_wcet(task, function, acet_model or model, average=True).total
            task.acet = min(acet, task.wcet)

    # ------------------------------------------------------------------ #
    def invalidate_function(self, function: Function) -> None:
        """Forget memoized fingerprints after an in-place IR mutation.

        Content-addressed entries themselves stay valid (the mutated IR will
        simply produce new keys); only the identity -> fingerprint memos must
        be dropped so they are recomputed from the new contents.
        """
        self._function_fps.pop(id(function), None)
        self._region_fps.pop(id(function.body), None)
        for stmt in function.body.walk():
            if isinstance(stmt, Block):
                self._region_fps.pop(id(stmt), None)

    def clear(self) -> None:
        """Drop every entry, fingerprint memo and pin (stats are kept)."""
        self._entries.clear()
        self._function_fps.clear()
        self._region_fps.clear()
        self._model_pins.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        """An empty cache is still a cache (``len`` would make it falsy)."""
        return True
