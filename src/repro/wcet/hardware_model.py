"""Hardware cost model: from ADL description to per-operation/access cycles.

This is the reproduction's stand-in for a binary-level analyzer's pipeline
and memory models (aiT in the real ARGO flow): every IR operation and every
array access gets a worst-case cycle cost derived from the platform
description.  Contention is *not* included here -- code-level WCET is defined
as the isolated WCET (paper Section II-D); the system-level analysis adds
interference separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adl.architecture import Platform
from repro.ir.program import Function, Storage


@dataclass
class HardwareCostModel:
    """Worst-case cost provider for one core of one platform.

    Parameters
    ----------
    platform:
        The target platform (ADL description).
    core_id:
        The core the analysed code runs on (cores may differ in processor
        model on heterogeneous platforms).
    storage_override:
        Optional map ``array name -> Storage`` overriding the declared storage
        class, used by the scratchpad-allocation transformation to evaluate
        placements without mutating the IR.
    """

    platform: Platform
    core_id: int = 0
    storage_override: dict[str, Storage] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._core = self.platform.core(self.core_id)

    # ------------------------------------------------------------------ #
    @property
    def processor(self):
        return self._core.processor

    def op_cycles(self, op: str) -> float:
        return float(self.processor.cycles_for_op(op))

    @property
    def branch_cycles(self) -> float:
        return float(self.processor.branch_cycles)

    @property
    def loop_overhead_cycles(self) -> float:
        return float(self.processor.loop_overhead_cycles)

    # ------------------------------------------------------------------ #
    def storage_of(self, function: Function, name: str) -> Storage:
        if name in self.storage_override:
            return self.storage_override[name]
        decl = function.lookup(name)
        if decl is None:
            return Storage.LOCAL
        return decl.storage

    def is_shared(self, function: Function, name: str) -> bool:
        return self.storage_of(function, name) in (Storage.SHARED, Storage.INPUT, Storage.OUTPUT)

    def read_cycles(self, function: Function, name: str, contenders: int = 0) -> float:
        """Worst-case cycles for one element read of array ``name``."""
        storage = self.storage_of(function, name)
        if storage is Storage.LOCAL:
            return 1.0
        if storage is Storage.SCRATCHPAD:
            return float(self._core.scratchpad.read_latency)
        return self.platform.shared_read_latency(contenders)

    def write_cycles(self, function: Function, name: str, contenders: int = 0) -> float:
        """Worst-case cycles for one element write of array ``name``."""
        storage = self.storage_of(function, name)
        if storage is Storage.LOCAL:
            return 1.0
        if storage is Storage.SCRATCHPAD:
            return float(self._core.scratchpad.write_latency)
        return self.platform.shared_write_latency(contenders)

    def shared_access_penalty(self, contenders: int) -> float:
        """Extra cycles per shared access caused by ``contenders`` competitors.

        This is the quantity the system-level analysis multiplies by each
        task's worst-case shared access count.
        """
        if contenders <= 0:
            return 0.0
        base = self.platform.interconnect.worst_case_access_delay(0)
        contended = self.platform.interconnect.worst_case_access_delay(contenders)
        return max(0.0, contended - base)

    def average_read_cycles(self, function: Function, name: str) -> float:
        """Optimistic (average-case) read cost used by the baseline scheduler.

        Assumes no contention and charges half the worst-case shared latency,
        which is how an average-case-oriented flow would budget memory.
        """
        worst = self.read_cycles(function, name, contenders=0)
        if self.is_shared(function, name):
            return max(1.0, worst / 2.0)
        return worst

    def average_op_cycles(self, op: str) -> float:
        return max(1.0, self.op_cycles(op) / 2.0)
