"""System-level (contention-aware) multi-core WCET analysis.

Given a mapping and per-core ordering of HTG tasks, this analysis

1. recomputes each task's isolated WCET on the core it is mapped to,
2. derives the static schedule timeline (dependences + core ordering +
   worst-case communication latencies),
3. runs a may-happen-in-parallel (MHP) analysis on the timeline: two tasks may
   interfere when they are mapped to different cores and their time windows
   overlap (dependent tasks can never overlap by construction),
4. charges every task an interference penalty equal to its worst-case number
   of shared accesses times the interconnect's per-access penalty for the
   observed number of contending cores, and
5. iterates -- inflating a task stretches its window, which may create new
   overlaps -- until a fixed point, within a safety cap: inflation can also
   *shift* windows (a task starts later because a predecessor grew), so the
   contention sets are not guaranteed to grow monotonically and the iteration
   may keep oscillating.  When the cap is hit the analysis falls back to the
   all-cores-contend worst case and reports ``converged=False``.

The result's makespan is the guaranteed end-to-end WCET of the parallel
program (paper Section II-D).

MHP implementation notes
------------------------
The per-iteration contender derivation is the hot loop of the fixed point:
naively it is a double loop over tasks x sharer tasks.  The vectorised
backend computes the same counts per core with two ``numpy.searchsorted``
passes over the sorted sharer window endpoints: for a query window
``[s, e)``, the number of sharer windows on a core that overlap it is
``#(starts < e) - #(ends <= s)`` -- exact for half-open windows because
sharer windows are never empty (a task with shared accesses has a positive
WCET).  Both backends use the same strict float comparisons and the
effective-WCET arithmetic stays in scalar Python, so the vectorised pass is
bit-for-bit identical to the double loop (the test suite asserts this).
"""

from __future__ import annotations

import operator
import os
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro import obs
from repro.adl.architecture import Platform
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.program import Function, Storage
from repro.utils.intervals import Interval
from repro.wcet.code_level import analyze_task_wcet
from repro.wcet.hardware_model import HardwareCostModel

try:  # numpy is an optional accelerator; every result is identical without it
    import numpy as _np
except ModuleNotFoundError:  # pragma: no cover - the container ships numpy
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wcet.cache import SystemResultCache, WcetAnalysisCache

#: Below this many (task, sharer) pairs the double loop beats the cost of
#: building numpy arrays; both backends give identical results either way.
#: Overridable per call (``vectorise_min_pairs``), ambiently
#: (:func:`mhp_options`) or process-wide (``REPRO_MHP_VECTORISE_MIN_PAIRS``).
_VECTORISE_MIN_PAIRS = 2048


def _resolve_vectorise_min_pairs(value: "int | None") -> int:
    if value is None:
        value = _MHP_OPTIONS["vectorise_min_pairs"]
    if value is None:
        raw = os.environ.get("REPRO_MHP_VECTORISE_MIN_PAIRS")
        if raw:
            try:
                value = int(raw)
            except ValueError as exc:
                raise SystemWcetError(
                    f"REPRO_MHP_VECTORISE_MIN_PAIRS={raw!r} is not an integer"
                ) from exc
    if value is None:
        return _VECTORISE_MIN_PAIRS
    if value < 0:
        raise SystemWcetError(f"vectorise_min_pairs must be >= 0, got {value}")
    return value


def _resolve_static_pruning(value: "bool | None") -> bool:
    if value is None:
        value = _MHP_OPTIONS["static_pruning"]
    return bool(value) if value is not None else False


@dataclass
class SystemWcetResult:
    """Outcome of the system-level analysis."""

    makespan: float
    task_intervals: dict[str, Interval]
    task_cores: dict[str, int]
    task_effective_wcet: dict[str, float]
    task_contenders: dict[str, int]
    interference_cycles: float
    communication_cycles: float
    iterations: int
    converged: bool
    #: Per-task *isolated* WCET and worst-case shared-access count -- the
    #: inputs of the interference equations.  Carried so the fixed-point
    #: certificate checker (:mod:`repro.analysis.certify.fixed_point_cert`)
    #: can re-apply the equations once without re-running the code-level
    #: analysis.  Defaulted for results built by hand in tests.
    task_base_wcet: dict[str, float] = field(default_factory=dict)
    task_shared_accesses: dict[str, int] = field(default_factory=dict)
    #: Static-MHP contender skeleton used by the fixed point (``None`` when
    #: ``static_pruning`` was off): per task, the sharers that may contend.
    #: Carried so the certificate checkers can (a) restrict their fresh MHP
    #: derivation to the claimed relation and (b) independently re-prove
    #: every excluded pair ordered or footprint-disjoint.
    mhp_allowed: dict[str, tuple[str, ...]] | None = None
    #: Diagnostics of the warm-start path (``None`` for cold runs and
    #: results replayed from the result tier; never serialized).
    warm_info: dict | None = None
    #: Convergence evidence backing the ``converged`` flag: the maximum
    #: absolute change of any task's effective WCET at the last completed
    #: iteration.  Exactly ``0.0`` when converged (the fixed point exits on
    #: dict equality); positive when the iteration cap was hit and the
    #: all-cores-contend fallback engaged.  Round-trips through the result
    #: tier (older cache records default it to 0.0).
    final_delta: float = 0.0
    #: The full per-iteration max-delta curve, collected only while
    #: observability (:mod:`repro.obs`) is enabled -- diagnostic like
    #: ``warm_info``, never serialized.
    iteration_deltas: "tuple[float, ...] | None" = None

    def interval(self, task_id: str) -> Interval:
        return self.task_intervals[task_id]


class SystemWcetError(RuntimeError):
    """Raised when the schedule handed to the analysis is inconsistent."""


def make_edge_latency(
    htg: HierarchicalTaskGraph,
    platform: Platform,
    mapping: dict[str, int],
    contenders: int,
) -> Callable[[str, str], float]:
    """Memoized worst-case latency of one HTG edge between mapped tasks.

    Single source of truth for edge pricing in this module: a payload-free
    edge costs nothing, every other edge costs the platform's worst-case
    transfer latency between the two mapped cores with ``contenders``
    competing cores.  Both :func:`system_level_wcet` and
    :func:`contention_oblivious_bound` price edges through this helper, so
    the two bounds cannot drift on payload or contender semantics.
    """
    table: dict[tuple[str, str], float] = {}

    def comm_delay(src: str, dst: str) -> float:
        key = (src, dst)
        delay = table.get(key)
        if delay is None:
            edge = htg.edge(src, dst)
            payload = edge.payload_bytes if edge is not None else 0
            if payload == 0:
                delay = 0.0
            else:
                delay = platform.communication_latency(
                    payload, mapping[src], mapping[dst], contenders
                )
            table[key] = delay
        return delay

    return comm_delay


class _TimelineBuilder:
    """Static timeline respecting dependences and per-core ordering.

    A Kahn-style event pass over the constraint graph (dependence edges plus
    the per-core predecessor chain): each task is finalized exactly once when
    all its constraints are resolved, so the pass is linear in tasks + edges.
    The computed start/finish times are a function of the predecessors alone,
    so they are independent of the processing order.

    The constraint graph and the worst-case edge delays do not change across
    fixed-point iterations (only the task durations do), so they are resolved
    once at construction; :meth:`build` is then a pure max-plus pass.
    """

    def __init__(
        self,
        htg: HierarchicalTaskGraph,
        mapping: dict[str, int],
        order: dict[int, list[str]],
        comm_delay,
    ) -> None:
        position = {
            tid: (core, idx) for core, tids in order.items() for idx, tid in enumerate(tids)
        }
        for tid in mapping:
            if tid not in position:
                raise SystemWcetError(f"task {tid!r} is mapped but missing from the core order")
        self._position = position

        #: tid -> [(pred, delay)]: dependence constraints with their priced
        #: cross-core delays (0.0 for same-core edges), fixed per analysis
        self._pred_delays: dict[str, list[tuple[str, float]]] = {
            tid: [
                (p, comm_delay(p, tid) if mapping[p] != position[tid][0] else 0.0)
                for p in htg.predecessors(tid)
                if p in position
            ]
            for tid in position
        }
        indegree = {tid: len(ps) for tid, ps in self._pred_delays.items()}
        succs_of: dict[str, list[str]] = {tid: [] for tid in position}
        for tid, ps in self._pred_delays.items():
            for p, _ in ps:
                succs_of[p].append(tid)
        #: core-order chaining: the previous task on the core is one more
        #: constraint (delay-free, same core by construction)
        self._core_prev: dict[str, str] = {}
        for tids in order.values():
            for prev, nxt in zip(tids, tids[1:]):
                succs_of[prev].append(nxt)
                indegree[nxt] += 1
                self._core_prev[nxt] = prev
        self._succs_of = succs_of
        self._indegree = indegree
        self._sources = [tid for tid in position if indegree[tid] == 0]

    def build(self, effective_wcet: dict[str, float]) -> tuple[dict[str, Interval], float]:
        finish: dict[str, float] = {}
        start: dict[str, float] = {}
        indegree = dict(self._indegree)
        core_prev = self._core_prev
        worklist = list(self._sources)
        while worklist:
            tid = worklist.pop()
            prev = core_prev.get(tid)
            ready = finish[prev] if prev is not None else 0.0
            for p, delay in self._pred_delays[tid]:
                ready_p = finish[p] + delay
                if ready_p > ready:
                    ready = ready_p
            start[tid] = ready
            finish[tid] = ready + effective_wcet[tid]
            for nxt in self._succs_of[tid]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    worklist.append(nxt)
        if len(start) < len(self._position):
            raise SystemWcetError("cyclic wait between core order and dependences")
        intervals = {tid: Interval(start[tid], finish[tid]) for tid in start}
        makespan = max((iv.end for iv in intervals.values()), default=0.0)
        return intervals, makespan


# ---------------------------------------------------------------------- #
# MHP contender derivation (one pass per fixed-point iteration)
# ---------------------------------------------------------------------- #
def mhp_contenders_scalar(
    leaf_ids: list[str],
    sharers: list[str],
    mapping: dict[str, int],
    intervals: dict[str, Interval],
) -> dict[str, int]:
    """Reference double loop: distinct other cores with an overlapping sharer."""
    contenders: dict[str, int] = {}
    for tid in leaf_ids:
        other_cores = set()
        for other in sharers:
            if other == tid or mapping[other] == mapping[tid]:
                continue
            if intervals[tid].overlaps(intervals[other]):
                other_cores.add(mapping[other])
        contenders[tid] = len(other_cores)
    return contenders


def mhp_contenders_vectorised(
    leaf_ids: list[str],
    sharers: list[str],
    mapping: dict[str, int],
    intervals: dict[str, Interval],
) -> dict[str, int]:
    """Vectorised contender pass, bit-for-bit equal to the double loop.

    For each core hosting sharers, sort the sharer window starts and ends
    once, then answer "does any sharer window on this core overlap task t's
    window ``[s, e)``?" for *all* tasks with two ``searchsorted`` calls:
    the overlap count is ``#(starts < e) - #(ends <= s)``.  Summing the
    resulting booleans over cores (minus the task's own core) yields the
    number of distinct contending cores.  Only float *comparisons* are
    involved, so the counts match the scalar pass exactly.
    """
    if _np is None:  # pragma: no cover - the container ships numpy
        return mhp_contenders_scalar(leaf_ids, sharers, mapping, intervals)

    query_starts = _np.fromiter(
        (intervals[tid].start for tid in leaf_ids), dtype=_np.float64, count=len(leaf_ids)
    )
    query_ends = _np.fromiter(
        (intervals[tid].end for tid in leaf_ids), dtype=_np.float64, count=len(leaf_ids)
    )
    own_core = _np.fromiter(
        (mapping[tid] for tid in leaf_ids), dtype=_np.int64, count=len(leaf_ids)
    )

    per_core: dict[int, list[str]] = {}
    for sid in sharers:
        per_core.setdefault(mapping[sid], []).append(sid)

    counts = _np.zeros(len(leaf_ids), dtype=_np.int64)
    for core, sids in per_core.items():
        starts = _np.sort(
            _np.fromiter((intervals[s].start for s in sids), dtype=_np.float64, count=len(sids))
        )
        ends = _np.sort(
            _np.fromiter((intervals[s].end for s in sids), dtype=_np.float64, count=len(sids))
        )
        overlapping = (
            _np.searchsorted(starts, query_ends, side="left")
            - _np.searchsorted(ends, query_starts, side="right")
        ) > 0
        # a task never contends with its own core (this also removes the
        # task's own window from its count, exactly like the double loop)
        counts += overlapping & (own_core != core)
    return {tid: int(counts[i]) for i, tid in enumerate(leaf_ids)}


def _validate_mhp_backend(mhp_backend: str) -> None:
    """Single authority on backend validity (shared by the early check on
    the cache-hit path and the actual dispatch)."""
    if mhp_backend not in ("auto", "numpy", "scalar"):
        raise SystemWcetError(f"unknown mhp_backend {mhp_backend!r}")
    if mhp_backend == "numpy" and _np is None:
        raise SystemWcetError("mhp_backend='numpy' requested but numpy is unavailable")


def _pick_mhp_pass(
    mhp_backend: str, num_tasks: int, num_sharers: int, min_pairs: "int | None" = None
):
    _validate_mhp_backend(mhp_backend)
    if min_pairs is None:
        min_pairs = _VECTORISE_MIN_PAIRS
    if mhp_backend == "scalar":
        return mhp_contenders_scalar
    if mhp_backend == "numpy":
        return mhp_contenders_vectorised
    if _np is not None and num_tasks * num_sharers >= min_pairs:
        return mhp_contenders_vectorised
    return mhp_contenders_scalar


def mhp_contenders_pruned_scalar(
    leaf_ids: list[str],
    allowed: dict[str, tuple[str, ...]],
    mapping: dict[str, int],
    intervals: dict[str, Interval],
) -> dict[str, int]:
    """Double loop over the statically pruned contender skeleton.

    ``allowed[tid]`` already excludes the task itself, same-core sharers,
    dependence-ordered pairs and (optionally) footprint-disjoint pairs, so
    only window overlap remains to be tested -- with the same strict float
    comparisons as the unpruned passes.
    """
    contenders: dict[str, int] = {}
    for tid in leaf_ids:
        window = intervals[tid]
        other_cores = set()
        for other in allowed.get(tid, ()):
            if window.overlaps(intervals[other]):
                other_cores.add(mapping[other])
        contenders[tid] = len(other_cores)
    return contenders


def _make_pruned_mhp_pass(
    leaf_ids: list[str],
    allowed: dict[str, tuple[str, ...]],
    mapping: dict[str, int],
    mhp_backend: str,
    min_pairs: int,
):
    """Build an MHP pass over the pruned pair skeleton.

    Returns a callable with the ``mhp_contenders_*`` signature (the
    ``sharers`` argument is ignored -- the skeleton replaces it).  The
    vectorised variant flattens the skeleton into index arrays once and per
    iteration answers every pair's overlap test with one vector comparison,
    then counts distinct contending cores per task via a boolean
    (task, core) incidence matrix -- identical strict comparisons, so it is
    bit-for-bit equal to the pruned double loop.
    """
    total_pairs = sum(len(allowed.get(tid, ())) for tid in leaf_ids)
    use_numpy = mhp_backend == "numpy" or (
        mhp_backend == "auto" and _np is not None and total_pairs >= min_pairs
    )
    if not use_numpy or _np is None or total_pairs == 0:

        def scalar_pass(ids, sharers, mapping_, intervals):
            del sharers
            return mhp_contenders_pruned_scalar(ids, allowed, mapping_, intervals)

        return scalar_pass

    index = {tid: i for i, tid in enumerate(leaf_ids)}
    core_slots = max(mapping[tid] for tid in leaf_ids) + 1
    pair_task: list[int] = []
    pair_other: list[int] = []
    pair_slot: list[int] = []
    for tid in leaf_ids:
        i = index[tid]
        for other in allowed.get(tid, ()):
            pair_task.append(i)
            pair_other.append(index[other])
            pair_slot.append(i * core_slots + mapping[other])
    task_idx = _np.asarray(pair_task, dtype=_np.int64)
    other_idx = _np.asarray(pair_other, dtype=_np.int64)
    slot_idx = _np.asarray(pair_slot, dtype=_np.int64)

    def vector_pass(ids, sharers, mapping_, intervals):
        del sharers, mapping_
        starts = _np.fromiter(
            (intervals[tid].start for tid in ids), dtype=_np.float64, count=len(ids)
        )
        ends = _np.fromiter(
            (intervals[tid].end for tid in ids), dtype=_np.float64, count=len(ids)
        )
        overlap = (starts[task_idx] < ends[other_idx]) & (
            starts[other_idx] < ends[task_idx]
        )
        hit = _np.zeros(len(ids) * core_slots, dtype=bool)
        hit[slot_idx[overlap]] = True
        counts = hit.reshape(len(ids), core_slots).sum(axis=1)
        return {tid: int(counts[i]) for i, tid in enumerate(ids)}

    return vector_pass


def _certify_replayed_result(
    result: SystemWcetResult,
    htg: HierarchicalTaskGraph,
    platform: Platform,
    order: dict[int, list[str]],
    function: "Function | None" = None,
) -> None:
    """Reject a cache-served result the certificate checkers refute.

    A result carrying a static-MHP skeleton is additionally checked by the
    contention-certificate checker, which independently re-proves every
    excluded pair ordered or footprint-disjoint (requires ``function``).

    Imported lazily: the certify package depends on this module's result
    type, and the common (non-certifying) path must not pay the import.
    """
    from repro.analysis.certify import (
        CertificationError,
        build_fixed_point_certificate,
        check_fixed_point_certificate,
    )

    certificate = build_fixed_point_certificate(result, order, platform, htg)
    report = check_fixed_point_certificate(certificate, htg, platform)
    if report.count("error"):
        raise CertificationError(
            "memoized system-level result failed certification on replay: "
            + "; ".join(str(f) for f in report.findings if f.severity == "error"),
            report=report,
        )
    if result.mhp_allowed is not None and function is not None:
        from repro.analysis.certify import (
            build_contention_certificate,
            check_contention_certificate,
        )

        contention = build_contention_certificate(result, htg, function)
        contention_report = check_contention_certificate(contention, htg, function)
        if contention_report.count("error"):
            raise CertificationError(
                "memoized system-level result failed contention certification "
                "on replay: "
                + "; ".join(
                    str(f)
                    for f in contention_report.findings
                    if f.severity == "error"
                ),
                report=contention_report,
            )


#: Ambient warm-start hint (see :func:`warm_start_hint`).  A plain module
#: global: sweeps parallelise across *processes*, so per-thread state is
#: not needed, and the hint must reach :func:`system_level_wcet` calls made
#: deep inside scheduler implementations without threading a parameter
#: through every ``build()`` signature.
_WARM_HINT: "SystemWcetResult | None" = None

#: Ambient MHP options (same module-global pattern and rationale as
#: ``_WARM_HINT``): the pipeline's schedule stage sets them from
#: ``ToolchainConfig`` so the ``system_level_wcet`` calls made deep inside
#: scheduler implementations pick them up without a signature change on
#: every scheduler plugin.
_MHP_OPTIONS: dict = {"static_pruning": None, "vectorise_min_pairs": None}


@contextmanager
def mhp_options(
    static_pruning: "bool | None" = None,
    vectorise_min_pairs: "int | None" = None,
) -> Iterator[None]:
    """Ambiently set MHP defaults for nested :func:`system_level_wcet` calls.

    ``None`` leaves the enclosing value in place.  Explicit keyword
    arguments to :func:`system_level_wcet` always win over the ambient
    values, which in turn win over the module defaults (``static_pruning``
    off; ``vectorise_min_pairs`` from ``REPRO_MHP_VECTORISE_MIN_PAIRS`` or
    the built-in threshold).
    """
    previous = dict(_MHP_OPTIONS)
    if static_pruning is not None:
        _MHP_OPTIONS["static_pruning"] = static_pruning
    if vectorise_min_pairs is not None:
        _MHP_OPTIONS["vectorise_min_pairs"] = vectorise_min_pairs
    try:
        yield
    finally:
        _MHP_OPTIONS.clear()
        _MHP_OPTIONS.update(previous)


@contextmanager
def warm_start_hint(result: "SystemWcetResult | None") -> Iterator[None]:
    """Ambiently offer ``result`` as a warm start to nested fixed points.

    Used by :meth:`repro.core.pipeline.Pipeline.run_incremental` around the
    schedule stage: the scheduler's internal :func:`system_level_wcet` calls
    pick the hint up via the ``warm_start`` default.  Safe for arbitrary
    candidate mappings -- the dirty-core detection reduces the seed to the
    cold one whenever the warm result's per-core task sets or WCETs do not
    match, and every warm-seeded result is certificate-checked.
    """
    global _WARM_HINT
    previous = _WARM_HINT
    _WARM_HINT = result
    try:
        yield
    finally:
        _WARM_HINT = previous


def _warm_seed(
    warm: SystemWcetResult,
    leaf_ids: list[str],
    mapping: dict[str, int],
    order: dict[int, list[str]],
    base_wcet: dict[str, float],
    shared_accesses: dict[str, int],
) -> tuple[dict[str, float], dict[str, int], set[int]] | None:
    """Seed state from a previous converged result, or ``None`` when useless.

    A core is *dirty* when its mapped task set changed or any of its tasks'
    code-level inputs (isolated WCET, shared-access count) differ from the
    witnesses carried by the previous result; dirty-core tasks seed from the
    cold state (base WCET, zero contenders), clean-core tasks from the
    previous converged state.  Returns ``None`` when every core is dirty --
    the seed would equal the cold one, so the caller should just run cold.
    """
    prev_core_tasks: dict[int, set[str]] = {}
    for tid, core in warm.task_cores.items():
        prev_core_tasks.setdefault(core, set()).add(tid)
    dirty_cores: set[int] = set()
    for core, tids in order.items():
        if set(tids) != prev_core_tasks.get(core, set()):
            dirty_cores.add(core)
            continue
        for tid in tids:
            if (
                warm.task_base_wcet.get(tid) != base_wcet[tid]
                or warm.task_shared_accesses.get(tid) != shared_accesses[tid]
                or tid not in warm.task_effective_wcet
                or tid not in warm.task_contenders
            ):
                dirty_cores.add(core)
                break
    if dirty_cores >= set(order):
        return None
    effective = {
        tid: base_wcet[tid]
        if mapping[tid] in dirty_cores
        else warm.task_effective_wcet[tid]
        for tid in leaf_ids
    }
    contenders = {
        tid: 0 if mapping[tid] in dirty_cores else warm.task_contenders[tid]
        for tid in leaf_ids
    }
    return effective, contenders, dirty_cores


def _warm_result_certified(
    result: SystemWcetResult,
    htg: HierarchicalTaskGraph,
    platform: Platform,
    order: dict[int, list[str]],
) -> bool:
    """One independent re-application of the interference equations.

    The warm-started fixed point is only *reused* when the PR 7 certificate
    checker accepts it, so reuse is proved sound rather than assumed.
    """
    from repro.analysis.certify import (
        build_fixed_point_certificate,
        check_fixed_point_certificate,
    )

    certificate = build_fixed_point_certificate(result, order, platform, htg)
    report = check_fixed_point_certificate(certificate, htg, platform)
    return report.count("error") == 0


def system_level_wcet(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    mapping: dict[str, int],
    order: dict[int, list[str]],
    storage_override: dict[str, Storage] | None = None,
    max_iterations: int = 25,
    cache: "WcetAnalysisCache | None" = None,
    mhp_backend: str = "auto",
    result_cache: "SystemResultCache | None | bool" = None,
    certify: bool = False,
    warm_start: "SystemWcetResult | None" = None,
    static_pruning: "bool | None" = None,
    vectorise_min_pairs: "int | None" = None,
) -> SystemWcetResult:
    """Contention-aware multi-core WCET of a mapped and ordered HTG.

    ``mhp_backend`` selects the per-iteration MHP contender pass: ``"auto"``
    (vectorised when numpy is available and the graph is large enough),
    ``"numpy"`` or ``"scalar"``.  The backends are bit-for-bit identical;
    the knob exists for benchmarking and differential testing.
    ``vectorise_min_pairs`` overrides the ``"auto"`` switch-over threshold
    (default: ``REPRO_MHP_VECTORISE_MIN_PAIRS`` or the built-in 2048).

    ``static_pruning`` enables the static interference analysis
    (:mod:`repro.analysis.static_mhp`): dependence-ordered and
    footprint-disjoint pairs are excluded from the contender skeleton once,
    before the iteration, so every MHP pass runs over fewer pairs and the
    resulting bound is never looser than the unpruned one (ordered
    exclusions cannot change any count; footprint exclusions can only
    lower counts).  Off (the default) is the bit-identical differential
    oracle -- it leaves this function's behaviour exactly as before.
    Pruned results carry the skeleton in ``mhp_allowed`` and are memoized
    under result keys distinct from unpruned ones.

    ``result_cache`` controls the system-level result tier
    (:class:`~repro.wcet.cache.SystemResultCache`): the default ``None``
    uses ``cache.system_results`` when a code-level cache is given, so a
    previously analysed identical design point skips the fixed point (and
    the per-task code-level analyses) entirely; pass an explicit tier to
    override, or ``False`` to force a full re-analysis (differential tests
    and MHP-backend benchmarks want the recomputation, not the memo).
    ``mhp_backend`` is not part of the result key -- the backends are
    interchangeable by construction.

    ``certify`` guards the cache-replay path: a memoized result served from
    the result tier is re-validated by the independent fixed-point
    certificate checker (:mod:`repro.analysis.certify`) before it is
    returned, so a corrupt, stale or hand-edited cache entry raises
    :class:`~repro.analysis.certify.CertificationError` instead of being
    silently trusted.  Freshly computed results are returned as-is (the
    pipeline's ``certify`` stage covers them).

    ``warm_start`` (or an ambient :func:`warm_start_hint`) seeds the
    interference fixed point from a previous converged result: tasks on
    *clean* cores (same mapped task set, same code-level WCET witnesses)
    start from their previous effective WCETs and contender counts, tasks
    on dirty cores from the cold state.  Soundness does not rest on the
    seed: the loop's convergence test re-applies the interference equations
    from the *current* inputs, so a warm seed can only converge to a genuine
    fixed point of the current system -- and the converged result is
    additionally re-validated by the independent
    :class:`~repro.analysis.certify.FixedPointCertificate` checker before it
    is returned (refutation or non-convergence falls back to the cold
    iteration).  Warm-seeded results are *not* stored in the result tier:
    when the interference equations admit several fixed points a warm seed
    may legitimately land on a different one than the cold seed, and the
    content-addressed tier must only ever serve the cold answer.
    """
    # validate the backend up front: a warm result-cache hit returns early,
    # and error behaviour must not depend on the cache state
    _validate_mhp_backend(mhp_backend)
    use_pruning = _resolve_static_pruning(static_pruning)
    min_pairs = _resolve_vectorise_min_pairs(vectorise_min_pairs)

    storage_override = storage_override or {}
    leaf_ids = [t.task_id for t in htg.leaf_tasks()]
    missing = [tid for tid in leaf_ids if tid not in mapping]
    if missing:
        raise SystemWcetError(f"tasks without a mapping: {missing}")

    models = {
        core_id: HardwareCostModel(platform, core_id, storage_override)
        for core_id in {mapping[tid] for tid in leaf_ids}
    }
    num_cores = platform.num_cores
    comm_contenders = max(0, num_cores - 1)
    # built before the memo lookup so the key derivation and the analysis
    # share one memoized edge-pricing table (edges are priced lazily, so a
    # warm hit pays nothing here)
    comm_delay = make_edge_latency(htg, platform, mapping, comm_contenders)

    result_tier: "SystemResultCache | None"
    if result_cache is True or result_cache is None:
        # boolean opt-in == the default derivation from the code-level cache
        result_tier = cache.system_results if cache is not None else None
    elif result_cache is False:
        result_tier = None
    else:
        result_tier = result_cache
    result_key: str | None = None
    if result_tier is not None:
        result_key = result_tier.result_key(
            htg,
            function,
            platform,
            mapping,
            order,
            storage_override=storage_override,
            max_iterations=max_iterations,
            models=models,
            comm_delay=comm_delay,
            static_pruning=use_pruning,
        )
        memoized = result_tier.get(result_key)
        if obs.obs_enabled():
            obs.metrics().counter(
                "system_cache.hits" if memoized is not None else "system_cache.misses"
            ).inc()
        if memoized is not None:
            if certify:
                _certify_replayed_result(memoized, htg, platform, order, function)
            return memoized
    base_wcet: dict[str, float] = {}
    shared_accesses: dict[str, int] = {}
    for tid in leaf_ids:
        task = htg.task(tid)
        model = models[mapping[tid]]
        breakdown = analyze_task_wcet(task, function, model, cache=cache)
        base_wcet[tid] = breakdown.total
        shared_accesses[tid] = breakdown.shared_accesses

    # only tasks that actually touch shared resources can contend
    sharers = [tid for tid in leaf_ids if shared_accesses[tid] > 0]
    allowed: dict[str, tuple[str, ...]] | None = None
    pairs_per_pass = 0
    if use_pruning:
        # imported lazily for the same reason as the certify machinery: the
        # analysis package depends on this module's types
        from repro.analysis.static_mhp import compute_static_mhp

        relation = compute_static_mhp(htg, function, mapping, sharers=sharers)
        allowed = relation.allowed
        if obs.obs_enabled():
            registry = obs.metrics()
            registry.counter("mhp.pairs_candidate").inc(relation.candidate_pairs)
            registry.counter("mhp.pairs_kept").inc(relation.kept_pairs)
            registry.counter("mhp.pairs_pruned").inc(
                relation.candidate_pairs - relation.kept_pairs
            )
            pairs_per_pass = sum(len(v) for v in allowed.values())
        mhp_pass = _make_pruned_mhp_pass(
            leaf_ids, allowed, mapping, mhp_backend, min_pairs
        )
    else:
        if obs.obs_enabled():
            # O(tasks + sharers) pair count: for each task every sharer on a
            # *different* core is a candidate (sid == tid shares its own core,
            # so the per-core tally already excludes it)
            sharers_per_core = Counter(mapping[sid] for sid in sharers)
            pairs_per_pass = sum(
                len(sharers) - sharers_per_core.get(mapping[tid], 0)
                for tid in leaf_ids
            )
            obs.metrics().counter("mhp.pairs_candidate").inc(pairs_per_pass)
        mhp_pass = _pick_mhp_pass(mhp_backend, len(leaf_ids), len(sharers), min_pairs)
    timeline = _TimelineBuilder(htg, mapping, order, comm_delay)

    def iterate(effective: dict[str, float], contenders: dict[str, int]) -> tuple[
        dict[str, float],
        dict[str, int],
        dict[str, Interval],
        float,
        int,
        bool,
        float,
        "tuple[float, ...] | None",
    ]:
        intervals: dict[str, Interval] = {}
        makespan = 0.0
        converged = False
        iterations = 0
        final_delta = 0.0
        obs_on = obs.obs_enabled()
        deltas: list[float] = []
        fp_span = obs.span(
            "fixed_point", tasks=len(leaf_ids), sharers=len(sharers), pruned=use_pruning
        )
        with fp_span:
            for iterations in range(1, max_iterations + 1):
                iter_start = time.perf_counter() if obs_on else 0.0
                intervals, makespan = timeline.build(effective)
                new_contenders = mhp_pass(leaf_ids, sharers, mapping, intervals)
                new_effective = {
                    tid: base_wcet[tid]
                    + shared_accesses[tid]
                    * models[mapping[tid]].shared_access_penalty(new_contenders[tid])
                    for tid in leaf_ids
                }
                if obs_on or iterations == max_iterations:
                    # the max-delta is evidence for the converged flag; off the
                    # observed path it is only needed at the iteration cap
                    if not leaf_ids:
                        final_delta = 0.0
                    elif iterations == 1:
                        # the seed dict (warm start / base WCETs) has no
                        # guaranteed key order, so go through the keys once
                        final_delta = max(
                            abs(new_effective[t] - effective[t]) for t in leaf_ids
                        )
                    else:
                        # ``effective`` is last iteration's ``new_effective``:
                        # identical insertion order, so the value views align
                        # (C-level map, the per-iteration observed hot path)
                        final_delta = max(
                            map(
                                abs,
                                map(
                                    operator.sub,
                                    new_effective.values(),
                                    effective.values(),
                                ),
                            )
                        )
                if obs_on:
                    deltas.append(final_delta)
                    obs.trace_complete(
                        "fixed_point.iteration",
                        iter_start,
                        time.perf_counter() - iter_start,
                        {"iteration": iterations, "max_delta": final_delta},
                    )
                    obs.trace_counter("fixed_point.max_delta", {"delta": final_delta})
                if new_effective == effective and new_contenders == contenders:
                    converged = True
                    contenders = new_contenders
                    final_delta = 0.0
                    break
                effective = new_effective
                contenders = new_contenders
            fp_span.set(iterations=iterations, converged=converged)
        if obs_on:
            registry = obs.metrics()
            registry.counter("fixed_point.runs").inc()
            registry.counter("fixed_point.iterations").inc(iterations)
            if not converged:
                registry.counter("fixed_point.not_converged").inc()
            registry.histogram("fixed_point.final_delta").observe(final_delta)
            if pairs_per_pass:
                registry.counter("mhp.pairs_tested").inc(pairs_per_pass * iterations)
        return (
            effective,
            contenders,
            intervals,
            makespan,
            iterations,
            converged,
            final_delta,
            tuple(deltas) if obs_on else None,
        )

    communication = sum(
        comm_delay(e.src, e.dst)
        for e in htg.edges
        if e.src in mapping and e.dst in mapping and mapping[e.src] != mapping[e.dst]
    )

    def build_result(
        effective: dict[str, float],
        contenders: dict[str, int],
        intervals: dict[str, Interval],
        makespan: float,
        iterations: int,
        converged: bool,
        warm_info: dict | None,
        final_delta: float = 0.0,
        iteration_deltas: "tuple[float, ...] | None" = None,
    ) -> SystemWcetResult:
        return SystemWcetResult(
            makespan=makespan,
            task_intervals=intervals,
            task_cores=dict(mapping),
            task_effective_wcet=effective,
            task_contenders=contenders,
            interference_cycles=sum(
                effective[tid] - base_wcet[tid] for tid in leaf_ids
            ),
            communication_cycles=communication,
            iterations=iterations,
            converged=converged,
            task_base_wcet=dict(base_wcet),
            task_shared_accesses=dict(shared_accesses),
            mhp_allowed=allowed,
            warm_info=warm_info,
            final_delta=final_delta,
            iteration_deltas=iteration_deltas,
        )

    if warm_start is None:
        warm_start = _WARM_HINT
    warm_info: dict | None = None
    if warm_start is not None:
        seed = _warm_seed(
            warm_start, leaf_ids, mapping, order, base_wcet, shared_accesses
        )
        if seed is None:
            warm_info = {"warm_started": False, "fallback": "all_cores_dirty"}
        else:
            seed_effective, seed_contenders, dirty_cores = seed
            (
                effective,
                contenders,
                intervals,
                makespan,
                iterations,
                converged,
                final_delta,
                iteration_deltas,
            ) = iterate(seed_effective, seed_contenders)
            if converged:
                candidate = build_result(
                    effective,
                    contenders,
                    intervals,
                    makespan,
                    iterations,
                    True,
                    warm_info={
                        "warm_started": True,
                        "dirty_cores": sorted(dirty_cores),
                        "clean_cores": sorted(set(order) - dirty_cores),
                        "iterations": iterations,
                        "certified": True,
                    },
                    final_delta=final_delta,
                    iteration_deltas=iteration_deltas,
                )
                if _warm_result_certified(candidate, htg, platform, order):
                    # deliberately NOT stored in the result tier (see docstring)
                    return candidate
                warm_info = {"warm_started": False, "fallback": "refuted"}
            else:
                warm_info = {"warm_started": False, "fallback": "not_converged"}

    (
        effective,
        contenders,
        intervals,
        makespan,
        iterations,
        converged,
        final_delta,
        iteration_deltas,
    ) = iterate(dict(base_wcet), {tid: 0 for tid in leaf_ids})
    if not converged:
        # Safety fall-back: assume every other core contends on every access.
        # The reported contender counts are re-derived from that assumption so
        # they stay consistent with the worst-case effective WCETs below (for
        # a monotone interconnect penalty the max() cannot pick the stale
        # mid-iteration value; it only guards exotic non-monotone models).
        # Under static pruning the per-task worst case is the number of
        # distinct cores in the statically allowed contender skeleton -- a
        # proved upper bound on any derivable count, so the fall-back stays
        # sound and never looser than the unpruned all-cores one.
        if allowed is None:
            contenders = {tid: comm_contenders for tid in leaf_ids}
        else:
            contenders = {
                tid: len({mapping[s] for s in allowed.get(tid, ())})
                for tid in leaf_ids
            }
        worst = {
            tid: base_wcet[tid]
            + shared_accesses[tid]
            * models[mapping[tid]].shared_access_penalty(contenders[tid])
            for tid in leaf_ids
        }
        effective = {tid: max(effective[tid], worst[tid]) for tid in leaf_ids}
        intervals, makespan = timeline.build(effective)

    result = build_result(
        effective,
        contenders,
        intervals,
        makespan,
        iterations,
        converged,
        warm_info,
        final_delta=final_delta,
        iteration_deltas=iteration_deltas,
    )
    if result_tier is not None and result_key is not None:
        result_tier.put(result_key, result)
    return result


def contention_oblivious_bound(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    mapping: dict[str, int],
    order: dict[int, list[str]],
    cache: "WcetAnalysisCache | None" = None,
) -> float:
    """Naive bound that assumes maximal contention on every shared access.

    This is what a WCET analysis without the parallel-program model must
    assume (it cannot rule out any interleaving): every shared access of every
    task is delayed by all other cores.  Experiment E3 compares this bound
    against the MHP-based system-level bound.
    """
    leaf_ids = [t.task_id for t in htg.leaf_tasks()]
    models = {
        core_id: HardwareCostModel(platform, core_id)
        for core_id in {mapping[tid] for tid in leaf_ids}
    }
    worst_contenders = max(0, platform.num_cores - 1)
    effective = {}
    shared_accesses = {}
    for tid in leaf_ids:
        task = htg.task(tid)
        model = models[mapping[tid]]
        breakdown = analyze_task_wcet(task, function, model, cache=cache)
        shared_accesses[tid] = breakdown.shared_accesses
        effective[tid] = breakdown.total + breakdown.shared_accesses * model.shared_access_penalty(
            worst_contenders
        )

    comm_delay = make_edge_latency(htg, platform, mapping, worst_contenders)
    _, makespan = _TimelineBuilder(htg, mapping, order, comm_delay).build(effective)
    return makespan
