"""System-level (contention-aware) multi-core WCET analysis.

Given a mapping and per-core ordering of HTG tasks, this analysis

1. recomputes each task's isolated WCET on the core it is mapped to,
2. derives the static schedule timeline (dependences + core ordering +
   worst-case communication latencies),
3. runs a may-happen-in-parallel (MHP) analysis on the timeline: two tasks may
   interfere when they are mapped to different cores and their time windows
   overlap (dependent tasks can never overlap by construction),
4. charges every task an interference penalty equal to its worst-case number
   of shared accesses times the interconnect's per-access penalty for the
   observed number of contending cores, and
5. iterates -- inflating a task stretches its window, which may create new
   overlaps -- until a fixed point (interference is monotone, so the
   iteration converges; a safety cap guards against pathological cases by
   falling back to the all-cores-contend worst case).

The result's makespan is the guaranteed end-to-end WCET of the parallel
program (paper Section II-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.adl.architecture import Platform
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.program import Function, Storage
from repro.utils.intervals import Interval
from repro.wcet.code_level import analyze_task_wcet
from repro.wcet.hardware_model import HardwareCostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wcet.cache import WcetAnalysisCache


@dataclass
class SystemWcetResult:
    """Outcome of the system-level analysis."""

    makespan: float
    task_intervals: dict[str, Interval]
    task_cores: dict[str, int]
    task_effective_wcet: dict[str, float]
    task_contenders: dict[str, int]
    interference_cycles: float
    communication_cycles: float
    iterations: int
    converged: bool

    def interval(self, task_id: str) -> Interval:
        return self.task_intervals[task_id]


class SystemWcetError(RuntimeError):
    """Raised when the schedule handed to the analysis is inconsistent."""


def _build_timeline(
    htg: HierarchicalTaskGraph,
    mapping: dict[str, int],
    order: dict[int, list[str]],
    effective_wcet: dict[str, float],
    comm_delay,
) -> tuple[dict[str, Interval], float]:
    """Static timeline respecting dependences and per-core ordering.

    A Kahn-style event pass over the constraint graph (dependence edges plus
    the per-core predecessor chain): each task is finalized exactly once when
    all its constraints are resolved, so the pass is linear in tasks + edges.
    The computed start/finish times are a function of the predecessors alone,
    so they are independent of the processing order.
    """
    position = {tid: (core, idx) for core, tids in order.items() for idx, tid in enumerate(tids)}
    for tid in mapping:
        if tid not in position:
            raise SystemWcetError(f"task {tid!r} is mapped but missing from the core order")

    preds_of = {
        tid: [p for p in htg.predecessors(tid) if p in position] for tid in position
    }
    indegree = {tid: len(ps) for tid, ps in preds_of.items()}
    succs_of: dict[str, list[str]] = {tid: [] for tid in position}
    for tid, ps in preds_of.items():
        for p in ps:
            succs_of[p].append(tid)
    # core-order chaining: the previous task on the core is one more constraint
    for tids in order.values():
        for prev, nxt in zip(tids, tids[1:]):
            succs_of[prev].append(nxt)
            indegree[nxt] += 1

    finish: dict[str, float] = {}
    start: dict[str, float] = {}
    worklist = [tid for tid in position if indegree[tid] == 0]
    while worklist:
        tid = worklist.pop()
        core, idx = position[tid]
        ready_core = finish[order[core][idx - 1]] if idx > 0 else 0.0
        ready_deps = 0.0
        for p in preds_of[tid]:
            delay = comm_delay(p, tid) if mapping[p] != core else 0.0
            ready_deps = max(ready_deps, finish[p] + delay)
        s = max(ready_core, ready_deps)
        start[tid] = s
        finish[tid] = s + effective_wcet[tid]
        for nxt in succs_of[tid]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                worklist.append(nxt)
    if len(start) < len(position):
        raise SystemWcetError("cyclic wait between core order and dependences")
    intervals = {tid: Interval(start[tid], finish[tid]) for tid in start}
    makespan = max((iv.end for iv in intervals.values()), default=0.0)
    return intervals, makespan


def system_level_wcet(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    mapping: dict[str, int],
    order: dict[int, list[str]],
    storage_override: dict[str, Storage] | None = None,
    max_iterations: int = 25,
    cache: "WcetAnalysisCache | None" = None,
) -> SystemWcetResult:
    """Contention-aware multi-core WCET of a mapped and ordered HTG."""
    storage_override = storage_override or {}
    leaf_ids = [t.task_id for t in htg.leaf_tasks()]
    missing = [tid for tid in leaf_ids if tid not in mapping]
    if missing:
        raise SystemWcetError(f"tasks without a mapping: {missing}")

    models = {
        core_id: HardwareCostModel(platform, core_id, storage_override)
        for core_id in {mapping[tid] for tid in leaf_ids}
    }
    base_wcet: dict[str, float] = {}
    shared_accesses: dict[str, int] = {}
    for tid in leaf_ids:
        task = htg.task(tid)
        model = models[mapping[tid]]
        breakdown = analyze_task_wcet(task, function, model, cache=cache)
        base_wcet[tid] = breakdown.total
        shared_accesses[tid] = breakdown.shared_accesses

    num_cores = platform.num_cores
    comm_contenders = max(0, num_cores - 1)
    comm_cache: dict[tuple[str, str], float] = {}

    def comm_delay(src: str, dst: str) -> float:
        key = (src, dst)
        if key not in comm_cache:
            edge = htg.edge(src, dst)
            payload = edge.payload_bytes if edge is not None else 0
            if payload == 0:
                comm_cache[key] = 0.0
            else:
                comm_cache[key] = platform.communication_latency(
                    payload, mapping[src], mapping[dst], comm_contenders
                )
        return comm_cache[key]

    effective = dict(base_wcet)
    contenders: dict[str, int] = {tid: 0 for tid in leaf_ids}
    intervals: dict[str, Interval] = {}
    makespan = 0.0
    converged = False
    iterations = 0

    # only tasks that actually touch shared resources can contend
    sharers = [tid for tid in leaf_ids if shared_accesses[tid] > 0]
    for iterations in range(1, max_iterations + 1):
        intervals, makespan = _build_timeline(htg, mapping, order, effective, comm_delay)
        new_contenders: dict[str, int] = {}
        for tid in leaf_ids:
            other_cores = set()
            for other in sharers:
                if other == tid or mapping[other] == mapping[tid]:
                    continue
                if intervals[tid].overlaps(intervals[other]):
                    other_cores.add(mapping[other])
            new_contenders[tid] = len(other_cores)
        new_effective = {
            tid: base_wcet[tid]
            + shared_accesses[tid] * models[mapping[tid]].shared_access_penalty(new_contenders[tid])
            for tid in leaf_ids
        }
        if new_effective == effective and new_contenders == contenders:
            converged = True
            contenders = new_contenders
            break
        effective = new_effective
        contenders = new_contenders
    if not converged:
        # Safety fall-back: assume every other core contends on every access.
        worst = {
            tid: base_wcet[tid]
            + shared_accesses[tid]
            * models[mapping[tid]].shared_access_penalty(comm_contenders)
            for tid in leaf_ids
        }
        effective = {tid: max(effective[tid], worst[tid]) for tid in leaf_ids}
        intervals, makespan = _build_timeline(htg, mapping, order, effective, comm_delay)

    interference = sum(effective[tid] - base_wcet[tid] for tid in leaf_ids)
    communication = sum(
        comm_delay(e.src, e.dst)
        for e in htg.edges
        if e.src in mapping and e.dst in mapping and mapping[e.src] != mapping[e.dst]
    )
    return SystemWcetResult(
        makespan=makespan,
        task_intervals=intervals,
        task_cores=dict(mapping),
        task_effective_wcet=effective,
        task_contenders=contenders,
        interference_cycles=interference,
        communication_cycles=communication,
        iterations=iterations,
        converged=converged or True,
    )


def contention_oblivious_bound(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    mapping: dict[str, int],
    order: dict[int, list[str]],
    cache: "WcetAnalysisCache | None" = None,
) -> float:
    """Naive bound that assumes maximal contention on every shared access.

    This is what a WCET analysis without the parallel-program model must
    assume (it cannot rule out any interleaving): every shared access of every
    task is delayed by all other cores.  Experiment E3 compares this bound
    against the MHP-based system-level bound.
    """
    leaf_ids = [t.task_id for t in htg.leaf_tasks()]
    models = {
        core_id: HardwareCostModel(platform, core_id)
        for core_id in {mapping[tid] for tid in leaf_ids}
    }
    worst_contenders = max(0, platform.num_cores - 1)
    effective = {}
    shared_accesses = {}
    for tid in leaf_ids:
        task = htg.task(tid)
        model = models[mapping[tid]]
        breakdown = analyze_task_wcet(task, function, model, cache=cache)
        shared_accesses[tid] = breakdown.shared_accesses
        effective[tid] = breakdown.total + breakdown.shared_accesses * model.shared_access_penalty(
            worst_contenders
        )

    def comm_delay(src: str, dst: str) -> float:
        edge = htg.edge(src, dst)
        payload = edge.payload_bytes if edge is not None else 0
        if payload == 0:
            return 0.0
        return platform.communication_latency(payload, mapping[src], mapping[dst], worst_contenders)

    _, makespan = _build_timeline(htg, mapping, order, effective, comm_delay)
    return makespan
