"""Code-level (isolated, contention-free) WCET analysis.

The structural algorithm walks the statement tree:

* expression cost = sum of operation costs + memory access costs;
* ``if`` = condition + branch penalty + max(then, else);
* counted loops multiply the body by the worst-case trip count and add the
  per-iteration loop overhead;
* bounded ``while`` loops use their annotated bound.

Because the IR is structured, this bound is exact for the cost model (it is
the longest syntactic path), and it agrees with the IPET formulation on
loop-free code (a property the test suite cross-checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.htg.graph import HierarchicalTaskGraph
from repro.htg.task import Task
from repro.ir.expressions import ArrayRef, Expr
from repro.ir.loops import loop_trip_count
from repro.ir.program import Function
from repro.ir.statements import (
    Assign,
    Block,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    While,
)
from repro.wcet.hardware_model import HardwareCostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wcet.cache import WcetAnalysisCache


@dataclass
class WcetBreakdown:
    """WCET of a code fragment split into its cost components."""

    total: float = 0.0
    compute: float = 0.0
    memory: float = 0.0
    control: float = 0.0
    shared_accesses: int = 0

    def add(self, other: "WcetBreakdown") -> None:
        self.total += other.total
        self.compute += other.compute
        self.memory += other.memory
        self.control += other.control
        self.shared_accesses += other.shared_accesses

    def scaled(self, factor: float) -> "WcetBreakdown":
        return WcetBreakdown(
            total=self.total * factor,
            compute=self.compute * factor,
            memory=self.memory * factor,
            control=self.control * factor,
            shared_accesses=int(round(self.shared_accesses * factor)),
        )

    def maxed(self, other: "WcetBreakdown") -> "WcetBreakdown":
        """Worst branch of a conditional: the breakdown with the larger total."""
        return self if self.total >= other.total else other


def _expr_cost(expr: Expr, function: Function, model: HardwareCostModel, average: bool) -> WcetBreakdown:
    result = WcetBreakdown()
    for op, count in expr.operation_count().items():
        cycles = model.average_op_cycles(op) if average else model.op_cycles(op)
        result.compute += cycles * count
    for ref in expr.array_reads():
        if average:
            cycles = model.average_read_cycles(function, ref.array)
        else:
            cycles = model.read_cycles(function, ref.array)
        result.memory += cycles
        if model.is_shared(function, ref.array):
            result.shared_accesses += 1
    result.total = result.compute + result.memory
    return result


def statement_wcet(
    stmt: Stmt, function: Function, model: HardwareCostModel, average: bool = False
) -> WcetBreakdown:
    """Worst-case cost of one statement subtree on the given core."""
    if isinstance(stmt, Assign):
        result = WcetBreakdown()
        result.add(_expr_cost(stmt.value, function, model, average))
        if isinstance(stmt.target, ArrayRef):
            for idx in stmt.target.indices:
                result.add(_expr_cost(idx, function, model, average))
            write_cycles = model.write_cycles(function, stmt.target.array)
            if average and model.is_shared(function, stmt.target.array):
                write_cycles = max(1.0, write_cycles / 2.0)
            result.memory += write_cycles
            result.total += write_cycles
            if model.is_shared(function, stmt.target.array):
                result.shared_accesses += 1
        else:
            result.compute += 1.0
            result.total += 1.0
        return result
    if isinstance(stmt, (Return, ExprStmt)):
        result = WcetBreakdown()
        for expr in stmt.expressions():
            result.add(_expr_cost(expr, function, model, average))
        return result
    if isinstance(stmt, Block):
        result = WcetBreakdown()
        for child in stmt.stmts:
            result.add(statement_wcet(child, function, model, average))
        return result
    if isinstance(stmt, If):
        result = _expr_cost(stmt.cond, function, model, average)
        branch = WcetBreakdown(total=model.branch_cycles, control=model.branch_cycles)
        result.add(branch)
        then_cost = statement_wcet(stmt.then_body, function, model, average)
        else_cost = statement_wcet(stmt.else_body, function, model, average)
        result.add(then_cost.maxed(else_cost))
        return result
    if isinstance(stmt, For):
        trip = loop_trip_count(stmt)
        result = WcetBreakdown()
        result.add(_expr_cost(stmt.lower, function, model, average))
        result.add(_expr_cost(stmt.upper, function, model, average))
        body = statement_wcet(stmt.body, function, model, average)
        overhead = WcetBreakdown(
            total=model.loop_overhead_cycles, control=model.loop_overhead_cycles
        )
        per_iteration = WcetBreakdown()
        per_iteration.add(body)
        per_iteration.add(overhead)
        result.add(per_iteration.scaled(trip))
        return result
    if isinstance(stmt, While):
        result = WcetBreakdown()
        cond = _expr_cost(stmt.cond, function, model, average)
        result.add(cond.scaled(stmt.max_trip_count + 1))
        body = statement_wcet(stmt.body, function, model, average)
        overhead = WcetBreakdown(
            total=model.loop_overhead_cycles, control=model.loop_overhead_cycles
        )
        per_iteration = WcetBreakdown()
        per_iteration.add(body)
        per_iteration.add(overhead)
        result.add(per_iteration.scaled(stmt.max_trip_count))
        return result
    raise TypeError(f"unsupported statement {type(stmt).__name__}")


def analyze_function_wcet(
    function: Function,
    model: HardwareCostModel,
    average: bool = False,
    cache: "WcetAnalysisCache | None" = None,
) -> WcetBreakdown:
    """Isolated WCET (or average-case estimate) of a whole function body."""
    if cache is not None:
        return cache.function_wcet(function, model, average)
    return statement_wcet(function.body, function, model, average)


def analyze_task_wcet(
    task: Task,
    function: Function,
    model: HardwareCostModel,
    average: bool = False,
    cache: "WcetAnalysisCache | None" = None,
) -> WcetBreakdown:
    """Isolated WCET of one HTG task (its statement region)."""
    if cache is not None:
        return cache.task_wcet(task, function, model, average)
    return statement_wcet(task.statements, function, model, average)


def annotate_htg_wcets(
    htg: HierarchicalTaskGraph,
    function: Function,
    model: HardwareCostModel,
    acet_model: HardwareCostModel | None = None,
    cache: "WcetAnalysisCache | None" = None,
) -> None:
    """Fill in ``task.wcet`` (and ``task.acet``) for every task of the HTG.

    On heterogeneous platforms callers should annotate per candidate core;
    here the model's core is used for all tasks, which is exact for
    homogeneous platforms and conservative when the chosen core is the
    slowest one.
    """
    if cache is not None:
        cache.annotate_htg(htg, function, model, acet_model)
        return
    for task in htg.tasks.values():
        if task.is_synthetic:
            task.wcet = 0.0
            task.acet = 0.0
            continue
        task.wcet = analyze_task_wcet(task, function, model).total
        acet = analyze_task_wcet(task, function, acet_model or model, average=True).total
        task.acet = min(acet, task.wcet)
