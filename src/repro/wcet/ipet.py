"""IPET (Implicit Path Enumeration Technique) WCET computation.

The classical formulation used by binary-level analyzers: maximise the sum of
basic-block costs weighted by execution counts, subject to CFG flow
conservation and loop-bound constraints, solved as a linear program.  On our
structured IR it serves as an independent cross-check of the structural
analysis (they must agree on loop-free code and stay within the loop-header
accounting difference otherwise).

The optional :class:`FlowFacts` argument injects results of the value-range
analysis (:mod:`repro.analysis.wcet_facts`): statically infeasible edges are
pinned to ``x_e = 0`` and derived loop bounds override declared ones when
tighter.  Every flow fact only *adds* constraints to a maximisation problem,
so the bound with facts is provably no looser than the plain bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro import obs
from repro.ir.cfg import ControlFlowGraph, build_cfg
from repro.ir.program import Function
from repro.wcet.code_level import statement_wcet, _expr_cost
from repro.wcet.hardware_model import HardwareCostModel


class IpetError(RuntimeError):
    """Raised when the IPET linear program cannot be solved."""


@dataclass
class FlowFacts:
    """Extra path information feeding the IPET LP.

    ``infeasible_edges`` holds stable edge keys (``CFGEdge.key``, i.e.
    ``(src bid, dst bid, kind)``) of edges no execution can take; their
    variables are pinned to zero.  ``loop_bounds`` maps loop-header block
    ids to trip-count bounds; for headers that also carry a declared bound
    the *minimum* of the two is used, and headers without any declared
    bound (CFG built with ``allow_unbounded=True``) are bounded by the fact
    alone.  Facts keyed to edges/blocks absent from the CFG are ignored.
    """

    infeasible_edges: frozenset[tuple[int, int, str]] = frozenset()
    loop_bounds: dict[int, int] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not self.infeasible_edges and not self.loop_bounds


@dataclass
class IpetResult:
    """Outcome of the IPET longest-path computation.

    Beyond the bound itself the result carries the **LP witness** consumed
    by the independent certificate checker
    (:mod:`repro.analysis.certify.ipet_cert`) and by WCET-path reporting:

    * ``edge_counts`` -- the primal solution, execution counts keyed by
      stable edge key (``CFGEdge.key``);
    * ``block_costs`` / ``entry_cost`` -- the per-block cycle costs the
      objective was built from;
    * ``loop_bounds`` -- the *effective* per-header trip bounds actually
      constrained (declared bounds merged with flow facts);
    * ``infeasible_edges`` -- the edge keys pinned to ``x_e = 0``;
    * ``duals`` -- the solver's dual values as an optimality witness, keyed
      semantically (``flow`` per interior block id, ``entry``, ``exit``,
      ``loop`` per header id) so a checker never depends on producer row
      order.  ``None`` when the solver does not expose marginals.
    """

    wcet: float
    block_counts: dict[int, float]
    cfg: ControlFlowGraph
    edge_counts: dict[tuple[int, int, str], float] = field(default_factory=dict)
    block_costs: dict[int, float] = field(default_factory=dict)
    entry_cost: float = 0.0
    loop_bounds: dict[int, int] = field(default_factory=dict)
    infeasible_edges: frozenset[tuple[int, int, str]] = frozenset()
    duals: dict | None = None


def _block_cost(block, function: Function, model: HardwareCostModel) -> float:
    total = 0.0
    for stmt in block.statements:
        total += statement_wcet(stmt, function, model).total
    for cond in block.conditions:
        total += _expr_cost(cond, function, model, average=False).total + model.branch_cycles
    return total


def ipet_wcet(
    function: Function,
    model: HardwareCostModel,
    flow_facts: FlowFacts | None = None,
) -> IpetResult:
    """Compute the WCET of ``function`` through the IPET linear program.

    Variables: execution count ``x_e`` of every CFG edge.  Block counts are
    derived as the sum of incoming edge counts.  Constraints:

    * flow conservation at every block (in-flow == out-flow);
    * the entry block executes exactly once;
    * for every loop header, the back-edge count is at most ``bound`` times
      the count of the entry (non-back) edges into the header;
    * with ``flow_facts``: ``x_e = 0`` for statically infeasible edges, and
      loop bounds are tightened to ``min(declared, derived)``.

    Objective: maximise ``sum(block_cost * block_count)``.
    """
    # With flow facts a loop left unannotated by the front-end may still be
    # bounded by the facts, so defer the loop-bound check to the merge below.
    cfg = build_cfg(function, allow_unbounded=flow_facts is not None)
    edges = cfg.edges
    if not edges:
        raise IpetError(f"function {function.name!r} has an empty CFG")
    edge_index: dict[tuple[int, int, str], int] = {}
    for i, edge in enumerate(edges):
        if edge.key in edge_index:
            raise IpetError(
                f"function {function.name!r} has duplicate CFG edge {edge.key}"
            )
        edge_index[edge.key] = i
    num_vars = len(edges)

    costs = {block.bid: _block_cost(block, function, model) for block in cfg.blocks}

    # Objective: block count = sum of incoming edges (entry handled separately).
    c = np.zeros(num_vars)
    for edge in edges:
        c[edge_index[edge.key]] -= costs[edge.dst.bid]
    entry_cost = costs[cfg.entry.bid] if cfg.entry is not None else 0.0

    a_eq_rows: list[np.ndarray] = []
    b_eq: list[float] = []

    # Flow conservation for every block except entry and exit.
    for block in cfg.blocks:
        if block is cfg.entry or block is cfg.exit:
            continue
        row = np.zeros(num_vars)
        for edge in edges:
            if edge.dst is block:
                row[edge_index[edge.key]] += 1.0
            if edge.src is block:
                row[edge_index[edge.key]] -= 1.0
        a_eq_rows.append(row)
        b_eq.append(0.0)

    # Entry: out-flow is exactly one; exit: in-flow is exactly one.
    row = np.zeros(num_vars)
    for edge in edges:
        if edge.src is cfg.entry:
            row[edge_index[edge.key]] += 1.0
    a_eq_rows.append(row)
    b_eq.append(1.0)

    row = np.zeros(num_vars)
    for edge in edges:
        if edge.dst is cfg.exit:
            row[edge_index[edge.key]] += 1.0
    a_eq_rows.append(row)
    b_eq.append(1.0)

    # Effective loop bounds: declared, tightened/completed by flow facts.
    effective_bounds = dict(cfg.loop_bounds)
    if flow_facts is not None:
        known = {block.bid for block in cfg.blocks}
        for header_bid, bound in flow_facts.loop_bounds.items():
            if header_bid not in known:
                continue
            declared = effective_bounds.get(header_bid)
            effective_bounds[header_bid] = (
                int(bound) if declared is None else min(declared, int(bound))
            )
    unbounded = sorted(set(cfg.back_edges) - set(effective_bounds))
    if unbounded:
        raise IpetError(
            f"function {function.name!r}: loop header block(s) "
            f"{', '.join(f'BB{b}' for b in unbounded)} have no declared or "
            "derived trip-count bound"
        )

    # Loop bounds: back-edge count <= bound * entry-edge count of the header.
    a_ub_rows: list[np.ndarray] = []
    b_ub: list[float] = []
    ub_headers: list[int] = []
    for header_bid, bound in effective_bounds.items():
        ub_headers.append(header_bid)
        header = cfg.block_by_id(header_bid)
        row = np.zeros(num_vars)
        for edge in edges:
            if edge.dst is header and edge.kind == "back":
                row[edge_index[edge.key]] += 1.0
            elif edge.dst is header:
                row[edge_index[edge.key]] -= float(bound)
        a_ub_rows.append(row)
        b_ub.append(0.0)

    bounds: list[tuple[float, float | None]] = [(0, None)] * num_vars
    pinned: set[tuple[int, int, str]] = set()
    if flow_facts is not None:
        for key in flow_facts.infeasible_edges:
            i = edge_index.get(key)
            if i is not None:
                bounds[i] = (0, 0)
                pinned.add(key)

    if obs.obs_enabled():
        registry = obs.metrics()
        registry.counter("ipet.solves").inc()
        registry.histogram("ipet.vars").observe(num_vars)
        registry.histogram("ipet.constraints").observe(len(a_eq_rows) + len(a_ub_rows))
    with obs.span("ipet.solve", function=function.name, vars=num_vars):
        result = linprog(
            c,
            A_eq=np.array(a_eq_rows),
            b_eq=np.array(b_eq),
            A_ub=np.array(a_ub_rows) if a_ub_rows else None,
            b_ub=np.array(b_ub) if b_ub else None,
            bounds=bounds,
            method="highs",
        )
    if not result.success:
        raise IpetError(f"IPET LP failed for {function.name!r}: {result.message}")

    # Every block defaults to 0.0 so consumers never KeyError on blocks the
    # worst-case path does not reach; counts are the sum of incoming edges.
    block_counts: dict[int, float] = {block.bid: 0.0 for block in cfg.blocks}
    for edge in edges:
        count = float(result.x[edge_index[edge.key]])
        block_counts[edge.dst.bid] += count
    # The entry block executes once on function entry.  Only seed that count
    # when no edge flows into the entry: a back edge targeting the entry has
    # already been accumulated above, and seeding on top of it would double
    # count the entry block.
    if block_counts[cfg.entry.bid] == 0.0:
        block_counts[cfg.entry.bid] = 1.0

    # Retain the full LP witness (primal counts; duals when HiGHS exposes
    # marginals) so an independent checker can re-verify the solution
    # without re-solving.  Duals are keyed by block semantics, never by the
    # producer's matrix row order: the interior-flow rows were appended in
    # ``cfg.blocks`` order, then the entry row, then the exit row, and the
    # inequality rows follow ``ub_headers``.
    edge_counts = {edge.key: float(result.x[edge_index[edge.key]]) for edge in edges}
    duals = None
    eq_marginals = getattr(getattr(result, "eqlin", None), "marginals", None)
    if eq_marginals is not None and len(eq_marginals) == len(b_eq):
        interior = [
            b.bid for b in cfg.blocks if b is not cfg.entry and b is not cfg.exit
        ]
        duals = {
            "flow": {bid: float(eq_marginals[i]) for i, bid in enumerate(interior)},
            "entry": float(eq_marginals[len(interior)]),
            "exit": float(eq_marginals[len(interior) + 1]),
            "loop": {},
        }
        ub_marginals = getattr(getattr(result, "ineqlin", None), "marginals", None)
        if ub_marginals is not None and len(ub_marginals) == len(ub_headers):
            duals["loop"] = {
                bid: float(ub_marginals[i]) for i, bid in enumerate(ub_headers)
            }
        elif ub_headers:
            # partial witness would make the checker's duality math wrong
            duals = None

    wcet = -float(result.fun) + entry_cost
    return IpetResult(
        wcet=wcet,
        block_counts=block_counts,
        cfg=cfg,
        edge_counts=edge_counts,
        block_costs=costs,
        entry_cost=entry_cost,
        loop_bounds=dict(effective_bounds),
        infeasible_edges=frozenset(pinned),
        duals=duals,
    )
