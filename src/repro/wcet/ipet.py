"""IPET (Implicit Path Enumeration Technique) WCET computation.

The classical formulation used by binary-level analyzers: maximise the sum of
basic-block costs weighted by execution counts, subject to CFG flow
conservation and loop-bound constraints, solved as a linear program.  On our
structured IR it serves as an independent cross-check of the structural
analysis (they must agree on loop-free code and stay within the loop-header
accounting difference otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.ir.cfg import ControlFlowGraph, build_cfg
from repro.ir.program import Function
from repro.wcet.code_level import WcetBreakdown, statement_wcet, _expr_cost
from repro.wcet.hardware_model import HardwareCostModel


class IpetError(RuntimeError):
    """Raised when the IPET linear program cannot be solved."""


@dataclass
class IpetResult:
    """Outcome of the IPET longest-path computation."""

    wcet: float
    block_counts: dict[int, float]
    cfg: ControlFlowGraph


def _block_cost(block, function: Function, model: HardwareCostModel) -> float:
    total = 0.0
    for stmt in block.statements:
        total += statement_wcet(stmt, function, model).total
    for cond in block.conditions:
        total += _expr_cost(cond, function, model, average=False).total + model.branch_cycles
    return total


def ipet_wcet(function: Function, model: HardwareCostModel) -> IpetResult:
    """Compute the WCET of ``function`` through the IPET linear program.

    Variables: execution count ``x_e`` of every CFG edge.  Block counts are
    derived as the sum of incoming edge counts.  Constraints:

    * flow conservation at every block (in-flow == out-flow);
    * the entry block executes exactly once;
    * for every loop header, the back-edge count is at most ``bound`` times
      the count of the entry (non-back) edges into the header.

    Objective: maximise ``sum(block_cost * block_count)``.
    """
    cfg = build_cfg(function)
    edges = cfg.edges
    if not edges:
        raise IpetError(f"function {function.name!r} has an empty CFG")
    edge_index = {id(edge): i for i, edge in enumerate(edges)}
    num_vars = len(edges)

    costs = {block.bid: _block_cost(block, function, model) for block in cfg.blocks}

    # Objective: block count = sum of incoming edges (entry handled separately).
    c = np.zeros(num_vars)
    for edge in edges:
        c[edge_index[id(edge)]] -= costs[edge.dst.bid]
    entry_cost = costs[cfg.entry.bid] if cfg.entry is not None else 0.0

    a_eq_rows: list[np.ndarray] = []
    b_eq: list[float] = []

    # Flow conservation for every block except entry and exit.
    for block in cfg.blocks:
        if block is cfg.entry or block is cfg.exit:
            continue
        row = np.zeros(num_vars)
        for edge in edges:
            if edge.dst is block:
                row[edge_index[id(edge)]] += 1.0
            if edge.src is block:
                row[edge_index[id(edge)]] -= 1.0
        a_eq_rows.append(row)
        b_eq.append(0.0)

    # Entry: out-flow is exactly one; exit: in-flow is exactly one.
    row = np.zeros(num_vars)
    for edge in edges:
        if edge.src is cfg.entry:
            row[edge_index[id(edge)]] += 1.0
    a_eq_rows.append(row)
    b_eq.append(1.0)

    row = np.zeros(num_vars)
    for edge in edges:
        if edge.dst is cfg.exit:
            row[edge_index[id(edge)]] += 1.0
    a_eq_rows.append(row)
    b_eq.append(1.0)

    # Loop bounds: back-edge count <= bound * entry-edge count of the header.
    a_ub_rows: list[np.ndarray] = []
    b_ub: list[float] = []
    for header_bid, bound in cfg.loop_bounds.items():
        header = cfg.block_by_id(header_bid)
        row = np.zeros(num_vars)
        for edge in edges:
            if edge.dst is header and edge.kind == "back":
                row[edge_index[id(edge)]] += 1.0
            elif edge.dst is header:
                row[edge_index[id(edge)]] -= float(bound)
        a_ub_rows.append(row)
        b_ub.append(0.0)

    result = linprog(
        c,
        A_eq=np.array(a_eq_rows),
        b_eq=np.array(b_eq),
        A_ub=np.array(a_ub_rows) if a_ub_rows else None,
        b_ub=np.array(b_ub) if b_ub else None,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise IpetError(f"IPET LP failed for {function.name!r}: {result.message}")

    # Every block defaults to 0.0 so consumers never KeyError on blocks the
    # worst-case path does not reach; counts are the sum of incoming edges.
    block_counts: dict[int, float] = {block.bid: 0.0 for block in cfg.blocks}
    for edge in edges:
        count = float(result.x[edge_index[id(edge)]])
        block_counts[edge.dst.bid] += count
    # The entry block executes once on function entry.  Only seed that count
    # when no edge flows into the entry: a back edge targeting the entry has
    # already been accumulated above, and seeding on top of it would double
    # count the entry block.
    if block_counts[cfg.entry.bid] == 0.0:
        block_counts[cfg.entry.bid] = 1.0

    wcet = -float(result.fun) + entry_cost
    return IpetResult(wcet=wcet, block_counts=block_counts, cfg=cfg)
