"""Enhanced Ground Proximity Warning System (EGPWS) use case.

The real EGPWS "provides alerts and warnings for obstacle and terrain along
the flight path" by combining "high resolution terrain databases, GPS and
other sensors" (paper Section IV-A).  The model below keeps that structure on
synthetic data:

* the terrain elevation profile ahead of the aircraft (sampled along the
  predicted flight path from a terrain database) and the predicted aircraft
  altitude profile are the external inputs;
* the terrain profile is smoothed (sensor/database fusion stand-in);
* clearance = altitude - terrain is computed per look-ahead sample;
* the minimum clearance over the look-ahead window and a required-clearance
  comparison produce the terrain alert;
* a second path computes the closure rate (difference between consecutive
  clearance samples) and raises an obstacle-ahead caution.
"""

from __future__ import annotations

import numpy as np

from repro.model import Diagram, library
from repro.utils.rng import make_rng

#: Default number of look-ahead samples along the flight path.
DEFAULT_LOOKAHEAD = 32
#: Required terrain clearance (same unit as the synthetic elevation data).
REQUIRED_CLEARANCE = 150.0


def build_egpws_diagram(lookahead: int = DEFAULT_LOOKAHEAD) -> Diagram:
    """Build the EGPWS dataflow model.

    External inputs:  ``terrain.u`` (terrain elevation profile) and
    ``altitude.u`` (predicted aircraft altitude profile), both of length
    ``lookahead``.  External outputs: ``alert.y`` (1.0 when the minimum
    clearance drops below the requirement) and ``min_clearance.y``.
    """
    if lookahead < 8:
        raise ValueError("lookahead must be at least 8 samples")
    d = Diagram("egpws")
    # sensor conditioning
    d.add_block(library.gain("terrain", 1.0, size=lookahead))
    d.add_block(library.gain("altitude", 1.0, size=lookahead))
    d.add_block(library.moving_average("terrain_smooth", 4, lookahead))
    # clearance = altitude - smoothed terrain
    d.add_block(library.add("clearance", size=lookahead, sign_b=-1.0))
    d.add_block(library.saturation("clearance_clip", -10000.0, 10000.0, size=lookahead))
    d.add_block(library.window_min("min_clearance", lookahead))
    # alert when required clearance exceeded: required - min_clearance > 0
    d.add_block(library.gain("negate", -1.0))
    d.add_block(library.constant("required", REQUIRED_CLEARANCE))
    d.add_block(library.add("margin", size=1))
    d.add_block(library.threshold("alert", 0.0))
    # closure-rate path: FIR derivative of the clearance profile
    d.add_block(library.fir_filter("closure_rate", np.array([1.0, -1.0]), lookahead))
    d.add_block(library.threshold("steep_terrain", 75.0, size=lookahead))
    d.add_block(library.scalar_max("caution", lookahead))

    d.connect("terrain", "y", "terrain_smooth", "u")
    d.connect("altitude", "y", "clearance", "a")
    d.connect("terrain_smooth", "y", "clearance", "b")
    d.connect("clearance", "y", "clearance_clip", "u")
    d.connect("clearance_clip", "y", "min_clearance", "u")
    d.connect("min_clearance", "y", "negate", "u")
    d.connect("required", "y", "margin", "a")
    d.connect("negate", "y", "margin", "b")
    d.connect("margin", "y", "alert", "u")
    d.connect("terrain_smooth", "y", "closure_rate", "u")
    d.connect("closure_rate", "y", "steep_terrain", "u")
    d.connect("steep_terrain", "y", "caution", "u")

    d.mark_input("terrain", "u")
    d.mark_input("altitude", "u")
    d.mark_output("alert", "y")
    d.mark_output("min_clearance", "y")
    d.mark_output("caution", "y")
    d.validate()
    return d


def synthetic_terrain_profile(lookahead: int, seed: int | None = None, ridge: bool = True) -> np.ndarray:
    """Synthetic terrain elevations along the flight path (a rolling ridge)."""
    rng = make_rng(seed)
    x = np.linspace(0.0, 1.0, lookahead)
    base = 300.0 + 200.0 * np.sin(2 * np.pi * x)
    noise = rng.normal(0.0, 15.0, size=lookahead)
    profile = base + noise
    if ridge:
        peak = int(0.7 * lookahead)
        profile[peak - 2: peak + 2] += 350.0
    return profile


def egpws_test_inputs(lookahead: int = DEFAULT_LOOKAHEAD, seed: int | None = None, hazardous: bool = True) -> dict:
    """External input vectors for one EGPWS step."""
    terrain = synthetic_terrain_profile(lookahead, seed, ridge=hazardous)
    cruise = (terrain.max() + (50.0 if hazardous else 600.0))
    altitude = np.full(lookahead, cruise)
    return {"terrain.u": terrain, "altitude.u": altitude}
