"""Synthetic workload generators for scalability and scheduler studies.

Two generators are provided:

* :func:`random_pipeline_diagram` builds a random dataflow diagram from the
  standard block library (fan-out / fan-in stages of vector kernels), used to
  stress the whole flow;
* :func:`synthetic_compiled_model` builds a random multi-kernel IR function
  directly (bypassing the model level) and wraps it as a
  :class:`~repro.frontend.codegen.CompiledModel`, which is the cheapest way to
  produce HTGs of a given size for scheduler benchmarks (E8).
"""

from __future__ import annotations

import numpy as np

from repro.frontend.codegen import CompiledModel
from repro.ir.builder import FunctionBuilder
from repro.ir.program import Program
from repro.ir.statements import Block as IRBlock
from repro.model import Diagram, library
from repro.utils.rng import make_rng


def random_pipeline_diagram(
    stages: int = 4,
    width: int = 2,
    vector_size: int = 32,
    seed: int | None = None,
) -> Diagram:
    """A random layered diagram: ``stages`` layers of ``width`` vector kernels.

    Each kernel reads the output of one random kernel in the previous layer;
    the final layer is reduced to scalar outputs.  All blocks come from the
    standard library, so the diagram exercises exactly the same code paths as
    the hand-written use cases.
    """
    if stages < 2 or width < 1:
        raise ValueError("need at least 2 stages and width >= 1")
    rng = make_rng(seed)
    d = Diagram(f"synthetic_s{stages}w{width}")
    kinds = ["gain", "saturation", "fir", "elementwise"]
    previous: list[str] = []
    for layer in range(stages):
        current: list[str] = []
        for lane in range(width):
            name = f"b{layer}_{lane}"
            kind = kinds[int(rng.integers(0, len(kinds)))]
            if kind == "gain":
                block = library.gain(name, float(rng.uniform(0.5, 2.0)), size=vector_size)
            elif kind == "saturation":
                block = library.saturation(name, -5.0, 5.0, size=vector_size)
            elif kind == "fir":
                taps = rng.uniform(0.1, 0.5, size=3)
                block = library.fir_filter(name, taps, size=vector_size)
            else:
                block = library.elementwise(name, "abs", size=vector_size)
            d.add_block(block)
            if layer == 0:
                d.mark_input(name, "u")
            else:
                source = previous[int(rng.integers(0, len(previous)))]
                d.connect(source, "y", name, "u")
            current.append(name)
        previous = current
    for lane, name in enumerate(previous):
        reducer = library.scalar_max(f"reduce_{lane}", vector_size)
        d.add_block(reducer)
        d.connect(name, "y", reducer.name, "u")
        d.mark_output(reducer.name, "y")
    d.validate()
    return d


def synthetic_compiled_model(
    num_kernels: int = 8,
    vector_size: int = 64,
    dependency_probability: float = 0.35,
    seed: int | None = None,
) -> CompiledModel:
    """A random multi-kernel IR function wrapped as a compiled model.

    Kernel ``k`` reads a subset of the output buffers of earlier kernels (per
    ``dependency_probability``) plus its own input buffer, and writes its own
    output buffer; each kernel is one block region, so the HTG extractor sees
    a random DAG with realistic WCETs and shared-access counts.
    """
    if num_kernels < 1:
        raise ValueError("need at least one kernel")
    rng = make_rng(seed)
    name = f"synthetic_k{num_kernels}"
    fb = FunctionBuilder(f"{name}_step")

    inputs = []
    outputs = []
    for k in range(num_kernels):
        inputs.append(fb.input_array(f"in_k{k}", (vector_size,)))
        outputs.append(fb.shared_array(f"buf_k{k}", (vector_size,)))

    regions: list[tuple[str, IRBlock]] = []
    for k in range(num_kernels):
        region = IRBlock()
        fb._blocks.append(region)
        try:
            sources = [inputs[k]]
            for j in range(k):
                if rng.random() < dependency_probability:
                    sources.append(outputs[j])
            work = int(rng.integers(1, 4))
            with fb.loop("i", 0, vector_size) as i:
                acc = None
                for src in sources:
                    term = fb.at(src, i)
                    acc = term if acc is None else acc + term
                for _ in range(work):
                    acc = fb.call("sqrt", fb.call("abs", acc)) + acc
                fb.assign(fb.at(outputs[k], i), acc)
        finally:
            fb._blocks.pop()
        fb.emit(region)
        regions.append((f"kernel{k}", region))

    function = fb.build()
    model = CompiledModel(
        diagram_name=name,
        program=Program(name),
        entry_name=function.name,
        block_regions=regions,
    )
    model.program.add(function)
    for k in range(num_kernels):
        model.inputs[f"in_k{k}"] = (f"kernel{k}", "u", (vector_size,))
    return model


def random_input_vectors(model: CompiledModel, seed: int | None = None) -> dict[str, np.ndarray]:
    """Random external inputs for a synthetic compiled model."""
    rng = make_rng(seed)
    values: dict[str, np.ndarray] = {}
    for name, (_, _, shape) in model.inputs.items():
        values[name] = rng.uniform(-1.0, 1.0, size=shape if shape else ())
    return values
