"""Synthetic workload generators for scalability and scheduler studies.

Two generators are provided:

* :func:`random_pipeline_diagram` builds a random dataflow diagram from the
  standard block library (fan-out / fan-in stages of vector kernels), used to
  stress the whole flow;
* :func:`synthetic_compiled_model` builds a random multi-kernel IR function
  directly (bypassing the model level) and wraps it as a
  :class:`~repro.frontend.codegen.CompiledModel`, which is the cheapest way to
  produce HTGs of a given size for scheduler benchmarks (E8).

The seeded *edit scripts* (:func:`edit_block_param`,
:func:`insert_gain_block`, :func:`delete_block`,
:func:`random_edit_script`, :func:`tweak_platform_costs`) perturb a
diagram or platform deterministically; the incremental re-analysis
engine's property tests and the E15 benchmark replay them to assert that
:meth:`~repro.core.pipeline.Pipeline.run_incremental` matches a cold run
bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.frontend.codegen import CompiledModel
from repro.ir.builder import FunctionBuilder
from repro.ir.program import Program
from repro.ir.statements import Block as IRBlock
from repro.model import Diagram, library
from repro.utils.rng import make_rng


def random_pipeline_diagram(
    stages: int = 4,
    width: int = 2,
    vector_size: int = 32,
    seed: int | None = None,
) -> Diagram:
    """A random layered diagram: ``stages`` layers of ``width`` vector kernels.

    Each kernel reads the output of one random kernel in the previous layer;
    the final layer is reduced to scalar outputs.  All blocks come from the
    standard library, so the diagram exercises exactly the same code paths as
    the hand-written use cases.
    """
    if stages < 2 or width < 1:
        raise ValueError("need at least 2 stages and width >= 1")
    rng = make_rng(seed)
    d = Diagram(f"synthetic_s{stages}w{width}")
    kinds = ["gain", "saturation", "fir", "elementwise"]
    previous: list[str] = []
    for layer in range(stages):
        current: list[str] = []
        for lane in range(width):
            name = f"b{layer}_{lane}"
            kind = kinds[int(rng.integers(0, len(kinds)))]
            if kind == "gain":
                block = library.gain(name, float(rng.uniform(0.5, 2.0)), size=vector_size)
            elif kind == "saturation":
                block = library.saturation(name, -5.0, 5.0, size=vector_size)
            elif kind == "fir":
                taps = rng.uniform(0.1, 0.5, size=3)
                block = library.fir_filter(name, taps, size=vector_size)
            else:
                block = library.elementwise(name, "abs", size=vector_size)
            d.add_block(block)
            if layer == 0:
                d.mark_input(name, "u")
            else:
                source = previous[int(rng.integers(0, len(previous)))]
                d.connect(source, "y", name, "u")
            current.append(name)
        previous = current
    for lane, name in enumerate(previous):
        reducer = library.scalar_max(f"reduce_{lane}", vector_size)
        d.add_block(reducer)
        d.connect(name, "y", reducer.name, "u")
        d.mark_output(reducer.name, "y")
    d.validate()
    return d


def synthetic_compiled_model(
    num_kernels: int = 8,
    vector_size: int = 64,
    dependency_probability: float = 0.35,
    seed: int | None = None,
) -> CompiledModel:
    """A random multi-kernel IR function wrapped as a compiled model.

    Kernel ``k`` reads a subset of the output buffers of earlier kernels (per
    ``dependency_probability``) plus its own input buffer, and writes its own
    output buffer; each kernel is one block region, so the HTG extractor sees
    a random DAG with realistic WCETs and shared-access counts.
    """
    if num_kernels < 1:
        raise ValueError("need at least one kernel")
    rng = make_rng(seed)
    name = f"synthetic_k{num_kernels}"
    fb = FunctionBuilder(f"{name}_step")

    inputs = []
    outputs = []
    for k in range(num_kernels):
        inputs.append(fb.input_array(f"in_k{k}", (vector_size,)))
        outputs.append(fb.shared_array(f"buf_k{k}", (vector_size,)))

    regions: list[tuple[str, IRBlock]] = []
    for k in range(num_kernels):
        region = IRBlock()
        fb._blocks.append(region)
        try:
            sources = [inputs[k]]
            for j in range(k):
                if rng.random() < dependency_probability:
                    sources.append(outputs[j])
            work = int(rng.integers(1, 4))
            with fb.loop("i", 0, vector_size) as i:
                acc = None
                for src in sources:
                    term = fb.at(src, i)
                    acc = term if acc is None else acc + term
                for _ in range(work):
                    acc = fb.call("sqrt", fb.call("abs", acc)) + acc
                fb.assign(fb.at(outputs[k], i), acc)
        finally:
            fb._blocks.pop()
        fb.emit(region)
        regions.append((f"kernel{k}", region))

    function = fb.build()
    model = CompiledModel(
        diagram_name=name,
        program=Program(name),
        entry_name=function.name,
        block_regions=regions,
    )
    model.program.add(function)
    for k in range(num_kernels):
        model.inputs[f"in_k{k}"] = (f"kernel{k}", "u", (vector_size,))
    return model


# ---------------------------------------------------------------------- #
# seeded edit scripts (for the incremental re-analysis engine, E15)
# ---------------------------------------------------------------------- #
def edit_block_param(diagram: Diagram, seed: int | None = None) -> str:
    """Change one numeric block parameter in place (a "single-task edit").

    Picks a random ``gain`` or ``saturation`` block and perturbs its scalar
    parameter(s) -- the smallest edit that changes exactly one code region's
    fingerprint.  Returns the edited block's name.
    """
    rng = make_rng(seed)
    candidates = [
        diagram.blocks[name]
        for name in sorted(diagram.blocks)
        if diagram.blocks[name].kind in ("gain", "saturation")
    ]
    if not candidates:
        raise ValueError("diagram has no gain/saturation block to edit")
    block = candidates[int(rng.integers(0, len(candidates)))]
    if block.kind == "gain":
        block.params["k"] = float(block.params["k"]) * float(rng.uniform(1.1, 3.0))
    else:
        shift = float(rng.uniform(0.5, 2.0))
        block.params["lo"] = float(block.params["lo"]) - shift
        block.params["hi"] = float(block.params["hi"]) + shift
    return block.name


def insert_gain_block(diagram: Diagram, seed: int | None = None) -> str:
    """Splice a new unity-ish gain block into one random connection.

    A task-insertion edit: one region is added and the producer/consumer
    regions keep their code.  Returns the new block's name.
    """
    rng = make_rng(seed)
    if not diagram.connections:
        raise ValueError("diagram has no connection to splice into")
    index = int(rng.integers(0, len(diagram.connections)))
    conn = diagram.connections[index]
    shape = diagram.blocks[conn.src_block].output_port(conn.src_port).shape
    name = f"ins_gain_{len(diagram.blocks)}"
    while name in diagram.blocks:
        name += "x"
    block = library.gain(
        name, float(rng.uniform(0.5, 2.0)), size=shape[0] if shape else 1
    )
    diagram.connections.pop(index)
    diagram.add_block(block)
    diagram.connect(conn.src_block, conn.src_port, name, "u")
    diagram.connect(name, "y", conn.dst_block, conn.dst_port)
    diagram.validate()
    return name


def delete_block(diagram: Diagram, seed: int | None = None) -> str:
    """Remove one random pass-through block, rewiring its consumers.

    A task-deletion edit: only shape-preserving single-input/single-output
    blocks that are not external ports qualify, so the diagram stays valid.
    Returns the removed block's name.
    """
    rng = make_rng(seed)
    marked = {name for name, _ in diagram.external_inputs}
    marked |= {name for name, _ in diagram.external_outputs}
    candidates = []
    for name in sorted(diagram.blocks):
        block = diagram.blocks[name]
        if name in marked:
            continue
        if [p.name for p in block.inputs] != ["u"]:
            continue
        if [p.name for p in block.outputs] != ["y"]:
            continue
        if block.input_port("u").shape != block.output_port("y").shape:
            continue
        drivers = [c for c in diagram.connections if c.dst_block == name]
        if len(drivers) != 1:
            continue
        candidates.append((name, drivers[0]))
    if not candidates:
        raise ValueError("diagram has no removable pass-through block")
    name, driver = candidates[int(rng.integers(0, len(candidates)))]
    consumers = [c for c in diagram.connections if c.src_block == name]
    diagram.connections[:] = [
        c for c in diagram.connections if name not in (c.src_block, c.dst_block)
    ]
    del diagram.blocks[name]
    for consumer in consumers:
        diagram.connect(
            driver.src_block, driver.src_port, consumer.dst_block, consumer.dst_port
        )
    diagram.validate()
    return name


#: The edit kinds :func:`random_edit_script` draws from.
EDIT_KINDS = ("param", "insert", "delete")


def random_edit_script(
    diagram: Diagram, num_edits: int = 1, seed: int | None = None
) -> list[tuple[str, str]]:
    """Apply ``num_edits`` random seeded edits to ``diagram`` in place.

    Each step uniformly picks a parameter edit, a block insertion or a block
    deletion (falling back to a parameter edit when the structural edit has
    no candidate).  Returns the applied ``(kind, block name)`` pairs; the
    same seed replays the same script.
    """
    rng = make_rng(seed)
    applied: list[tuple[str, str]] = []
    for _ in range(max(0, num_edits)):
        kind = EDIT_KINDS[int(rng.integers(0, len(EDIT_KINDS)))]
        sub_seed = int(rng.integers(0, 2**31 - 1))
        try:
            if kind == "insert":
                applied.append(("insert", insert_gain_block(diagram, seed=sub_seed)))
            elif kind == "delete":
                applied.append(("delete", delete_block(diagram, seed=sub_seed)))
            else:
                applied.append(("param", edit_block_param(diagram, seed=sub_seed)))
        except ValueError:
            applied.append(("param", edit_block_param(diagram, seed=sub_seed)))
    diagram.validate()
    return applied


def tweak_platform_costs(platform, seed: int | None = None, delta: int = 2):
    """A copy of ``platform`` with one random operation cost bumped everywhere.

    A platform-cost edit: the model is untouched but every base WCET can
    move, so the incremental engine must re-run the timing stages.
    """
    from dataclasses import replace

    rng = make_rng(seed)
    ops = sorted(platform.cores[0].processor.op_cycles)
    op = ops[int(rng.integers(0, len(ops)))]
    cores = []
    for core in platform.cores:
        op_cycles = dict(core.processor.op_cycles)
        op_cycles[op] = int(op_cycles.get(op, 1)) + int(delta)
        cores.append(
            replace(core, processor=replace(core.processor, op_cycles=op_cycles))
        )
    return replace(platform, cores=cores)


def random_input_vectors(model: CompiledModel, seed: int | None = None) -> dict[str, np.ndarray]:
    """Random external inputs for a synthetic compiled model."""
    rng = make_rng(seed)
    values: dict[str, np.ndarray] = {}
    for name, (_, _, shape) in model.inputs.items():
        values[name] = rng.uniform(-1.0, 1.0, size=shape if shape else ())
    return values
