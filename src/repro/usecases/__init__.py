"""The ARGO validation use cases (paper Section IV) plus synthetic workloads.

* :mod:`repro.usecases.egpws` -- Enhanced Ground Proximity Warning System
  (aerospace, DLR);
* :mod:`repro.usecases.weaa` -- Wake Encounter Avoidance and Advisory system
  (aerospace, DLR);
* :mod:`repro.usecases.polka` -- POLKA polarization-camera glass-stress
  inspection (industrial image processing, Fraunhofer IIS);
* :mod:`repro.usecases.workloads` -- synthetic task graphs for scheduler
  scalability studies.

The proprietary data the real systems use (terrain databases, wake models,
polarization sensor frames) is replaced by synthetic generators with the same
computational structure; see DESIGN.md for the substitution rationale.
"""

from repro.usecases.egpws import build_egpws_diagram, egpws_test_inputs
from repro.usecases.weaa import build_weaa_diagram, weaa_test_inputs
from repro.usecases.polka import build_polka_diagram, polka_test_inputs
from repro.usecases.workloads import synthetic_compiled_model, random_pipeline_diagram

__all__ = [
    "build_egpws_diagram",
    "egpws_test_inputs",
    "build_weaa_diagram",
    "weaa_test_inputs",
    "build_polka_diagram",
    "polka_test_inputs",
    "synthetic_compiled_model",
    "random_pipeline_diagram",
]

ALL_USECASES = {
    "egpws": (build_egpws_diagram, egpws_test_inputs),
    "weaa": (build_weaa_diagram, weaa_test_inputs),
    "polka": (build_polka_diagram, polka_test_inputs),
}
