"""POLKA polarization-camera glass-stress inspection use case.

POLKA "uses a novel sensor that measures the polarization of light to detect
residual stress in glass containers" (paper Section IV-B).  A polarization
camera captures four intensity images behind polarizers at 0/45/90/135
degrees; residual stress shows up as birefringence, i.e. a locally elevated
degree of linear polarization (DoLP).  The model reproduces that pipeline on
synthetic line-scan data:

* per-pixel Stokes parameters ``S0 = I0 + I90``, ``S1 = I0 - I90``,
  ``S2 = I45 - I135``;
* ``DoLP = sqrt(S1^2 + S2^2) / S0`` (numerically guarded);
* spatial smoothing, a defect threshold, a defect-pixel count and a
  pass/fail decision for the inspected container.
"""

from __future__ import annotations


from repro.model import Diagram, library
from repro.model.blocks import Block, Port
from repro.utils.rng import make_rng

#: Pixels per line-scan segment processed each hard-real-time period.
DEFAULT_PIXELS = 64
#: DoLP threshold above which a pixel is considered stressed.
STRESS_THRESHOLD = 0.25
#: Number of stressed pixels that fails the container.
FAIL_PIXEL_COUNT = 4.0


def _dolp_block(name: str, pixels: int) -> Block:
    """Per-pixel degree-of-linear-polarization computation."""
    return Block(
        name=name,
        kind="dolp",
        inputs=[Port("s0", (pixels,)), Port("s1", (pixels,)), Port("s2", (pixels,))],
        outputs=[Port("y", (pixels,))],
        params={"n": pixels, "eps": 1e-3},
        behavior=(
            "for i = 1:n\n"
            "  denom = s0(i)\n"
            "  if denom < eps then\n"
            "    denom = eps\n"
            "  end\n"
            "  y(i) = sqrt(s1(i) * s1(i) + s2(i) * s2(i)) / denom\n"
            "end"
        ),
    )


def _count_block(name: str, pixels: int) -> Block:
    """Count the number of asserted (0/1) pixels."""
    return Block(
        name=name,
        kind="count",
        inputs=[Port("u", (pixels,))],
        outputs=[Port("y")],
        params={"n": pixels},
        behavior=(
            "acc = 0\n"
            "for i = 1:n\n"
            "  acc = acc + u(i)\n"
            "end\n"
            "y = acc"
        ),
    )


def build_polka_diagram(pixels: int = DEFAULT_PIXELS) -> Diagram:
    """Build the POLKA inspection dataflow model.

    External inputs: the four polarization channel line segments
    ``i0.u``, ``i45.u``, ``i90.u``, ``i135.u``.  External outputs:
    ``defect_count.y`` and ``reject.y`` (1.0 when the container fails).
    """
    if pixels < 8:
        raise ValueError("pixels must be at least 8")
    d = Diagram("polka")
    for channel in ("i0", "i45", "i90", "i135"):
        d.add_block(library.gain(channel, 1.0, size=pixels))
    d.add_block(library.add("s0", size=pixels, sign_b=1.0))
    d.add_block(library.add("s1", size=pixels, sign_b=-1.0))
    d.add_block(library.add("s2", size=pixels, sign_b=-1.0))
    d.add_block(_dolp_block("dolp", pixels))
    d.add_block(library.moving_average("dolp_smooth", 4, pixels))
    d.add_block(library.threshold("stress", STRESS_THRESHOLD, size=pixels))
    d.add_block(_count_block("defect_count", pixels))
    d.add_block(library.threshold("reject", FAIL_PIXEL_COUNT))

    d.connect("i0", "y", "s0", "a")
    d.connect("i90", "y", "s0", "b")
    d.connect("i0", "y", "s1", "a")
    d.connect("i90", "y", "s1", "b")
    d.connect("i45", "y", "s2", "a")
    d.connect("i135", "y", "s2", "b")
    d.connect("s0", "y", "dolp", "s0")
    d.connect("s1", "y", "dolp", "s1")
    d.connect("s2", "y", "dolp", "s2")
    d.connect("dolp", "y", "dolp_smooth", "u")
    d.connect("dolp_smooth", "y", "stress", "u")
    d.connect("stress", "y", "defect_count", "u")
    d.connect("defect_count", "y", "reject", "u")

    for channel in ("i0", "i45", "i90", "i135"):
        d.mark_input(channel, "u")
    d.mark_output("defect_count", "y")
    d.mark_output("reject", "y")
    d.validate()
    return d


def polka_test_inputs(pixels: int = DEFAULT_PIXELS, seed: int | None = None, stressed: bool = True) -> dict:
    """Synthetic polarization line-scan inputs.

    A stressed region is injected as locally increased linear polarization
    (larger difference between the 0/90 and 45/135 channel pairs).
    """
    rng = make_rng(seed)
    unpolarized = 0.8 + rng.normal(0.0, 0.02, size=pixels)
    i0 = unpolarized / 2 + rng.normal(0.0, 0.01, size=pixels)
    i90 = unpolarized / 2 + rng.normal(0.0, 0.01, size=pixels)
    i45 = unpolarized / 2 + rng.normal(0.0, 0.01, size=pixels)
    i135 = unpolarized / 2 + rng.normal(0.0, 0.01, size=pixels)
    if stressed:
        region = slice(pixels // 3, pixels // 3 + max(6, pixels // 8))
        i0[region] += 0.3
        i90[region] -= 0.2
    return {"i0.u": i0, "i45.u": i45, "i90.u": i90, "i135.u": i135}
