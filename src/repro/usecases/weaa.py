"""Wake Encounter Avoidance and Advisory (WEAA) use case.

WEAA "predicts wake vortices, performs conflict detection and generate[s]
evasion trajectories" (paper Section IV-A).  The synthetic model keeps the
three stages:

* **prediction** -- the wake vortex strength/position state of a leading
  aircraft is propagated one step with a linear decay/transport model
  (dense matrix-vector product), standing in for the physical vortex
  transport model;
* **conflict detection** -- the predicted vortex strength along the own-ship
  trajectory is compared against an encounter-severity threshold after
  weighting by proximity;
* **evasion** -- a lateral-offset evasion command is produced from the worst
  conflict severity, rate-limited and saturated to the allowed manoeuvre
  envelope.
"""

from __future__ import annotations

import numpy as np

from repro.model import Diagram, library
from repro.utils.rng import make_rng

#: Number of wake-vortex state samples along the prediction horizon.
DEFAULT_HORIZON = 24
#: Encounter severity above which a conflict is declared.
CONFLICT_THRESHOLD = 0.6
#: Maximum commanded lateral evasion offset.
MAX_EVASION_OFFSET = 1.0


def build_weaa_diagram(horizon: int = DEFAULT_HORIZON) -> Diagram:
    """Build the WEAA dataflow model.

    External inputs: ``vortex_state.u`` (current vortex strength samples),
    ``transport.A`` (the transport/decay matrix of the prediction model) and
    ``proximity.u`` (own-ship proximity weights along the horizon).
    External outputs: ``conflict.y`` (1.0 when an encounter is predicted),
    ``severity.y`` (worst weighted severity) and ``evasion_cmd.y``.
    """
    if horizon < 8:
        raise ValueError("horizon must be at least 8 samples")
    d = Diagram("weaa")
    d.add_block(library.gain("vortex_state", 1.0, size=horizon))
    d.add_block(library.matrix_vector("predict", horizon, horizon))
    d.add_block(library.gain("proximity", 1.0, size=horizon))
    d.add_block(library.product("weighted", size=horizon))
    d.add_block(library.elementwise("magnitude", "abs", size=horizon))
    d.add_block(library.scalar_max("severity", horizon))
    d.add_block(library.threshold("conflict", CONFLICT_THRESHOLD))
    d.add_block(library.gain("evasion_gain", 1.5))
    d.add_block(library.saturation("evasion_cmd", -MAX_EVASION_OFFSET, MAX_EVASION_OFFSET))

    d.connect("vortex_state", "y", "predict", "x")
    d.connect("predict", "y", "weighted", "a")
    d.connect("proximity", "y", "weighted", "b")
    d.connect("weighted", "y", "magnitude", "u")
    d.connect("magnitude", "y", "severity", "u")
    d.connect("severity", "y", "conflict", "u")
    d.connect("severity", "y", "evasion_gain", "u")
    d.connect("evasion_gain", "y", "evasion_cmd", "u")

    d.mark_input("vortex_state", "u")
    d.mark_input("predict", "A")
    d.mark_input("proximity", "u")
    d.mark_output("conflict", "y")
    d.mark_output("severity", "y")
    d.mark_output("evasion_cmd", "y")
    d.validate()
    return d


def wake_transport_matrix(horizon: int, decay: float = 0.92, seed: int | None = None) -> np.ndarray:
    """Synthetic vortex transport/decay matrix (band-dominant, decaying)."""
    rng = make_rng(seed)
    matrix = np.zeros((horizon, horizon))
    for i in range(horizon):
        matrix[i, i] = decay
        if i + 1 < horizon:
            matrix[i, i + 1] = 0.05
        if i - 1 >= 0:
            matrix[i, i - 1] = 0.03
    matrix += rng.normal(0.0, 0.002, size=(horizon, horizon))
    return matrix


def weaa_test_inputs(horizon: int = DEFAULT_HORIZON, seed: int | None = None, encounter: bool = True) -> dict:
    """External inputs for one WEAA step."""
    rng = make_rng(seed)
    strength = np.abs(rng.normal(0.4, 0.2, size=horizon))
    if encounter:
        strength[horizon // 2] = 1.4
    proximity = np.exp(-np.linspace(0.0, 1.0, horizon))
    return {
        "vortex_state.u": strength,
        "predict.A": wake_transport_matrix(horizon, seed=seed),
        "proximity.u": proximity,
    }
