"""Maintenance command line of the repro flow (``python -m repro``).

Two command families.  ``cache`` operates on shared result-cache
directories (the ones named by ``REPRO_WCET_CACHE_DIR``, ``sweep
(cache_dir=...)`` or ``benchmarks/run_all.py --cache-dir``)::

    python -m repro cache stats  .wcet_cache
    python -m repro cache evict  .wcet_cache --max-entries 50000
    python -m repro cache evict  .wcet_cache --max-bytes 64000000 --max-age-days 30

``stats`` aggregates the hit/miss records and entry counts of both cache
tiers (code-level WCET analyses and system-level fixed-point results);
``evict`` applies the size/age-bounded eviction policy of
:meth:`repro.wcet.cache.WcetAnalysisCache.evict` so long-lived shared
directories stop growing without bound.  Entries of other schema versions
are never touched; delete stale ``v<N>`` subdirectories manually once no
older deployment reads them.

``lint`` runs the static-analysis layer (:mod:`repro.analysis`) over
dataflow models: the IR verifier, the WCET flow-fact derivation and the
schedule race checker, end to end through the standard pipeline on the
generic predictable platform::

    python -m repro lint                      # all built-in use cases
    python -m repro lint egpws polka          # a subset
    python -m repro lint examples/quickstart.py --json

``certify`` runs the proof-carrying-result layer
(:mod:`repro.analysis.certify`): the full pipeline on the generic
predictable platform, then the independent certificate checkers over the
schedule, the system-level fixed point and the IPET solution (with flow
facts re-derived)::

    python -m repro certify                   # all built-in use cases
    python -m repro certify egpws --json

``diff`` runs the incremental re-analysis engine
(:mod:`repro.analysis.incremental`): a cold pipeline run on the *old*
model, then :meth:`~repro.core.pipeline.Pipeline.run_incremental` on the
*new* one, and prints the fingerprint diff and the minimal invalidation
frontier -- which functions changed, which stages were replayed vs re-run,
how many race pairs and code-level reports were reused::

    python -m repro diff examples/model_v1.py examples/model_v2.py
    python -m repro diff egpws examples/egpws_edited.py --json

``trace`` runs one target through the full pipeline with observability
(:mod:`repro.obs`) switched on -- certification and static MHP pruning
included, so the trace shows every layer -- and exports a
Chrome/Perfetto-loadable ``trace.json`` plus, with ``--metrics-json``, the
run's metric snapshot as JSON on stdout::

    python -m repro trace egpws --out trace.json
    python -m repro trace polka --metrics-json > metrics.json

Traced runs are bit-identical to untraced ones; the exported trace is
self-validated (well-formed phases, per-track monotonic timestamps) and a
validation finding makes the exit status 1.

The analysis commands accept the same targets -- built-in use-case
names (``egpws``, ``weaa``, ``polka``) or paths to Python files exposing a
``build_model() -> Diagram`` function; ``lint`` and ``certify`` also take
a ``--fail-on`` severity threshold.  Exit status: 0 when no finding
reaches the threshold, 1 otherwise (or when a target failed to build), 2
for usage errors.  ``lint`` defaults to ``--fail-on info`` (any finding
fails, the historical behaviour); ``certify`` defaults to ``--fail-on
warning``.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

from repro.wcet.cache import (
    CACHE_SCHEMA_VERSION,
    WcetAnalysisCache,
    read_cache_dir_stats,
)


def _dir_bytes(cache_dir: Path) -> int:
    """Total size of the current schema version's shard files."""
    vdir = cache_dir / f"v{CACHE_SCHEMA_VERSION}"
    if not vdir.is_dir():
        return 0
    return sum(path.stat().st_size for path in vdir.glob("*.jsonl"))


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    if not Path(args.cache_dir).is_dir():
        # all-zero stats for a mistyped path would read like a healthy
        # empty cache; fail loudly instead
        print(f"no such cache directory: {args.cache_dir}", file=sys.stderr)
        return 2
    totals = read_cache_dir_stats(args.cache_dir)
    system = totals["system"]
    print(f"cache directory : {args.cache_dir}")
    print(f"schema version  : v{CACHE_SCHEMA_VERSION}")
    print(f"shard bytes     : {_dir_bytes(Path(args.cache_dir))}")
    print(
        "code level      : "
        f"{totals['entries']} entries, {totals['hits']}+{totals['disk_hits']} hits / "
        f"{totals['misses']} misses, {totals['flushed']} flushed"
    )
    print(
        "system level    : "
        f"{system['entries']} results, {system['hits']}+{system['disk_hits']} hits / "
        f"{system['misses']} fixed points run, {system['flushed']} flushed"
    )
    return 0


def _cmd_cache_evict(args: argparse.Namespace) -> int:
    if args.max_entries is None and args.max_bytes is None and args.max_age_days is None:
        print(
            "nothing to do: pass at least one of --max-entries, --max-bytes, "
            "--max-age-days",
            file=sys.stderr,
        )
        return 2
    if not Path(args.cache_dir).is_dir():
        # opening would silently create the directory, and an operator who
        # mistyped the path must not be told the real cache was bounded
        print(f"no such cache directory: {args.cache_dir}", file=sys.stderr)
        return 2
    before = _dir_bytes(Path(args.cache_dir))
    cache = WcetAnalysisCache.open(args.cache_dir)
    report = cache.evict(
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        max_age_seconds=None if args.max_age_days is None else args.max_age_days * 86400.0,
    )
    after = _dir_bytes(Path(args.cache_dir))
    tiers = report["tiers"]
    print(
        f"evicted {report['evicted']} entries, kept {report['kept']} "
        f"(code: {tiers.get('code', 0)}, system: {tiers.get('system', 0)}); "
        f"shard bytes {before} -> {after}"
    )
    return 0


# ---------------------------------------------------------------------- #
# lint / certify (shared target handling and reporting)
# ---------------------------------------------------------------------- #
def _builtin_lint_targets() -> dict:
    from repro.usecases import ALL_USECASES

    return {name: build for name, (build, _inputs) in ALL_USECASES.items()}


def _load_diagram_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"repro_lint_{path.stem}", path)
    if spec is None or spec.loader is None:
        raise ValueError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    build = getattr(module, "build_model", None)
    if build is None:
        raise ValueError(f"{path} does not define build_model()")
    return build


def _resolve_targets(requested: list[str], command: str) -> list[tuple[str, object]] | None:
    """Map target names/paths to diagram builders; ``None`` = usage error.

    Shared by ``lint`` and ``certify`` so both commands accept exactly the
    same target language.
    """
    builtins = _builtin_lint_targets()
    requested = requested or sorted(builtins)
    plan: list[tuple[str, object]] = []
    for target in requested:
        if target in builtins:
            plan.append((target, builtins[target]))
            continue
        path = Path(target)
        if path.suffix == ".py" and path.is_file():
            try:
                plan.append((target, _load_diagram_module(path)))
            except Exception as exc:
                print(f"cannot load {command} target {target}: {exc}", file=sys.stderr)
                return None
            continue
        print(
            f"unknown {command} target {target!r}: expected one of "
            f"{', '.join(sorted(builtins))} or a path to a .py file defining "
            "build_model()",
            file=sys.stderr,
        )
        return None
    return plan


def _gating_findings(records: list[dict], threshold: str) -> int:
    """Findings at or above ``threshold`` severity, across all records."""
    from repro.analysis.report import severity_at_least

    return sum(
        1
        for record in records
        for report in record["reports"]
        for finding in report["findings"]
        if severity_at_least(finding["severity"], threshold)
    )


def _print_records(command: str, records: list[dict], total_findings: int) -> None:
    for record in records:
        status = "clean" if record["ok"] else "FINDINGS"
        print(f"{record['target']}: {status}")
        for report in record["reports"]:
            counters = ", ".join(
                f"{k}={v}" for k, v in sorted(report["checked"].items())
            )
            print(f"  {report['analysis']}: {len(report['findings'])} finding(s)"
                  + (f" ({counters})" if counters else ""))
            for finding in report["findings"]:
                print(f"    {finding['severity']}: {finding['code']} "
                      f"[{finding['function']}:{finding['subject']}] "
                      f"{finding['message']}")
    print(f"{command}: {len(records)} target(s), {total_findings} finding(s)")


def _lint_one(target: str, build_diagram) -> dict:
    """Run the full analysis layer on one diagram; returns a JSON-able record."""
    from repro.adl.platforms import generic_predictable_multicore
    from repro.analysis.report import AnalysisReport, Finding
    from repro.analysis.static_mhp import compute_static_mhp
    from repro.analysis.verifier import verify_function
    from repro.analysis.wcet_facts import derive_flow_facts
    from repro.core.config import ToolchainConfig
    from repro.core.exceptions import ToolchainError
    from repro.core.pipeline import run_pipeline

    reports: list[AnalysisReport] = []
    interference: dict | None = None
    try:
        diagram = build_diagram()
        result = run_pipeline(
            diagram, generic_predictable_multicore(), ToolchainConfig()
        )
    except ToolchainError as exc:
        failed = AnalysisReport("pipeline")
        failed.add(Finding(code="pipeline.error", message=str(exc), function=target))
        reports.append(failed)
    else:
        entry = result.model.entry
        reports.append(verify_function(entry))
        _facts, facts_report = derive_flow_facts(entry)
        reports.append(facts_report)
        reports.append(result.schedule.race_findings(result.htg, entry))
        relation = compute_static_mhp(result.htg, entry, result.schedule.mapping)
        interference_report = AnalysisReport("static_interference")
        for key, value in relation.as_dict().items():
            interference_report.bump(key, value)
        interference_report.bump("tasks_footprinted", len(relation.footprints))
        reports.append(interference_report)
        interference = {
            "pairs": relation.as_dict(),
            "footprints": {
                tid: fp.as_dict() for tid, fp in sorted(relation.footprints.items())
            },
        }
    return {
        "target": target,
        "ok": all(r.ok for r in reports),
        "reports": [r.as_dict() for r in reports],
        "interference": interference,
    }


def _cmd_lint(args: argparse.Namespace) -> int:
    plan = _resolve_targets(args.targets, "lint")
    if plan is None:
        return 2
    records = [_lint_one(target, build) for target, build in plan]
    total_findings = sum(
        len(report["findings"]) for record in records for report in record["reports"]
    )
    if args.json:
        print(json.dumps({"targets": records, "findings": total_findings}, indent=2))
    else:
        _print_records("lint", records, total_findings)
    return 1 if _gating_findings(records, args.fail_on) else 0


# ---------------------------------------------------------------------- #
# certify
# ---------------------------------------------------------------------- #
def _certify_one(target: str, build_diagram) -> dict:
    """Certify one diagram's full result chain; returns a JSON-able record."""
    from repro.adl.platforms import generic_predictable_multicore
    from repro.analysis.certify import certify_pipeline_result
    from repro.analysis.report import AnalysisReport, Finding
    from repro.core.config import ToolchainConfig
    from repro.core.exceptions import ToolchainError
    from repro.core.pipeline import run_pipeline

    try:
        diagram = build_diagram()
        result = run_pipeline(
            diagram, generic_predictable_multicore(), ToolchainConfig()
        )
        chain = certify_pipeline_result(result, derive_facts=True)
    except ToolchainError as exc:
        failed = AnalysisReport("pipeline")
        failed.add(Finding(code="pipeline.error", message=str(exc), function=target))
        return {"target": target, "ok": False, "reports": [failed.as_dict()]}
    return {
        "target": target,
        "ok": chain.ok,
        "reports": [r.as_dict() for r in chain.reports],
    }


def _cmd_certify(args: argparse.Namespace) -> int:
    plan = _resolve_targets(args.targets, "certify")
    if plan is None:
        return 2
    records = [_certify_one(target, build) for target, build in plan]
    total_findings = sum(
        len(report["findings"]) for record in records for report in record["reports"]
    )
    if args.json:
        print(json.dumps({"targets": records, "findings": total_findings}, indent=2))
    else:
        _print_records("certify", records, total_findings)
    return 1 if _gating_findings(records, args.fail_on) else 0


# ---------------------------------------------------------------------- #
# diff (incremental re-analysis)
# ---------------------------------------------------------------------- #
def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.adl.platforms import generic_predictable_multicore
    from repro.analysis.incremental import IncrementalAnalysisStore
    from repro.analysis.verifier import verify_function
    from repro.analysis.wcet_facts import derive_flow_facts
    from repro.core.config import ToolchainConfig
    from repro.core.exceptions import ToolchainError
    from repro.core.pipeline import Pipeline

    plan = _resolve_targets([args.old, args.new], "diff")
    if plan is None:
        return 2
    (old_name, old_build), (new_name, new_build) = plan
    pipeline = Pipeline(generic_predictable_multicore(), ToolchainConfig())
    store = IncrementalAnalysisStore()

    def code_level_reports(result):
        """Lint-layer reports, replayed when the function is unchanged."""
        fingerprint = pipeline.wcet_cache.function_fingerprint(result.model.entry)
        cached = store.reports_for(fingerprint)
        if cached is not None:
            return cached, True
        entry = result.model.entry
        reports = [verify_function(entry), derive_flow_facts(entry)[1]]
        store.record(fingerprint, reports)
        return reports, False

    try:
        base = pipeline.run(old_build())
        base_reports, _ = code_level_reports(base)
        result = pipeline.run_incremental(base, new_build())
        new_reports, replayed = code_level_reports(result)
    except ToolchainError as exc:
        print(f"diff failed: {exc}", file=sys.stderr)
        return 1
    report = result.artifacts["incremental_report"]
    if args.json:
        print(
            json.dumps(
                {
                    "old": old_name,
                    "new": new_name,
                    "report": report.as_dict(),
                    "code_level_replayed": replayed,
                    "code_level_reports": [r.as_dict() for r in new_reports],
                    "old_wcet_bound": base.schedule.wcet_bound,
                    "new_wcet_bound": result.schedule.wcet_bound,
                },
                indent=2,
            )
        )
    else:
        print(f"diff {old_name} -> {new_name}")
        print(report.render())
        print(
            "code-level analyses: "
            + ("replayed (provenance=reused)" if replayed else "re-analysed")
            + f" ({len(base_reports)} report(s))"
        )
        print(
            f"WCET bound: {base.schedule.wcet_bound:.0f} -> "
            f"{result.schedule.wcet_bound:.0f} cycles"
        )
    return 0


# ---------------------------------------------------------------------- #
# trace (observability)
# ---------------------------------------------------------------------- #
def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.adl.platforms import generic_predictable_multicore
    from repro.core.config import ToolchainConfig
    from repro.core.exceptions import ToolchainError
    from repro.core.pipeline import run_pipeline
    from repro.core.reporting import fixed_point_report
    from repro.obs.tracer import validate_trace_events

    plan = _resolve_targets([args.target], "trace")
    if plan is None:
        return 2
    ((target, build),) = plan
    # Fresh buffers so the exported trace holds exactly this run; the
    # config's trace knob switches observability on for the run itself.
    obs.reset()
    config = ToolchainConfig(certify=True, static_pruning=True, trace=True)
    try:
        result = run_pipeline(build(), generic_predictable_multicore(), config)
    except ToolchainError as exc:
        print(f"trace failed: {exc}", file=sys.stderr)
        return 1
    tracer = obs.tracer()
    events = tracer.events()
    findings = validate_trace_events(events)
    out = Path(args.out)
    tracer.export_chrome(out)
    telemetry = result.telemetry()
    # With --metrics-json the JSON owns stdout; the summary moves to stderr.
    info = sys.stderr if args.metrics_json else sys.stdout
    print(f"trace: {target}: {len(events)} event(s) -> {out}", file=info)
    print(f"WCET bound: {result.schedule.wcet_bound:.0f} cycles", file=info)
    print(fixed_point_report(result.schedule), file=info)
    for finding in findings:
        print(f"trace validation: {finding}", file=sys.stderr)
    if args.metrics_json:
        print(
            json.dumps(
                {
                    "target": target,
                    "out": str(out),
                    "events": len(events),
                    "validation_findings": findings,
                    "metrics": telemetry.get("metrics", {}),
                },
                indent=2,
            )
        )
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        # not derived from __doc__: it is None under `python -OO`
        description="Maintenance command line of the repro flow.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cache = commands.add_parser("cache", help="inspect / bound a shared cache directory")
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)

    stats = cache_commands.add_parser("stats", help="aggregate hit/miss and entry counts")
    stats.add_argument("cache_dir", help="the cache directory to inspect")
    stats.set_defaults(func=_cmd_cache_stats)

    evict = cache_commands.add_parser(
        "evict", help="bound the directory by entry count, bytes and/or age"
    )
    evict.add_argument("cache_dir", help="the cache directory to bound")
    evict.add_argument(
        "--max-entries", type=int, default=None,
        help="keep at most this many entries across both tiers",
    )
    evict.add_argument(
        "--max-bytes", type=int, default=None,
        help="keep at most this many serialized entry bytes",
    )
    evict.add_argument(
        "--max-age-days", type=float, default=None,
        help="drop entries whose shard is older (entries used by this run are exempt)",
    )
    evict.set_defaults(func=_cmd_cache_evict)

    lint = commands.add_parser(
        "lint", help="run the static-analysis layer over dataflow models"
    )
    lint.add_argument(
        "targets",
        nargs="*",
        help="built-in use-case names (egpws, weaa, polka) and/or paths to "
        "Python files defining build_model(); default: all built-ins",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="info",
        help="minimum finding severity that makes the exit status 1 "
        "(default: info, i.e. any finding)",
    )
    lint.set_defaults(func=_cmd_lint)

    certify = commands.add_parser(
        "certify",
        help="re-validate pipeline results through the independent "
        "certificate checkers",
    )
    certify.add_argument(
        "targets",
        nargs="*",
        help="built-in use-case names (egpws, weaa, polka) and/or paths to "
        "Python files defining build_model(); default: all built-ins",
    )
    certify.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    certify.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="warning",
        help="minimum finding severity that makes the exit status 1 "
        "(default: warning)",
    )
    certify.set_defaults(func=_cmd_certify)

    diff = commands.add_parser(
        "diff",
        help="fingerprint diff + minimal invalidation frontier between two models",
    )
    diff.add_argument(
        "old",
        help="baseline target: a built-in use-case name (egpws, weaa, polka) "
        "or a path to a Python file defining build_model()",
    )
    diff.add_argument("new", help="edited target (same target language)")
    diff.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    diff.set_defaults(func=_cmd_diff)

    trace = commands.add_parser(
        "trace",
        help="run one target with observability on and export a Perfetto trace",
    )
    trace.add_argument(
        "target",
        help="a built-in use-case name (egpws, weaa, polka) or a path to a "
        "Python file defining build_model()",
    )
    trace.add_argument(
        "--out",
        default="trace.json",
        help="Chrome/Perfetto trace output path (default: trace.json)",
    )
    trace.add_argument(
        "--metrics-json",
        action="store_true",
        help="print the run's metric snapshot as JSON on stdout "
        "(the human summary moves to stderr)",
    )
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
