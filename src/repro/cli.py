"""Maintenance command line of the repro flow (``python -m repro``).

Currently one command family, ``cache``, operating on shared result-cache
directories (the ones named by ``REPRO_WCET_CACHE_DIR``, ``sweep
(cache_dir=...)`` or ``benchmarks/run_all.py --cache-dir``)::

    python -m repro cache stats  .wcet_cache
    python -m repro cache evict  .wcet_cache --max-entries 50000
    python -m repro cache evict  .wcet_cache --max-bytes 64000000 --max-age-days 30

``stats`` aggregates the hit/miss records and entry counts of both cache
tiers (code-level WCET analyses and system-level fixed-point results);
``evict`` applies the size/age-bounded eviction policy of
:meth:`repro.wcet.cache.WcetAnalysisCache.evict` so long-lived shared
directories stop growing without bound.  Entries of other schema versions
are never touched; delete stale ``v<N>`` subdirectories manually once no
older deployment reads them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.wcet.cache import (
    CACHE_SCHEMA_VERSION,
    WcetAnalysisCache,
    read_cache_dir_stats,
)


def _dir_bytes(cache_dir: Path) -> int:
    """Total size of the current schema version's shard files."""
    vdir = cache_dir / f"v{CACHE_SCHEMA_VERSION}"
    if not vdir.is_dir():
        return 0
    return sum(path.stat().st_size for path in vdir.glob("*.jsonl"))


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    if not Path(args.cache_dir).is_dir():
        # all-zero stats for a mistyped path would read like a healthy
        # empty cache; fail loudly instead
        print(f"no such cache directory: {args.cache_dir}", file=sys.stderr)
        return 2
    totals = read_cache_dir_stats(args.cache_dir)
    system = totals["system"]
    print(f"cache directory : {args.cache_dir}")
    print(f"schema version  : v{CACHE_SCHEMA_VERSION}")
    print(f"shard bytes     : {_dir_bytes(Path(args.cache_dir))}")
    print(
        "code level      : "
        f"{totals['entries']} entries, {totals['hits']}+{totals['disk_hits']} hits / "
        f"{totals['misses']} misses, {totals['flushed']} flushed"
    )
    print(
        "system level    : "
        f"{system['entries']} results, {system['hits']}+{system['disk_hits']} hits / "
        f"{system['misses']} fixed points run, {system['flushed']} flushed"
    )
    return 0


def _cmd_cache_evict(args: argparse.Namespace) -> int:
    if args.max_entries is None and args.max_bytes is None and args.max_age_days is None:
        print(
            "nothing to do: pass at least one of --max-entries, --max-bytes, "
            "--max-age-days",
            file=sys.stderr,
        )
        return 2
    if not Path(args.cache_dir).is_dir():
        # opening would silently create the directory, and an operator who
        # mistyped the path must not be told the real cache was bounded
        print(f"no such cache directory: {args.cache_dir}", file=sys.stderr)
        return 2
    before = _dir_bytes(Path(args.cache_dir))
    cache = WcetAnalysisCache.open(args.cache_dir)
    report = cache.evict(
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        max_age_seconds=None if args.max_age_days is None else args.max_age_days * 86400.0,
    )
    after = _dir_bytes(Path(args.cache_dir))
    tiers = report["tiers"]
    print(
        f"evicted {report['evicted']} entries, kept {report['kept']} "
        f"(code: {tiers.get('code', 0)}, system: {tiers.get('system', 0)}); "
        f"shard bytes {before} -> {after}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        # not derived from __doc__: it is None under `python -OO`
        description="Maintenance command line of the repro flow.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cache = commands.add_parser("cache", help="inspect / bound a shared cache directory")
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)

    stats = cache_commands.add_parser("stats", help="aggregate hit/miss and entry counts")
    stats.add_argument("cache_dir", help="the cache directory to inspect")
    stats.set_defaults(func=_cmd_cache_stats)

    evict = cache_commands.add_parser(
        "evict", help="bound the directory by entry count, bytes and/or age"
    )
    evict.add_argument("cache_dir", help="the cache directory to bound")
    evict.add_argument(
        "--max-entries", type=int, default=None,
        help="keep at most this many entries across both tiers",
    )
    evict.add_argument(
        "--max-bytes", type=int, default=None,
        help="keep at most this many serialized entry bytes",
    )
    evict.add_argument(
        "--max-age-days", type=float, default=None,
        help="drop entries whose shard is older (entries used by this run are exempt)",
    )
    evict.set_defaults(func=_cmd_cache_evict)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
