"""Exact branch-and-bound mapping for small task graphs.

Explores task-to-core assignments in topological task order, pruning with a
critical-path/workload lower bound, and evaluates complete assignments with
the full system-level WCET analysis.  Only practical for small HTGs (the
paper notes the problem is NP-hard and motivates the exact+heuristic mix of
experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.adl.architecture import Platform
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.program import Function
from repro.scheduling.registry import register_scheduler
from repro.scheduling.schedule import Schedule, evaluate_mapping
from repro.wcet.cache import WcetAnalysisCache, shared_cache
from repro.wcet.code_level import analyze_task_wcet
from repro.wcet.hardware_model import HardwareCostModel


@dataclass
class BnBStats:
    """Search statistics reported alongside the optimal schedule."""

    nodes_explored: int = 0
    leaves_evaluated: int = 0
    pruned: int = 0


def branch_and_bound_schedule(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    max_cores: int | None = None,
    max_tasks: int = 14,
    cache: WcetAnalysisCache | None = None,
) -> tuple[Schedule, BnBStats]:
    """Find the mapping with the smallest system-level WCET bound.

    Raises ``ValueError`` when the HTG has more than ``max_tasks`` leaf tasks
    (the search is exponential in the task count).
    """
    leaf_tasks = [t for t in htg.topological_tasks() if not t.is_synthetic]
    if len(leaf_tasks) > max_tasks:
        raise ValueError(
            f"branch and bound limited to {max_tasks} tasks, HTG has {len(leaf_tasks)}"
        )
    core_ids = [c.core_id for c in platform.cores]
    if max_cores is not None:
        core_ids = core_ids[:max_cores]

    cache = cache if cache is not None else shared_cache()
    model = HardwareCostModel(platform, core_ids[0])
    wcets = {
        t.task_id: analyze_task_wcet(t, function, model, cache=cache).total
        for t in leaf_tasks
    }
    total_work = sum(wcets.values())

    stats = BnBStats()
    best_schedule: Schedule | None = None
    best_bound = float("inf")
    order = [t.task_id for t in leaf_tasks]

    def lower_bound(mapping: dict[str, int], next_index: int) -> float:
        """Simple admissible bound: balanced remaining work over all cores."""
        per_core: dict[int, float] = {c: 0.0 for c in core_ids}
        for tid, core in mapping.items():
            per_core[core] += wcets[tid]
        assigned = sum(per_core.values())
        remaining = total_work - assigned
        # Even with perfect balance, the busiest core does at least this much.
        return max(max(per_core.values(), default=0.0), (assigned + remaining) / len(core_ids))

    def recurse(index: int, mapping: dict[str, int]) -> None:
        nonlocal best_schedule, best_bound
        stats.nodes_explored += 1
        if index == len(order):
            stats.leaves_evaluated += 1
            schedule = evaluate_mapping(
                htg, function, platform, mapping, scheduler="bnb", cache=cache
            )
            if schedule.wcet_bound < best_bound:
                best_bound = schedule.wcet_bound
                best_schedule = schedule
            return
        if lower_bound(mapping, index) >= best_bound:
            stats.pruned += 1
            return
        tid = order[index]
        # Symmetry breaking: the first task only considers the first core, and
        # each task may use at most one "fresh" (so far unused) core.
        used = sorted(set(mapping.values()))
        candidates: list[int] = list(used)
        for core in core_ids:
            if core not in used:
                candidates.append(core)
                break
        for core in candidates:
            mapping[tid] = core
            recurse(index + 1, mapping)
            del mapping[tid]

    with obs.span("schedule.bnb", tasks=len(leaf_tasks), cores=len(core_ids)) as bnb_span:
        recurse(0, {})
        bnb_span.set(nodes=stats.nodes_explored, pruned=stats.pruned)
    if obs.obs_enabled():
        registry = obs.metrics()
        registry.counter("bnb.nodes").inc(stats.nodes_explored)
        registry.counter("bnb.leaves").inc(stats.leaves_evaluated)
        registry.counter("bnb.pruned").inc(stats.pruned)
    if best_schedule is None:  # pragma: no cover - defensive
        raise RuntimeError("branch and bound failed to produce a schedule")
    best_schedule.metadata["nodes_explored"] = float(stats.nodes_explored)
    best_schedule.metadata["pruned"] = float(stats.pruned)
    return best_schedule, stats


# ---------------------------------------------------------------------- #
# registry adapter (see repro.scheduling.registry)
# ---------------------------------------------------------------------- #
@register_scheduler(
    "bnb", description="exact branch-and-bound mapping for small task graphs"
)
def _bnb_plugin(htg, function, platform, config, cache) -> Schedule:
    schedule, _ = branch_and_bound_schedule(
        htg, function, platform, max_cores=config.max_cores, cache=cache
    )
    return schedule
