"""Contention-aware WCET-driven list scheduling (the main ARGO heuristic).

A HEFT-style list scheduler whose costs are worst-case quantities:

* task priorities are upward ranks computed from task WCETs plus worst-case
  communication costs;
* when placing a task on a candidate core, the estimated finish time includes
  (i) worst-case communication from predecessors mapped to other cores and
  (ii) an interference estimate: the task's worst-case shared-access count
  times the interconnect penalty for the number of cores already busy in the
  candidate window -- this is what makes the scheduler prefer placements that
  limit the number of simultaneous shared-resource contenders (paper
  Section II: "the number of shared resource contenders ... is reduced during
  parallelization to avoid overly pessimistic WCET estimates").

The returned schedule is always re-analysed with the full system-level WCET
analysis, so the reported bound is sound regardless of estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adl.architecture import Platform
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.program import Function
from repro.scheduling.schedule import Schedule, evaluate_mapping
from repro.utils.intervals import Interval
from repro.wcet.code_level import analyze_task_wcet
from repro.wcet.hardware_model import HardwareCostModel


@dataclass
class WcetAwareListScheduler:
    """Configuration of the contention-aware list scheduler."""

    platform: Platform
    #: Weight of the interference estimate during placement (1.0 = full
    #: worst-case penalty, 0.0 = contention-oblivious placement).
    contention_weight: float = 1.0
    #: Restrict scheduling to the first ``max_cores`` cores (None = all).
    max_cores: int | None = None
    #: Use average-case costs instead of WCETs (the E4 baseline flips this).
    use_average_costs: bool = False

    _models: dict[int, HardwareCostModel] = field(default_factory=dict, init=False)

    def _core_ids(self) -> list[int]:
        ids = [c.core_id for c in self.platform.cores]
        if self.max_cores is not None:
            ids = ids[: self.max_cores]
        return ids

    def _model(self, core_id: int) -> HardwareCostModel:
        if core_id not in self._models:
            self._models[core_id] = HardwareCostModel(self.platform, core_id)
        return self._models[core_id]

    # ------------------------------------------------------------------ #
    def _task_cost(self, htg: HierarchicalTaskGraph, function: Function, tid: str, core_id: int) -> float:
        task = htg.task(tid)
        breakdown = analyze_task_wcet(task, function, self._model(core_id), average=self.use_average_costs)
        return breakdown.total

    def _upward_ranks(self, htg: HierarchicalTaskGraph, function: Function, core_ids: list[int]) -> dict[str, float]:
        """Upward rank: longest path from the task to any sink."""
        ref_core = core_ids[0]
        cost = {
            t.task_id: self._task_cost(htg, function, t.task_id, ref_core)
            for t in htg.leaf_tasks()
        }
        avg_comm = {}
        for edge in htg.edges:
            if edge.payload_bytes:
                avg_comm[(edge.src, edge.dst)] = self.platform.communication_latency(
                    edge.payload_bytes, 0, min(1, self.platform.num_cores - 1)
                )
        ranks: dict[str, float] = {}
        for task in reversed(htg.topological_tasks()):
            if task.is_synthetic:
                continue
            tid = task.task_id
            best_succ = 0.0
            for succ in htg.successors(tid):
                if succ not in cost:
                    continue
                best_succ = max(best_succ, ranks.get(succ, 0.0) + avg_comm.get((tid, succ), 0.0))
            ranks[tid] = cost[tid] + best_succ
        return ranks

    # ------------------------------------------------------------------ #
    def schedule(self, htg: HierarchicalTaskGraph, function: Function) -> Schedule:
        """Map and order the HTG, returning an analysed schedule."""
        core_ids = self._core_ids()
        ranks = self._upward_ranks(htg, function, core_ids)
        tasks = sorted(htg.leaf_tasks(), key=lambda t: (-ranks[t.task_id], t.task_id))

        mapping: dict[str, int] = {}
        order: dict[int, list[str]] = {c: [] for c in core_ids}
        finish: dict[str, float] = {}
        core_busy: dict[int, list[Interval]] = {c: [] for c in core_ids}
        core_ready: dict[int, float] = {c: 0.0 for c in core_ids}
        dependent = htg.dependent_pairs()

        # schedule in priority order but never before all predecessors
        placed: set[str] = set()
        ready_pool = list(tasks)
        while ready_pool:
            candidate = None
            for task in ready_pool:
                preds = htg.predecessors(task.task_id)
                if all(p in placed or htg.task(p).is_synthetic for p in preds):
                    candidate = task
                    break
            if candidate is None:
                # fall back to topological order (should not happen on a DAG)
                candidate = ready_pool[0]
            ready_pool.remove(candidate)
            tid = candidate.task_id

            best_core = core_ids[0]
            best_finish = float("inf")
            best_start = 0.0
            for core_id in core_ids:
                ready_deps = 0.0
                for pred in htg.predecessors(tid):
                    if pred not in finish:
                        continue
                    delay = 0.0
                    if mapping.get(pred) != core_id:
                        edge = htg.edge(pred, tid)
                        payload = edge.payload_bytes if edge else 0
                        if payload:
                            delay = self.platform.communication_latency(
                                payload, mapping[pred], core_id, max(0, len(core_ids) - 1)
                            )
                    ready_deps = max(ready_deps, finish[pred] + delay)
                start = max(core_ready[core_id], ready_deps)
                duration = self._task_cost(htg, function, tid, core_id)
                # interference estimate: cores already busy in the window
                window = Interval(start, start + max(duration, 1e-9))
                busy_cores = sum(
                    1
                    for other_core, intervals in core_busy.items()
                    if other_core != core_id
                    and any(iv.overlaps(window) for iv in intervals)
                )
                penalty = 0.0
                if not self.use_average_costs and candidate.total_shared_accesses:
                    penalty = (
                        self.contention_weight
                        * candidate.total_shared_accesses
                        * self._model(core_id).shared_access_penalty(busy_cores)
                    )
                candidate_finish = start + duration + penalty
                if candidate_finish < best_finish - 1e-9:
                    best_finish = candidate_finish
                    best_core = core_id
                    best_start = start

            mapping[tid] = best_core
            order[best_core].append(tid)
            finish[tid] = best_finish
            core_ready[best_core] = best_finish
            core_busy[best_core].append(Interval(best_start, best_finish))
            placed.add(tid)

        order = {c: tids for c, tids in order.items() if tids}
        schedule = evaluate_mapping(
            htg, function, self.platform, mapping, order,
            scheduler="wcet_list" if not self.use_average_costs else "acet_list",
        )
        schedule.metadata["estimated_makespan"] = max(finish.values(), default=0.0)
        del dependent
        return schedule
