"""Contention-aware WCET-driven list scheduling (the main ARGO heuristic).

A HEFT-style list scheduler whose costs are worst-case quantities:

* task priorities are upward ranks computed from task WCETs plus worst-case
  communication costs;
* when placing a task on a candidate core, the estimated finish time includes
  (i) worst-case communication from predecessors mapped to other cores and
  (ii) an interference estimate: the task's worst-case shared-access count
  times the interconnect penalty for the number of cores already busy in the
  candidate window -- this is what makes the scheduler prefer placements that
  limit the number of simultaneous shared-resource contenders (paper
  Section II: "the number of shared resource contenders ... is reduced during
  parallelization to avoid overly pessimistic WCET estimates").

The returned schedule is always re-analysed with the full system-level WCET
analysis, so the reported bound is sound regardless of estimation error.

Implementation notes (hot path):

* task WCETs are memoized in a :class:`~repro.wcet.cache.WcetAnalysisCache`
  shared with the final system-level analysis, so each distinct (task, core
  cost signature) pair is analysed exactly once;
* the ready pool is an in-degree-tracked heap keyed on ``(-rank, task_id)``
  instead of a repeated linear scan, preserving the exact selection order of
  the scan (highest rank first, task id as tie break);
* predecessor/successor adjacency and per-edge communication latencies are
  precomputed/memoized instead of re-scanning ``htg.edges`` per placement;
* per-core busy intervals are naturally sorted (cores fill left to right),
  so the interference-window overlap test is a bisect, not a full scan.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass, field

from repro import obs
from repro.adl.architecture import Platform
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.program import Function
from repro.scheduling.registry import register_scheduler
from repro.scheduling.schedule import Schedule, evaluate_mapping
from repro.wcet.cache import WcetAnalysisCache, shared_cache
from repro.wcet.code_level import analyze_task_wcet
from repro.wcet.hardware_model import HardwareCostModel


@dataclass
class WcetAwareListScheduler:
    """Configuration of the contention-aware list scheduler."""

    platform: Platform
    #: Weight of the interference estimate during placement (1.0 = full
    #: worst-case penalty, 0.0 = contention-oblivious placement).
    contention_weight: float = 1.0
    #: Restrict scheduling to the first ``max_cores`` cores (None = all).
    max_cores: int | None = None
    #: Use average-case costs instead of WCETs (the E4 baseline flips this).
    use_average_costs: bool = False
    #: Shared memo of code-level analyses; pass one cache to share results
    #: with other schedulers / the system-level analysis, or leave ``None``
    #: to use the process-wide (possibly disk-backed) shared cache.
    cache: WcetAnalysisCache | None = None

    _models: dict[int, HardwareCostModel] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = shared_cache()

    def _core_ids(self) -> list[int]:
        ids = [c.core_id for c in self.platform.cores]
        if self.max_cores is not None:
            ids = ids[: self.max_cores]
        return ids

    def _model(self, core_id: int) -> HardwareCostModel:
        if core_id not in self._models:
            self._models[core_id] = HardwareCostModel(self.platform, core_id)
        return self._models[core_id]

    # ------------------------------------------------------------------ #
    def _task_cost(self, htg: HierarchicalTaskGraph, function: Function, tid: str, core_id: int) -> float:
        task = htg.task(tid)
        breakdown = analyze_task_wcet(
            task, function, self._model(core_id), average=self.use_average_costs, cache=self.cache
        )
        return breakdown.total

    def _upward_ranks(self, htg: HierarchicalTaskGraph, function: Function, core_ids: list[int]) -> dict[str, float]:
        """Upward rank: longest path from the task to any sink."""
        ref_core = core_ids[0]
        cost = {
            t.task_id: self._task_cost(htg, function, t.task_id, ref_core)
            for t in htg.leaf_tasks()
        }
        num_cores = self.platform.num_cores
        avg_comm = {}
        if num_cores > 1:
            for edge in htg.edges:
                if edge.payload_bytes:
                    # Worst-case cross-core transfer with every other core
                    # contending; on a single-core platform there is no
                    # cross-core communication at all (guard above).
                    avg_comm[(edge.src, edge.dst)] = self.platform.communication_latency(
                        edge.payload_bytes, 0, 1, num_cores - 1
                    )
        ranks: dict[str, float] = {}
        for task in reversed(htg.topological_tasks()):
            if task.is_synthetic:
                continue
            tid = task.task_id
            best_succ = 0.0
            for succ in htg.successors(tid):
                if succ not in cost:
                    continue
                best_succ = max(best_succ, ranks.get(succ, 0.0) + avg_comm.get((tid, succ), 0.0))
            ranks[tid] = cost[tid] + best_succ
        return ranks

    # ------------------------------------------------------------------ #
    def schedule(self, htg: HierarchicalTaskGraph, function: Function) -> Schedule:
        """Map and order the HTG, returning an analysed schedule."""
        core_ids = self._core_ids()
        ranks = self._upward_ranks(htg, function, core_ids)
        leaf_tasks = {t.task_id: t for t in htg.leaf_tasks()}

        # Adjacency and payloads, precomputed once instead of scanning
        # ``htg.edges`` inside the placement loop.
        preds: dict[str, list[str]] = {tid: [] for tid in leaf_tasks}
        succs: dict[str, list[str]] = {tid: [] for tid in leaf_tasks}
        payload: dict[tuple[str, str], int] = {}
        for edge in htg.edges:
            if edge.src in leaf_tasks and edge.dst in leaf_tasks:
                preds[edge.dst].append(edge.src)
                succs[edge.src].append(edge.dst)
                if edge.payload_bytes:
                    payload[(edge.src, edge.dst)] = edge.payload_bytes

        # Per-edge communication latency table, filled on first use (the
        # latency depends only on the edge payload and the core pair).
        comm_contenders = max(0, len(core_ids) - 1)
        comm_table: dict[tuple[str, str, int, int], float] = {}

        def comm_latency(pred: str, tid: str, src_core: int, dst_core: int) -> float:
            if src_core == dst_core:
                return 0.0
            bytes_ = payload.get((pred, tid))
            if not bytes_:
                return 0.0
            key = (pred, tid, src_core, dst_core)
            delay = comm_table.get(key)
            if delay is None:
                delay = self.platform.communication_latency(
                    bytes_, src_core, dst_core, comm_contenders
                )
                comm_table[key] = delay
            return delay

        mapping: dict[str, int] = {}
        order: dict[int, list[str]] = {c: [] for c in core_ids}
        finish: dict[str, float] = {}
        # Per-core busy windows as parallel (starts, ends) lists; cores fill
        # left to right, so both lists are sorted and the windows disjoint.
        busy_starts: dict[int, list[float]] = {c: [] for c in core_ids}
        busy_ends: dict[int, list[float]] = {c: [] for c in core_ids}
        core_ready: dict[int, float] = {c: 0.0 for c in core_ids}

        # Ready set: in-degree tracking plus a heap keyed on (-rank, task_id),
        # which reproduces exactly the priority-ordered linear scan (highest
        # rank first, ties broken by task id).
        indegree = {tid: len(preds[tid]) for tid in leaf_tasks}
        ready = [(-ranks[tid], tid) for tid, deg in indegree.items() if deg == 0]
        heapq.heapify(ready)

        def place(tid: str) -> None:
            task = leaf_tasks[tid]
            best_core = core_ids[0]
            best_finish = float("inf")
            best_start = 0.0
            for core_id in core_ids:
                ready_deps = 0.0
                for pred in preds[tid]:
                    if pred not in finish:
                        continue
                    delay = comm_latency(pred, tid, mapping[pred], core_id)
                    ready_deps = max(ready_deps, finish[pred] + delay)
                start = max(core_ready[core_id], ready_deps)
                duration = self._task_cost(htg, function, tid, core_id)
                # interference estimate: cores already busy in the window
                window_end = start + max(duration, 1e-9)
                busy_cores = 0
                for other_core in core_ids:
                    if other_core == core_id:
                        continue
                    starts = busy_starts[other_core]
                    # rightmost window starting before this one ends; overlap
                    # iff it is still running when this window starts
                    idx = bisect_left(starts, window_end)
                    if idx and busy_ends[other_core][idx - 1] > start:
                        busy_cores += 1
                penalty = 0.0
                if not self.use_average_costs and task.total_shared_accesses:
                    penalty = (
                        self.contention_weight
                        * task.total_shared_accesses
                        * self._model(core_id).shared_access_penalty(busy_cores)
                    )
                candidate_finish = start + duration + penalty
                if candidate_finish < best_finish - 1e-9:
                    best_finish = candidate_finish
                    best_core = core_id
                    best_start = start

            mapping[tid] = best_core
            order[best_core].append(tid)
            finish[tid] = best_finish
            core_ready[best_core] = best_finish
            busy_starts[best_core].append(best_start)
            busy_ends[best_core].append(best_finish)

        max_ready = len(ready)
        while ready:
            if len(ready) > max_ready:
                max_ready = len(ready)
            _, tid = heapq.heappop(ready)
            place(tid)
            for succ in succs[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, (-ranks[succ], succ))
        if len(mapping) < len(leaf_tasks):
            # fall back to priority order (should not happen on a DAG)
            for tid in sorted(leaf_tasks, key=lambda t: (-ranks[t], t)):
                if tid not in mapping:
                    place(tid)

        if obs.obs_enabled():
            registry = obs.metrics()
            registry.counter("scheduler.list_runs").inc()
            registry.histogram("scheduler.ready_set_max").observe(max_ready)
        order = {c: tids for c, tids in order.items() if tids}
        with obs.span(
            "schedule.list",
            tasks=len(leaf_tasks),
            cores=len(core_ids),
            average=self.use_average_costs,
        ):
            schedule = evaluate_mapping(
                htg, function, self.platform, mapping, order,
                scheduler="wcet_list" if not self.use_average_costs else "acet_list",
                cache=self.cache,
            )
        schedule.metadata["estimated_makespan"] = max(finish.values(), default=0.0)
        return schedule


# ---------------------------------------------------------------------- #
# registry adapter (see repro.scheduling.registry)
# ---------------------------------------------------------------------- #
@register_scheduler(
    "wcet_list",
    description="contention- and communication-aware WCET-driven list scheduling",
)
def _wcet_list_plugin(htg, function, platform, config, cache) -> Schedule:
    return WcetAwareListScheduler(
        platform=platform,
        contention_weight=config.contention_weight,
        max_cores=config.max_cores,
        cache=cache,
    ).schedule(htg, function)
