"""Schedule representation and mapping evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adl.architecture import Platform
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.program import Function
from repro.utils.intervals import Interval, total_busy_time
from repro.wcet.cache import WcetAnalysisCache
from repro.wcet.system_level import SystemWcetResult, system_level_wcet


class ScheduleError(ValueError):
    """Raised for inconsistent schedules."""


@dataclass
class Schedule:
    """A mapping + per-core ordering of HTG tasks, with its analysed timing.

    ``wcet_bound`` (the makespan of the system-level analysis) is the
    guaranteed multi-core WCET the ARGO flow reports for this schedule.
    """

    htg_name: str
    mapping: dict[str, int]
    order: dict[int, list[str]]
    result: SystemWcetResult | None = None
    scheduler: str = ""
    metadata: dict[str, float] = field(default_factory=dict)

    @property
    def wcet_bound(self) -> float:
        if self.result is None:
            raise ScheduleError("schedule has not been analysed yet")
        return self.result.makespan

    @property
    def num_cores_used(self) -> int:
        return len({core for core in self.mapping.values()})

    def core_of(self, task_id: str) -> int:
        return self.mapping[task_id]

    def tasks_on(self, core: int) -> list[str]:
        return list(self.order.get(core, []))

    def utilization(self) -> dict[int, float]:
        """Busy-time fraction per core (needs an analysed result)."""
        if self.result is None:
            raise ScheduleError("schedule has not been analysed yet")
        makespan = max(self.result.makespan, 1e-9)
        busy: dict[int, list[Interval]] = {}
        for tid, interval in self.result.task_intervals.items():
            busy.setdefault(self.mapping[tid], []).append(interval)
        return {core: total_busy_time(ivs) / makespan for core, ivs in busy.items()}

    def validate(self, htg: HierarchicalTaskGraph, platform: Platform) -> None:
        leaf_ids = {t.task_id for t in htg.leaf_tasks()}
        mapped = set(self.mapping)
        if mapped != leaf_ids:
            raise ScheduleError(
                f"mapping covers {len(mapped)} tasks, HTG has {len(leaf_ids)}"
            )
        valid_cores = {c.core_id for c in platform.cores}
        for tid, core in self.mapping.items():
            if core not in valid_cores:
                raise ScheduleError(f"task {tid!r} mapped to unknown core {core}")
        ordered = [tid for tids in self.order.values() for tid in tids]
        if sorted(ordered) != sorted(self.mapping):
            raise ScheduleError("core orders do not cover exactly the mapped tasks")
        dependent = htg.dependent_pairs()
        for core, tids in self.order.items():
            for i, a in enumerate(tids):
                for b in tids[i + 1:]:
                    if (b, a) in dependent:
                        raise ScheduleError(
                            f"core {core}: order places {a!r} before its dependency {b!r}"
                        )

    def race_findings(self, htg: HierarchicalTaskGraph, function: Function):
        """Static race check of this schedule (see :mod:`repro.analysis.races`).

        Returns the checker's :class:`~repro.analysis.report.AnalysisReport`;
        ``report.ok`` means every conflicting cross-core pair is ordered.
        """
        from repro.analysis.races import check_schedule_races

        return check_schedule_races(htg, self, function)

    def certificate(self, htg: HierarchicalTaskGraph, platform: Platform):
        """This schedule's claims as a serializable certificate.

        See :mod:`repro.analysis.certify`; requires an analysed schedule.
        """
        from repro.analysis.certify import build_schedule_certificate

        return build_schedule_certificate(self, htg, platform)

    def certify(self, htg: HierarchicalTaskGraph, platform: Platform):
        """Independently re-validate this schedule's timing claims.

        Runs both the schedule checker and the fixed-point checker over
        this schedule's certificates and returns the merged
        :class:`~repro.analysis.report.AnalysisReport` -- no error-severity
        finding means the claimed WCET bound survived independent
        re-validation.
        """
        from repro.analysis.certify import (
            build_fixed_point_certificate,
            build_schedule_certificate,
            check_fixed_point_certificate,
            check_schedule_certificate,
        )

        if self.result is None:
            raise ScheduleError("schedule has not been analysed yet")
        report = check_schedule_certificate(
            build_schedule_certificate(self, htg, platform), htg, platform
        )
        report.merge(
            check_fixed_point_certificate(
                build_fixed_point_certificate(self.result, self.order, platform, htg),
                htg,
                platform,
            )
        )
        return report

    def gantt(self) -> str:
        """Small text Gantt chart for reports."""
        if self.result is None:
            return "(unanalysed schedule)"
        lines = [f"schedule [{self.scheduler}] WCET bound = {self.wcet_bound:.0f} cycles"]
        for core in sorted(self.order):
            entries = sorted(self.order[core], key=lambda t: self.result.task_intervals[t].start)
            parts = [
                f"{tid}@{self.result.task_intervals[tid].start:.0f}-{self.result.task_intervals[tid].end:.0f}"
                for tid in entries
            ]
            lines.append(f"  core {core}: " + ", ".join(parts))
        return "\n".join(lines)


def default_core_order(htg: HierarchicalTaskGraph, mapping: dict[str, int]) -> dict[int, list[str]]:
    """Per-core ordering derived from the HTG topological order.

    Tasks on each core execute in global topological order, which is always
    dependence-consistent.
    """
    order: dict[int, list[str]] = {}
    for task in htg.topological_tasks():
        if task.is_synthetic or task.task_id not in mapping:
            continue
        order.setdefault(mapping[task.task_id], []).append(task.task_id)
    return order


def evaluate_mapping(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    mapping: dict[str, int],
    order: dict[int, list[str]] | None = None,
    scheduler: str = "",
    cache: WcetAnalysisCache | None = None,
    certify: bool = False,
    warm_start=None,
    static_pruning: bool | None = None,
    vectorise_min_pairs: int | None = None,
) -> Schedule:
    """Run the system-level WCET analysis on a mapping and wrap it.

    ``certify`` is forwarded to :func:`system_level_wcet`: a memoized
    result replayed from the result cache is then re-validated by the
    fixed-point certificate checker before being trusted.  ``warm_start``
    (a previous :class:`SystemWcetResult`, or the ambient
    :func:`repro.wcet.system_level.warm_start_hint`) seeds the interference
    fixed point from the previous converged state; the warm result is
    certificate-checked before reuse.  ``static_pruning`` and
    ``vectorise_min_pairs`` are forwarded too (``None`` = the ambient
    :func:`repro.wcet.system_level.mhp_options`, then the defaults).
    """
    order = order or default_core_order(htg, mapping)
    result = system_level_wcet(
        htg, function, platform, mapping, order, cache=cache, certify=certify,
        warm_start=warm_start, static_pruning=static_pruning,
        vectorise_min_pairs=vectorise_min_pairs,
    )
    return Schedule(
        htg_name=htg.name,
        mapping=dict(mapping),
        order={c: list(t) for c, t in order.items()},
        result=result,
        scheduler=scheduler,
    )
