"""Metaheuristic mappers: simulated annealing and a genetic algorithm.

These cover the "advanced heuristics" half of the exact+heuristic combination
the paper envisions for the NP-hard scheduling/mapping problem.  Both optimise
the system-level WCET bound directly and are fully deterministic given a seed.
"""

from __future__ import annotations

import math


from repro.adl.architecture import Platform
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.program import Function
from repro.scheduling.list_scheduler import WcetAwareListScheduler
from repro.scheduling.registry import register_scheduler
from repro.scheduling.schedule import Schedule, evaluate_mapping
from repro.utils.rng import make_rng
from repro.wcet.cache import WcetAnalysisCache, shared_cache


def _core_ids(platform: Platform, max_cores: int | None) -> list[int]:
    ids = [c.core_id for c in platform.cores]
    return ids[:max_cores] if max_cores is not None else ids


def simulated_annealing_schedule(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    max_cores: int | None = None,
    iterations: int = 200,
    initial_temperature: float = 0.2,
    seed: int | None = None,
    cache: WcetAnalysisCache | None = None,
) -> Schedule:
    """Simulated annealing over task-to-core mappings.

    Starts from the WCET-aware list schedule and explores single-task moves;
    the acceptance temperature is expressed as a fraction of the current
    bound so the schedule scale does not need tuning.  All candidate
    evaluations share one analysis cache, so only the first evaluation pays
    the code-level analysis cost.
    """
    rng = make_rng(seed)
    cache = cache if cache is not None else shared_cache()
    core_ids = _core_ids(platform, max_cores)
    current = WcetAwareListScheduler(
        platform=platform, max_cores=max_cores, cache=cache
    ).schedule(htg, function)
    best = current
    task_ids = [t.task_id for t in htg.leaf_tasks()]
    if len(core_ids) == 1 or len(task_ids) <= 1:
        current.scheduler = "simulated_annealing"
        return current

    current_mapping = dict(current.mapping)
    current_bound = current.wcet_bound
    best_bound = current_bound
    for step in range(iterations):
        temperature = initial_temperature * (1.0 - step / max(1, iterations))
        tid = task_ids[int(rng.integers(0, len(task_ids)))]
        new_core = core_ids[int(rng.integers(0, len(core_ids)))]
        if current_mapping[tid] == new_core:
            continue
        candidate_mapping = dict(current_mapping)
        candidate_mapping[tid] = new_core
        candidate = evaluate_mapping(
            htg, function, platform, candidate_mapping, scheduler="simulated_annealing",
            cache=cache,
        )
        delta = candidate.wcet_bound - current_bound
        accept = delta <= 0
        if not accept and temperature > 0:
            prob = math.exp(-delta / max(1e-9, temperature * current_bound))
            accept = rng.random() < prob
        if accept:
            current_mapping = candidate_mapping
            current_bound = candidate.wcet_bound
            if current_bound < best_bound:
                best_bound = current_bound
                best = candidate
    best.scheduler = "simulated_annealing"
    best.metadata["iterations"] = float(iterations)
    return best


def genetic_schedule(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    max_cores: int | None = None,
    population_size: int = 12,
    generations: int = 15,
    mutation_rate: float = 0.15,
    seed: int | None = None,
    cache: WcetAnalysisCache | None = None,
) -> Schedule:
    """A small genetic algorithm over mappings (tournament selection,
    single-point crossover, per-gene mutation)."""
    rng = make_rng(seed)
    cache = cache if cache is not None else shared_cache()
    core_ids = _core_ids(platform, max_cores)
    task_ids = [t.task_id for t in htg.leaf_tasks()]
    seeded = WcetAwareListScheduler(
        platform=platform, max_cores=max_cores, cache=cache
    ).schedule(htg, function)
    if len(core_ids) == 1 or len(task_ids) <= 1:
        seeded.scheduler = "genetic"
        return seeded

    def random_genome() -> list[int]:
        return [int(rng.integers(0, len(core_ids))) for _ in task_ids]

    def genome_of(mapping: dict[str, int]) -> list[int]:
        return [core_ids.index(mapping[tid]) for tid in task_ids]

    def mapping_of(genome: list[int]) -> dict[str, int]:
        return {tid: core_ids[g] for tid, g in zip(task_ids, genome)}

    def fitness(genome: list[int]) -> tuple[float, Schedule]:
        schedule = evaluate_mapping(
            htg, function, platform, mapping_of(genome), scheduler="genetic", cache=cache
        )
        return schedule.wcet_bound, schedule

    population = [genome_of(seeded.mapping)] + [random_genome() for _ in range(population_size - 1)]
    evaluated = [fitness(g) for g in population]
    best_bound, best_schedule = min(evaluated, key=lambda e: e[0])

    for _ in range(generations):
        new_population: list[list[int]] = []
        while len(new_population) < population_size:
            # tournament selection of two parents
            def pick() -> list[int]:
                i, j = rng.integers(0, len(population), size=2)
                return population[i] if evaluated[i][0] <= evaluated[j][0] else population[j]

            mother, father = pick(), pick()
            cut = int(rng.integers(1, len(task_ids))) if len(task_ids) > 1 else 1
            child = mother[:cut] + father[cut:]
            for g in range(len(child)):
                if rng.random() < mutation_rate:
                    child[g] = int(rng.integers(0, len(core_ids)))
            new_population.append(child)
        population = new_population
        evaluated = [fitness(g) for g in population]
        generation_best_bound, generation_best = min(evaluated, key=lambda e: e[0])
        if generation_best_bound < best_bound:
            best_bound, best_schedule = generation_best_bound, generation_best

    best_schedule.scheduler = "genetic"
    best_schedule.metadata["generations"] = float(generations)
    return best_schedule


# ---------------------------------------------------------------------- #
# registry adapters (see repro.scheduling.registry)
# ---------------------------------------------------------------------- #
@register_scheduler(
    "simulated_annealing", description="simulated annealing over task-to-core mappings"
)
def _simulated_annealing_plugin(htg, function, platform, config, cache) -> Schedule:
    return simulated_annealing_schedule(
        htg, function, platform, max_cores=config.max_cores, seed=config.seed, cache=cache
    )


@register_scheduler("genetic", description="genetic algorithm over task-to-core mappings")
def _genetic_plugin(htg, function, platform, config, cache) -> Schedule:
    return genetic_schedule(
        htg, function, platform, max_cores=config.max_cores, seed=config.seed, cache=cache
    )
