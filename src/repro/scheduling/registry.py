"""Plugin registry for scheduling/mapping strategies.

The pipeline's ``schedule`` stage resolves ``ToolchainConfig.scheduler`` by
*name* through this registry instead of a hard-coded ``if/elif`` chain: the
six built-in schedulers self-register on import of :mod:`repro.scheduling`,
and third parties plug in new strategies with the :func:`register_scheduler`
decorator -- no core module needs to change.

A registered scheduler is a callable with the uniform signature

    ``fn(htg, function, platform, config, cache) -> Schedule``

where ``config`` is the :class:`~repro.core.config.ToolchainConfig` of the
running flow (schedulers pick the knobs they care about: ``max_cores``,
``contention_weight``, ``seed``, ...) and ``cache`` the shared
:class:`~repro.wcet.cache.WcetAnalysisCache`.

Example::

    from repro.scheduling.registry import register_scheduler

    @register_scheduler("round_robin", description="naive round-robin mapping")
    def round_robin(htg, function, platform, config, cache):
        ...
        return evaluate_mapping(htg, function, platform, mapping,
                                scheduler="round_robin", cache=cache)

    ToolchainConfig(scheduler="round_robin")   # now a valid knob value
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.utils.registry import Registry, first_doc_line

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adl.architecture import Platform
    from repro.htg.graph import HierarchicalTaskGraph
    from repro.ir.program import Function
    from repro.scheduling.schedule import Schedule
    from repro.wcet.cache import WcetAnalysisCache

    SchedulerFn = Callable[
        ["HierarchicalTaskGraph", "Function", "Platform", object, "WcetAnalysisCache"],
        "Schedule",
    ]
else:
    SchedulerFn = Callable


class SchedulerRegistryError(ValueError):
    """Unknown, duplicate or malformed scheduler registration/lookup."""


@dataclass(frozen=True)
class RegisteredScheduler:
    """One pluggable scheduling strategy."""

    name: str
    build: SchedulerFn
    description: str = ""


def _ensure_builtins() -> None:
    # The built-in schedulers register themselves when their modules are
    # imported; importing the package pulls all of them in.  Safe to call
    # repeatedly (module import is idempotent).
    importlib.import_module("repro.scheduling")


_REGISTRY: Registry[RegisteredScheduler] = Registry(
    "scheduler", SchedulerRegistryError, ensure=_ensure_builtins
)


def register_scheduler(
    name: str, *, description: str = "", replace: bool = False
) -> Callable[[SchedulerFn], SchedulerFn]:
    """Decorator registering ``fn`` as the scheduler called ``name``.

    Raises :class:`SchedulerRegistryError` on duplicate names unless
    ``replace=True`` (useful for tests and experimentation).
    """

    def decorator(fn: SchedulerFn) -> SchedulerFn:
        doc = description or first_doc_line(fn)
        _REGISTRY.register(
            name, RegisteredScheduler(name=name, build=fn, description=doc), replace
        )
        return fn

    return decorator


def unregister_scheduler(name: str) -> None:
    """Remove a registration (primarily for tests); unknown names are a no-op."""
    _REGISTRY.unregister(name)


def get_scheduler(name: str) -> RegisteredScheduler:
    """Look up a scheduler by name, raising with the known names on a miss."""
    return _REGISTRY.get(name)


def available_schedulers() -> tuple[str, ...]:
    """Sorted names of every registered scheduler."""
    return _REGISTRY.available()
