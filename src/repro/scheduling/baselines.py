"""Baseline schedulers the experiments compare against.

* :func:`sequential_schedule` -- everything on one core (the starting point of
  every speed-up figure);
* :func:`acet_driven_schedule` -- a scheduler that optimises for average-case
  execution times and ignores contention, the way an HPC-oriented
  parallelization would (paper Section III-C: parallel programs "written by
  HPC experts, who aim at improving average performance, and often ignore
  predictability issues");
* :func:`contention_free_schedule` -- a schedule that forbids any overlap
  between tasks touching shared memory, trading hardware utilisation for zero
  interference (the "constrain the execution to enforce the absence of
  conflicts" alternative mentioned in Section III-C).
"""

from __future__ import annotations

from repro.adl.architecture import Platform
from repro.htg.graph import HierarchicalTaskGraph
from repro.ir.program import Function
from repro.scheduling.list_scheduler import WcetAwareListScheduler
from repro.scheduling.registry import register_scheduler
from repro.scheduling.schedule import Schedule, evaluate_mapping
from repro.wcet.cache import WcetAnalysisCache, shared_cache


def sequential_schedule(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    core_id: int | None = None,
    cache: WcetAnalysisCache | None = None,
) -> Schedule:
    """All tasks on a single core, in topological order."""
    core = core_id if core_id is not None else platform.cores[0].core_id
    mapping = {t.task_id: core for t in htg.leaf_tasks()}
    schedule = evaluate_mapping(
        htg, function, platform, mapping, scheduler="sequential", cache=cache
    )
    return schedule


def acet_driven_schedule(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    max_cores: int | None = None,
    cache: WcetAnalysisCache | None = None,
) -> Schedule:
    """List scheduling driven by average-case costs, contention-oblivious.

    The placement decisions use optimistic average-case task costs and no
    interference estimate; the resulting schedule is then analysed with the
    full (sound) system-level WCET analysis, which is typically much worse
    than what the WCET-aware scheduler achieves -- that gap is experiment E4.
    """
    scheduler = WcetAwareListScheduler(
        platform=platform,
        contention_weight=0.0,
        max_cores=max_cores,
        use_average_costs=True,
        cache=cache,
    )
    schedule = scheduler.schedule(htg, function)
    schedule.scheduler = "acet_list"
    return schedule


def contention_free_schedule(
    htg: HierarchicalTaskGraph,
    function: Function,
    platform: Platform,
    max_cores: int | None = None,
    cache: WcetAnalysisCache | None = None,
) -> Schedule:
    """Parallel schedule in which shared-memory tasks never overlap.

    Implemented by serialising every task that performs at least one shared
    access into one global order (they are spread over the cores but execute
    in mutual exclusion); tasks without shared accesses are scheduled freely
    by the WCET-aware list scheduler.  The resulting system-level analysis
    sees zero contenders for every task.
    """
    cache = cache if cache is not None else shared_cache()
    base = WcetAwareListScheduler(
        platform=platform, max_cores=max_cores, cache=cache
    ).schedule(htg, function)
    mapping = dict(base.mapping)

    # Re-derive a per-core order where all shared-access tasks follow one
    # global topological chain; this is achieved by keeping the mapping but
    # re-evaluating with an order in which shared tasks are serialised through
    # artificial single-core placement of their "critical section".
    shared_tasks = [t.task_id for t in htg.topological_tasks() if not t.is_synthetic and t.total_shared_accesses > 0]
    core_ids = sorted({c.core_id for c in platform.cores})
    if max_cores is not None:
        core_ids = core_ids[:max_cores]
    # Place all shared tasks on one core (true mutual exclusion), remaining
    # tasks keep their placement from the base schedule.
    exclusive_core = core_ids[0]
    for tid in shared_tasks:
        mapping[tid] = exclusive_core
    schedule = evaluate_mapping(
        htg, function, platform, mapping, scheduler="contention_free", cache=cache
    )
    return schedule


# ---------------------------------------------------------------------- #
# registry adapters (see repro.scheduling.registry)
# ---------------------------------------------------------------------- #
@register_scheduler("sequential", description="all tasks on one core, topological order")
def _sequential_plugin(htg, function, platform, config, cache) -> Schedule:
    return sequential_schedule(htg, function, platform, cache=cache)


@register_scheduler(
    "acet_list", description="average-case-driven, contention-oblivious list scheduling"
)
def _acet_list_plugin(htg, function, platform, config, cache) -> Schedule:
    return acet_driven_schedule(
        htg, function, platform, max_cores=config.max_cores, cache=cache
    )
