"""WCET-aware scheduling and mapping of HTG tasks onto the platform.

The paper (Sections II-B, III-C) frames this as a combinatorial optimisation
problem to be attacked with "a combination of exact techniques and advanced
heuristics"; this package provides:

* :class:`~repro.scheduling.list_scheduler.WcetAwareListScheduler` -- the
  production heuristic: contention- and communication-aware list scheduling
  driven by upward ranks computed from WCETs;
* :func:`~repro.scheduling.bnb.branch_and_bound_schedule` -- an exact
  branch-and-bound mapper for small task graphs;
* :mod:`~repro.scheduling.metaheuristics` -- simulated annealing and a genetic
  algorithm for larger graphs;
* :mod:`~repro.scheduling.baselines` -- the comparison points used by the
  experiments (sequential, average-case-driven, contention-free);
* :mod:`~repro.scheduling.registry` -- the plugin registry the pipeline's
  ``schedule`` stage resolves ``ToolchainConfig.scheduler`` through.  The six
  built-in schedulers self-register on import of this package; third parties
  add strategies with :func:`~repro.scheduling.registry.register_scheduler`.
"""

from repro.scheduling.registry import (
    RegisteredScheduler,
    SchedulerRegistryError,
    available_schedulers,
    get_scheduler,
    register_scheduler,
    unregister_scheduler,
)
from repro.scheduling.schedule import Schedule, ScheduleError, default_core_order, evaluate_mapping
from repro.scheduling.list_scheduler import WcetAwareListScheduler
from repro.scheduling.bnb import branch_and_bound_schedule
from repro.scheduling.metaheuristics import simulated_annealing_schedule, genetic_schedule
from repro.scheduling.baselines import (
    sequential_schedule,
    acet_driven_schedule,
    contention_free_schedule,
)

__all__ = [
    "RegisteredScheduler",
    "SchedulerRegistryError",
    "available_schedulers",
    "get_scheduler",
    "register_scheduler",
    "unregister_scheduler",
    "Schedule",
    "ScheduleError",
    "default_core_order",
    "evaluate_mapping",
    "WcetAwareListScheduler",
    "branch_and_bound_schedule",
    "simulated_annealing_schedule",
    "genetic_schedule",
    "sequential_schedule",
    "acet_driven_schedule",
    "contention_free_schedule",
]
