"""Typed metrics: counters, gauges and histograms with mergeable snapshots.

The registry is deliberately tiny -- a name-keyed dictionary of three
instrument types -- because every consumer (``PipelineResult.telemetry()``,
``SweepOutcome.telemetry``, ``python -m repro trace --metrics-json``,
``benchmarks/run_all.py --trace``) exchanges plain :func:`snapshot` dicts,
never live instrument objects.  Snapshots are JSON-serializable, additive
under :meth:`MetricsRegistry.merge` (counters add, histograms pool, gauges
last-write-wins) and subtractable under :func:`snapshot_delta`, which is how
per-run and per-worker telemetry is carved out of the process-wide registry.

Thread safety: instrument *creation* is lock-protected; recording on an
instrument is a plain attribute update (atomic enough under the GIL for the
single-writer-per-process discipline used here -- sweeps parallelise across
processes, not threads).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "snapshot_delta",
]


class Counter:
    """A monotonically increasing integer-ish count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A pooled distribution summary: count / total / min / max.

    Full sample retention is deliberately avoided (bounded memory under
    metaheuristic loops recording thousands of observations); convergence
    *curves* are carried on ``SystemWcetResult.iteration_deltas`` and as
    trace counter events instead.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, data: dict[str, Any]) -> None:
        count = int(data.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(data.get("total", 0.0))
        lo = float(data.get("min", math.inf))
        hi = float(data.get("max", -math.inf))
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi


class MetricsRegistry:
    """Name-keyed counters/gauges/histograms with snapshot/merge/reset."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter())
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge())
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram())
        return instrument

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable copy of every instrument's current state."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.as_dict() for k, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another snapshot in: counters add, histograms pool."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, data in (snapshot.get("histograms") or {}).items():
            self.histogram(name).merge_dict(data)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)


def merge_snapshots(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Pool several snapshots (e.g. one per sweep worker) into one."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot:
            registry.merge(snapshot)
    return registry.snapshot()


def snapshot_delta(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """What happened *between* two snapshots of the same registry.

    Counters and histogram count/total subtract; zero-delta instruments are
    dropped; gauges and histogram min/max are reported as-of ``after`` (they
    have no meaningful difference).
    """
    counters = {}
    before_counters = before.get("counters") or {}
    for name, value in (after.get("counters") or {}).items():
        delta = value - before_counters.get(name, 0)
        if delta:
            counters[name] = delta
    histograms = {}
    before_histograms = before.get("histograms") or {}
    for name, data in (after.get("histograms") or {}).items():
        prev = before_histograms.get(name, {})
        count = int(data.get("count", 0)) - int(prev.get("count", 0))
        if count <= 0:
            continue
        entry = dict(data)
        entry["count"] = count
        entry["total"] = float(data.get("total", 0.0)) - float(prev.get("total", 0.0))
        histograms[name] = entry
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges") or {}),
        "histograms": histograms,
    }
