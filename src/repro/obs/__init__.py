"""``repro.obs`` -- process-wide observability: span tracing + metrics.

The toolchain's internals (fixed-point convergence, MHP pruning, LP solves,
cache tiers, certificate checkers, scheduler search) compute rich telemetry
and used to discard it.  This package collects it behind one ambient switch.

Observability contract
======================

**What is recorded.**  When enabled, instrumented call sites emit

* *spans* (Chrome ``X`` events): ``pipeline.run`` > ``stage.<name>`` >
  solver internals (``fixed_point`` with nested ``fixed_point.iteration``
  spans, ``ipet.solve``, ``schedule.list`` / ``schedule.bnb``,
  ``certify.<checker>``, ``sweep.case``);
* *counter tracks* (Chrome ``C`` events): ``fixed_point.max_delta`` per
  iteration -- the convergence curve;
* *metrics* in the process-wide :class:`~repro.obs.metrics.MetricsRegistry`:
  ``fixed_point.runs`` / ``.iterations`` / ``.not_converged`` /
  ``.final_delta`` / ``mhp.pairs_candidate`` / ``.pairs_kept`` /
  ``.pairs_pruned`` / ``.pairs_tested``, ``system_cache.hits`` /
  ``.misses``, ``wcet_cache.<delta>`` per pipeline run,
  ``cache.evicted_*``, ``ipet.solves`` / ``.vars`` / ``.constraints``,
  ``certify.<checker>.seconds`` / ``.ok`` / ``.findings``,
  ``scheduler.ready_set_max``, ``bnb.nodes`` / ``.leaves`` / ``.pruned``,
  ``incremental.stages_reused`` / ``.stages_recomputed`` /
  ``.regions_reused`` / ``.regions_recomputed`` / ``.race_pairs_reused``.

**Name stability.**  Span and metric names above are a reporting API:
renames are breaking changes (dashboards, ``run_all.py --trace`` records
and the CI trace smoke test key on them) and belong in CHANGES.md.  New
names may be added freely.

**Overhead budget.**  Disabled (the default), the entire surface is a
module-global flag check plus a shared no-op span -- budgeted at <1% of
end-to-end wall clock and enforced by ``benchmarks/bench_e17_obs_overhead``.
Enabled, recording must stay under 5% on fixed-point-heavy workloads
(same benchmark) and must never change any analysis result: traced and
untraced runs produce bit-identical bounds.  Hot loops therefore guard on
:func:`obs_enabled` *once* and batch their recording (e.g. the list
scheduler tracks its max ready-set size locally and records one value).

**Enabling.**  Three equivalent switches, mirroring the ambient
``mhp_options()`` pattern in :mod:`repro.wcet.system_level`:

* ``ToolchainConfig(trace=True)`` -- per ``Pipeline.run`` (restored after);
* :func:`set_enabled` / :func:`observed` -- ambient, process-wide;
* ``REPRO_TRACE`` -- process-wide from the environment: ``1``/``true``
  just enables; any other value is a *directory* into which each process
  dumps ``trace-<pid>.json`` + ``metrics-<pid>.json`` at exit.

**Multiprocessing.**  Trace buffers and the metrics registry are per
process and are never pickled.  ``ProcessPoolExecutor`` sweep workers
(a) inherit the enabled flag on fork or re-read ``REPRO_TRACE`` on spawn,
(b) reset inherited buffers in ``os.register_at_fork`` so a fork never
duplicates parent events, (c) return their per-case metrics snapshot
through ``SweepOutcome.telemetry`` (merged in the parent, the same
discipline as cache-stat deltas), and (d) with the directory form of
``REPRO_TRACE``, write their own per-pid trace/metrics files at exit --
the exporters compose by *files per pid*, not by shared buffers.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.tracer import (
    Tracer,
    chrome_trace_document,
    validate_trace_events,
    validate_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "TRACE_ENV_VAR",
    "chrome_trace_document",
    "counter",
    "gauge",
    "histogram",
    "merge_snapshots",
    "metrics",
    "metrics_snapshot",
    "obs_enabled",
    "observed",
    "reset",
    "set_enabled",
    "snapshot_delta",
    "span",
    "trace_complete",
    "trace_counter",
    "tracer",
    "validate_trace_events",
    "validate_trace_file",
]

TRACE_ENV_VAR = "REPRO_TRACE"

_ENABLED = False
_TRACER = Tracer()
_METRICS = MetricsRegistry()


def obs_enabled() -> bool:
    """The ambient switch; hot paths check this once per operation."""
    return _ENABLED


def set_enabled(active: bool) -> bool:
    """Set the ambient switch, returning the previous value (for restore)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(active)
    return previous


@contextmanager
def observed(active: bool = True) -> Iterator[None]:
    """Ambiently enable observability for a block (never disables an
    already-enabled process; restores the previous state on exit)."""
    previous = set_enabled(_ENABLED or bool(active))
    try:
        yield
    finally:
        set_enabled(previous)


def tracer() -> Tracer:
    return _TRACER


def metrics() -> MetricsRegistry:
    return _METRICS


def metrics_snapshot() -> dict[str, Any]:
    return _METRICS.snapshot()


def counter(name: str) -> Counter:
    return _METRICS.counter(name)


def gauge(name: str) -> Gauge:
    return _METRICS.gauge(name)


def histogram(name: str) -> Histogram:
    return _METRICS.histogram(name)


def reset(disable: bool = True) -> None:
    """Drop all buffered telemetry (and by default the enabled flag)."""
    _TRACER.clear()
    _METRICS.reset()
    if disable:
        set_enabled(False)


class _NullSpan:
    """Shared do-nothing span handed out while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "args", "_start")

    def __init__(self, name: str, args: dict[str, Any]) -> None:
        self.name = name
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def set(self, **attrs: Any) -> "_Span":
        self.args.update(attrs)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        end = time.perf_counter()
        if exc_type is not None:
            self.args.setdefault("error", getattr(exc_type, "__name__", "error"))
        _TRACER.record_complete(self.name, self._start, end - self._start, self.args or None)
        return False


def span(name: str, **attrs: Any) -> "_Span | _NullSpan":
    """Context manager recording one complete (``X``) event on exit.

    Near-free when disabled: returns a shared no-op singleton.  ``.set()``
    attaches attributes discovered mid-span (e.g. iteration counts).
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _Span(name, attrs)


def trace_complete(
    name: str, start: float, duration: float, args: dict[str, Any] | None = None
) -> None:
    """Record a pre-timed span (hot loops time locally, then call once)."""
    if _ENABLED:
        _TRACER.record_complete(name, start, duration, args)


def trace_counter(name: str, values: dict[str, float]) -> None:
    if _ENABLED:
        _TRACER.record_counter(name, values)


# --- environment activation -------------------------------------------------


def _dump_to_dir(out_dir: Path) -> None:
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
        pid = os.getpid()
        if len(_TRACER):
            _TRACER.export_chrome(out_dir / f"trace-{pid}.json")
        if not _METRICS.is_empty():
            (out_dir / f"metrics-{pid}.json").write_text(
                json.dumps(_METRICS.snapshot(), indent=2, sort_keys=True)
            )
    except OSError:
        # never let telemetry flushing turn a clean exit into a crash
        pass


def _reset_after_fork() -> None:
    # a forked worker starts with its own clean buffers; without this the
    # inherited parent events would be dumped/merged twice
    _TRACER.clear()
    _METRICS.reset()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


def _activate_from_env() -> None:
    raw = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not raw or raw.lower() in {"0", "false", "off", "no"}:
        return
    set_enabled(True)
    if raw.lower() in {"1", "true", "on", "yes"}:
        return
    atexit.register(_dump_to_dir, Path(raw))


_activate_from_env()
