"""Span tracer with Chrome/Perfetto ``trace.json`` and JSONL exporters.

Events follow the Chrome trace-event format (the JSON object form with a
``traceEvents`` array), which both ``chrome://tracing`` and Perfetto load
directly.  The tracer records three phases:

* ``X`` (complete) -- one event per span, carrying ``ts``/``dur`` in
  microseconds relative to the tracer's epoch.  Spans are recorded at
  *exit*, so the raw buffer is not ts-sorted; both exporters sort.
* ``C`` (counter) -- time series samples, e.g. the fixed point's
  per-iteration max delta (rendered by Perfetto as a counter track).
* ``i`` (instant) -- point annotations.

:func:`validate_trace_events` independently checks the invariants the CI
trace smoke job relies on: well-formed phases, complete ``X`` events (or
matched ``B``/``E`` pairs, accepted for third-party traces), non-negative
durations, monotonic ``ts`` per ``(pid, tid)`` and proper span nesting.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "Tracer",
    "chrome_trace_document",
    "validate_trace_events",
    "validate_trace_file",
]

#: Hard cap on buffered events: a runaway metaheuristic loop with tracing on
#: degrades to dropped events (counted), never to unbounded memory.
MAX_EVENTS = 1_000_000

_KNOWN_PHASES = {"X", "B", "E", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"}


class Tracer:
    """Append-only, lock-protected buffer of Chrome trace events."""

    def __init__(self, max_events: int = MAX_EVENTS) -> None:
        self._lock = threading.Lock()
        self._events: list[dict[str, Any]] = []
        self._epoch = time.perf_counter()
        self.max_events = max_events
        self.dropped = 0

    def _stamp(self, start: float) -> float:
        return round((start - self._epoch) * 1e6, 3)

    def _append(self, event: dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            self._events.append(event)

    def record_complete(
        self,
        name: str,
        start: float,
        duration: float,
        args: dict[str, Any] | None = None,
        cat: str = "repro",
    ) -> None:
        """One ``X`` event; ``start`` is a ``time.perf_counter()`` reading."""
        event: dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": self._stamp(start),
            "dur": round(max(duration, 0.0) * 1e6, 3),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        self._append(event)

    def record_instant(self, name: str, args: dict[str, Any] | None = None) -> None:
        event: dict[str, Any] = {
            "name": name,
            "cat": "repro",
            "ph": "i",
            "s": "t",
            "ts": self._stamp(time.perf_counter()),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        self._append(event)

    def record_counter(self, name: str, values: dict[str, float]) -> None:
        """One ``C`` sample; Perfetto renders one track per key."""
        self._append(
            {
                "name": name,
                "cat": "repro",
                "ph": "C",
                "ts": self._stamp(time.perf_counter()),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": dict(values),
            }
        )

    def events(self) -> list[dict[str, Any]]:
        """A ts-sorted copy (parents before children on ties)."""
        with self._lock:
            events = list(self._events)
        return sorted(events, key=lambda e: (e.get("ts", 0.0), -e.get("dur", 0.0)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0
        self._epoch = time.perf_counter()

    def export_chrome(self, path: "str | Path") -> Path:
        """Write the Chrome/Perfetto ``trace.json`` object form."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(chrome_trace_document(self.events())))
        return path

    def export_jsonl(self, path: "str | Path") -> Path:
        """One event per line -- greppable / streamable form."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for event in self.events():
                handle.write(json.dumps(event))
                handle.write("\n")
        return path


def chrome_trace_document(events: list[dict[str, Any]]) -> dict[str, Any]:
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def _check_common(event: Any, index: int, findings: list[str]) -> bool:
    if not isinstance(event, dict):
        findings.append(f"event {index}: not an object")
        return False
    phase = event.get("ph")
    if phase not in _KNOWN_PHASES:
        findings.append(f"event {index}: unknown phase {phase!r}")
        return False
    if phase != "M" and not isinstance(event.get("name"), str):
        findings.append(f"event {index}: missing name")
        return False
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        findings.append(f"event {index}: bad ts {ts!r}")
        return False
    if phase == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            findings.append(f"event {index} ({event.get('name')}): bad dur {dur!r}")
            return False
    return True


def validate_trace_events(events: Iterable[Any]) -> list[str]:
    """Schema + nesting findings for a trace-event list (empty == valid).

    Checks: known phases; ``X`` events carry a non-negative ``dur``;
    ``B``/``E`` pairs balance per thread; per ``(pid, tid)`` the events are
    ``ts``-monotonic as listed and ``X`` spans nest without partial overlap.
    """
    findings: list[str] = []
    lanes: dict[tuple[Any, Any], list[dict[str, Any]]] = {}
    for index, event in enumerate(events):
        if not _check_common(event, index, findings):
            continue
        if event.get("ph") == "M":
            continue
        lanes.setdefault((event.get("pid"), event.get("tid")), []).append(event)

    for (pid, tid), lane in lanes.items():
        last_ts = -1.0
        open_begins = 0
        # stack of X-span end times; a new span starting inside the top span
        # must also end inside it (partial overlap is malformed nesting)
        stack: list[float] = []
        for event in lane:
            ts = float(event["ts"])
            if ts < last_ts:
                findings.append(
                    f"tid {pid}/{tid}: ts not monotonic at {event.get('name')!r}"
                    f" ({ts} < {last_ts})"
                )
            last_ts = ts
            phase = event["ph"]
            if phase == "B":
                open_begins += 1
            elif phase == "E":
                open_begins -= 1
                if open_begins < 0:
                    findings.append(f"tid {pid}/{tid}: E without matching B")
                    open_begins = 0
            elif phase == "X":
                end = ts + float(event["dur"])
                while stack and stack[-1] <= ts + 1e-9:
                    stack.pop()
                if stack and end > stack[-1] + 1e-6:
                    findings.append(
                        f"tid {pid}/{tid}: span {event.get('name')!r} overlaps"
                        f" its enclosing span ({end} > {stack[-1]})"
                    )
                stack.append(end)
        if open_begins:
            findings.append(f"tid {pid}/{tid}: {open_begins} unmatched B event(s)")
    return findings


def validate_trace_file(path: "str | Path") -> list[str]:
    """Validate a ``trace.json`` file (object form or bare event array)."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable trace file: {exc}"]
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            return ["trace object has no traceEvents array"]
    elif isinstance(document, list):
        events = document
    else:
        return ["trace document is neither an object nor an array"]
    return validate_trace_events(events)
