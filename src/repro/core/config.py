"""Tool-chain configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass

VALID_GRANULARITIES = ("block", "loop")

#: Kept for backwards compatibility; the authoritative list is the scheduler
#: registry (:func:`repro.scheduling.registry.available_schedulers`), which
#: also contains any third-party registrations.
VALID_SCHEDULERS = ("wcet_list", "acet_list", "sequential", "simulated_annealing", "genetic", "bnb")


@dataclass
class ToolchainConfig:
    """Knobs of the ARGO flow exposed through the cross-layer interface.

    These are the decisions the paper says end users should be able to
    "control and influence" (Section II-E): task granularity, the number of
    loop chunks, the scheduler, how many cores to use, which predictability
    transformations to run and how many feedback iterations to spend.

    ``scheduler`` and ``passes`` are resolved *by name* through the plugin
    registries (:mod:`repro.scheduling.registry`,
    :mod:`repro.transforms.registry`), so third-party strategies registered
    before the config is built are accepted exactly like the built-ins.
    """

    granularity: str = "loop"
    loop_chunks: int = 4
    scheduler: str = "wcet_list"
    max_cores: int | None = None
    #: Ordered names of the transformation passes to run (resolved through
    #: the transforms registry).  ``None`` derives the pipeline from the
    #: legacy boolean knobs below, which keeps old call sites working.
    passes: tuple[str, ...] | None = None
    run_cleanup_passes: bool = True
    allocate_scratchpads: bool = True
    #: None = use the smallest core scratchpad of the platform.
    scratchpad_capacity_bytes: int | None = None
    feedback_iterations: int = 1
    contention_weight: float = 1.0
    seed: int = 0
    #: Gate the ``parallel`` stage on the static schedule race checker
    #: (:mod:`repro.analysis.races`): a schedule with an unordered pair of
    #: conflicting shared accesses aborts the run with a ``PipelineError``
    #: before any code is generated.  On by default; the knob exists for
    #: experiments that intentionally build unsound schedules.
    race_check: bool = True
    #: Opt into the pipeline's per-stage artifact cache: stages that declare
    #: a content-addressed cache key (the built-in ``schedule`` and ``wcet``
    #: stages do) reuse their artifacts across runs with identical inputs.
    #: The flow is deterministic, so cached and recomputed runs are
    #: bit-identical; the knob exists because caching whole schedules trades
    #: memory for time, which is the driver's call (sweeps over repeated
    #: design points want it, one-shot runs do not care).
    stage_cache: bool = False
    #: Run the ``certify`` pipeline stage: after the flow finishes, the
    #: independent certificate checkers (:mod:`repro.analysis.certify`)
    #: re-validate the schedule, the IPET solution and the system-level
    #: fixed point, and a refuted claim aborts the run with a
    #: ``CertificationError``.  Off by default (it re-solves the IPET LP);
    #: CI turns it on.
    certify: bool = False
    #: Prune the system-level MHP contender derivation with the static
    #: interference relation (:mod:`repro.analysis.static_mhp`):
    #: dependence-ordered and shared-footprint-disjoint task pairs are
    #: excluded once, before the fixed point iterates.  Models an
    #: address-aware interconnect, so bounds can only tighten; off by
    #: default to keep the unpruned pass as the differential oracle.
    static_pruning: bool = False
    #: Pair-count threshold above which the ``auto`` MHP backend switches
    #: to the vectorised pass.  ``None`` = the built-in default (also
    #: overridable per process via ``REPRO_MHP_VECTORISE_MIN_PAIRS``).
    mhp_vectorise_min_pairs: int | None = None
    #: Enable observability (:mod:`repro.obs` spans + metrics) for runs of
    #: this config; the ambient state is restored when the run finishes.
    #: Purely diagnostic -- traced and untraced runs produce bit-identical
    #: results, so the knob is excluded from content-addressed cache keys.
    #: Also switchable process-wide via the ``REPRO_TRACE`` environment
    #: variable (see :mod:`repro.obs`).
    trace: bool = False

    def __post_init__(self) -> None:
        # Registries are imported lazily: config is a leaf module and the
        # registries pull in the scheduling / transforms packages.
        from repro.scheduling.registry import available_schedulers
        from repro.transforms.registry import available_passes

        if self.granularity not in VALID_GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {VALID_GRANULARITIES}, got {self.granularity!r}"
            )
        registered = available_schedulers()
        if self.scheduler not in registered:
            raise ValueError(
                f"scheduler must be one of the registered schedulers {registered}, "
                f"got {self.scheduler!r}"
            )
        if self.loop_chunks < 1:
            raise ValueError("loop_chunks must be at least 1")
        if self.feedback_iterations < 1:
            raise ValueError("feedback_iterations must be at least 1")
        if self.max_cores is not None and self.max_cores < 1:
            raise ValueError(f"max_cores must be at least 1 (or None = all), got {self.max_cores}")
        if not math.isfinite(self.contention_weight) or self.contention_weight < 0:
            raise ValueError(
                f"contention_weight must be a finite non-negative number, "
                f"got {self.contention_weight!r}"
            )
        if not isinstance(self.stage_cache, bool):
            raise ValueError(
                f"stage_cache must be a bool, got {self.stage_cache!r}"
            )
        if not isinstance(self.race_check, bool):
            raise ValueError(
                f"race_check must be a bool, got {self.race_check!r}"
            )
        if not isinstance(self.certify, bool):
            raise ValueError(
                f"certify must be a bool, got {self.certify!r}"
            )
        if not isinstance(self.static_pruning, bool):
            raise ValueError(
                f"static_pruning must be a bool, got {self.static_pruning!r}"
            )
        if not isinstance(self.trace, bool):
            raise ValueError(
                f"trace must be a bool, got {self.trace!r}"
            )
        if self.mhp_vectorise_min_pairs is not None and (
            not isinstance(self.mhp_vectorise_min_pairs, int)
            or self.mhp_vectorise_min_pairs < 0
        ):
            raise ValueError(
                "mhp_vectorise_min_pairs must be a non-negative int "
                f"(or None = default), got {self.mhp_vectorise_min_pairs!r}"
            )
        if self.scratchpad_capacity_bytes is not None and self.scratchpad_capacity_bytes < 1:
            raise ValueError(
                "scratchpad_capacity_bytes must be at least 1 (or None = platform minimum), "
                f"got {self.scratchpad_capacity_bytes}"
            )
        if self.passes is not None:
            self.passes = tuple(self.passes)
            known = available_passes()
            for name in self.passes:
                if name not in known:
                    raise ValueError(
                        f"unknown transformation pass {name!r}; registered passes: {known}"
                    )

    def effective_passes(self) -> tuple[str, ...]:
        """The ordered pass pipeline this config asks for.

        ``passes`` wins when set; otherwise the pipeline is derived from the
        legacy boolean knobs (``run_cleanup_passes``,
        ``allocate_scratchpads``).
        """
        if self.passes is not None:
            return self.passes
        names: list[str] = []
        if self.run_cleanup_passes:
            names += ["constant_folding", "dead_code_elimination"]
        if self.allocate_scratchpads:
            names.append("scratchpad_allocation")
        return tuple(names)
