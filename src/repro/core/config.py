"""Tool-chain configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

VALID_SCHEDULERS = ("wcet_list", "acet_list", "sequential", "simulated_annealing", "genetic", "bnb")
VALID_GRANULARITIES = ("block", "loop")


@dataclass
class ToolchainConfig:
    """Knobs of the ARGO flow exposed through the cross-layer interface.

    These are the decisions the paper says end users should be able to
    "control and influence" (Section II-E): task granularity, the number of
    loop chunks, the scheduler, how many cores to use, whether to run the
    predictability transformations and how many feedback iterations to spend.
    """

    granularity: str = "loop"
    loop_chunks: int = 4
    scheduler: str = "wcet_list"
    max_cores: int | None = None
    run_cleanup_passes: bool = True
    allocate_scratchpads: bool = True
    #: None = use the smallest core scratchpad of the platform.
    scratchpad_capacity_bytes: int | None = None
    feedback_iterations: int = 1
    contention_weight: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.granularity not in VALID_GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {VALID_GRANULARITIES}, got {self.granularity!r}"
            )
        if self.scheduler not in VALID_SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {VALID_SCHEDULERS}, got {self.scheduler!r}"
            )
        if self.loop_chunks < 1:
            raise ValueError("loop_chunks must be at least 1")
        if self.feedback_iterations < 1:
            raise ValueError("feedback_iterations must be at least 1")
