"""End-to-end ARGO tool chain (paper Fig. 1) with cross-layer feedback.

Two ways to drive the flow:

* :class:`ArgoToolchain` -- the classic one-platform facade (a thin shim
  over the pipeline API, kept for compatibility);
* :class:`~repro.core.pipeline.Pipeline` / :func:`~repro.core.sweep.sweep`
  -- the composable stage-graph API and the parallel design-space sweep
  runner built on top of it.
"""

from repro.core.config import ToolchainConfig
from repro.core.exceptions import ToolchainError
from repro.core.pipeline import (
    Pipeline,
    PipelineError,
    PipelineResult,
    Stage,
    StageArtifactCache,
    StageRecord,
    default_stages,
    run_pipeline,
    shared_stage_cache,
)
from repro.core.sweep import SweepCase, SweepOutcome, SweepResult, sweep, sweep_grid
from repro.core.toolchain import ArgoToolchain, ToolchainResult
from repro.core.feedback import CrossLayerFeedback, FeedbackHistoryEntry
from repro.core.reporting import (
    bottleneck_report,
    fixed_point_report,
    toolchain_summary,
)

__all__ = [
    "ToolchainConfig",
    "ToolchainError",
    "ArgoToolchain",
    "ToolchainResult",
    "Pipeline",
    "PipelineError",
    "PipelineResult",
    "Stage",
    "StageArtifactCache",
    "StageRecord",
    "default_stages",
    "run_pipeline",
    "shared_stage_cache",
    "SweepCase",
    "SweepOutcome",
    "SweepResult",
    "sweep",
    "sweep_grid",
    "CrossLayerFeedback",
    "FeedbackHistoryEntry",
    "bottleneck_report",
    "fixed_point_report",
    "toolchain_summary",
]
