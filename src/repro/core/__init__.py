"""End-to-end ARGO tool chain (paper Fig. 1) with cross-layer feedback."""

from repro.core.config import ToolchainConfig
from repro.core.exceptions import ToolchainError
from repro.core.toolchain import ArgoToolchain, ToolchainResult
from repro.core.feedback import CrossLayerFeedback, FeedbackHistoryEntry
from repro.core.reporting import bottleneck_report, toolchain_summary

__all__ = [
    "ToolchainConfig",
    "ToolchainError",
    "ArgoToolchain",
    "ToolchainResult",
    "CrossLayerFeedback",
    "FeedbackHistoryEntry",
    "bottleneck_report",
    "toolchain_summary",
]
