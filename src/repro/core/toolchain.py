"""The ARGO tool chain driver: model -> IR -> HTG -> schedule -> WCET.

``ArgoToolchain.run`` reproduces the design workflow of Fig. 1:

1. model-based specification (a validated :class:`~repro.model.Diagram`);
2. compilation to the IR and predictability-enhancing transformations;
3. HTG extraction;
4. WCET-aware scheduling/mapping onto the ADL platform;
5. construction of the explicit parallel program model;
6. code-level + system-level WCET analysis (the schedule's bound);
7. optionally, iterative cross-layer optimisation (:mod:`repro.core.feedback`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.adl.architecture import Platform
from repro.core.config import ToolchainConfig
from repro.core.exceptions import ToolchainError
from repro.frontend import CompiledModel, compile_diagram
from repro.htg import HierarchicalTaskGraph, extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.model.diagram import Diagram
from repro.parallel import ParallelProgram, build_parallel_program
from repro.scheduling import (
    WcetAwareListScheduler,
    branch_and_bound_schedule,
    genetic_schedule,
    sequential_schedule,
    simulated_annealing_schedule,
)
from repro.scheduling.baselines import acet_driven_schedule
from repro.scheduling.schedule import Schedule
from repro.sim import SimulationResult, simulate_parallel_program
from repro.transforms import (
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    PassManager,
    ScratchpadAllocationPass,
)
from repro.transforms.base import PassReport
from repro.wcet import HardwareCostModel, annotate_htg_wcets
from repro.wcet.cache import WcetAnalysisCache, shared_cache
from repro.wcet.code_level import analyze_function_wcet


@dataclass
class ToolchainResult:
    """Everything the flow produced for one application/platform pair."""

    diagram_name: str
    platform_name: str
    config: ToolchainConfig
    model: CompiledModel
    htg: HierarchicalTaskGraph
    schedule: Schedule
    parallel_program: ParallelProgram
    pass_reports: list[PassReport] = field(default_factory=list)

    @property
    def system_wcet(self) -> float:
        """Guaranteed multi-core WCET bound (cycles)."""
        return self.schedule.wcet_bound

    @property
    def sequential_wcet(self) -> float:
        """Single-core WCET bound of the whole step function (cycles)."""
        return self.metadata_sequential

    metadata_sequential: float = 0.0

    @property
    def wcet_speedup(self) -> float:
        """Sequential WCET divided by the parallel WCET bound."""
        if self.system_wcet <= 0:
            return 1.0
        return self.metadata_sequential / self.system_wcet


class ArgoToolchain:
    """Facade running the whole flow for one target platform."""

    def __init__(
        self,
        platform: Platform,
        config: ToolchainConfig | None = None,
        wcet_cache: WcetAnalysisCache | None = None,
    ) -> None:
        self.platform = platform
        self.config = config or ToolchainConfig()
        #: Memo of code-level analyses shared by every stage of this chain
        #: (and, via the feedback optimizer, across candidate configurations:
        #: entries are content addressed, so unchanged IR hits the cache).
        #: Defaults to the process-wide shared cache, which is disk-backed
        #: when ``REPRO_WCET_CACHE_DIR`` is set -- repeated runs and
        #: multi-mapper sweeps then pay each code-level analysis exactly once
        #: across the whole session.
        self.wcet_cache = wcet_cache if wcet_cache is not None else shared_cache()
        report = platform.check_predictability()
        if not report.passed:
            raise ToolchainError(
                "platform fails the predictability guidelines: "
                + "; ".join(report.violations)
            )

    # ------------------------------------------------------------------ #
    def compile_model(self, diagram: Diagram) -> tuple[CompiledModel, list[PassReport]]:
        """Front end + predictability transformations."""
        model = compile_diagram(diagram)
        reports: list[PassReport] = []
        manager = PassManager()
        if self.config.run_cleanup_passes:
            manager.add(ConstantFoldingPass())
            manager.add(DeadCodeEliminationPass())
        if self.config.allocate_scratchpads:
            capacity = (
                self.config.scratchpad_capacity_bytes
                if self.config.scratchpad_capacity_bytes is not None
                else self.platform.min_scratchpad_bytes()
            )
            # Inter-task signal buffers must stay shared: they are how cores
            # exchange data.  Only block-internal shared state is eligible.
            protected = {
                name
                for name, _ in (
                    (decl.name, decl) for decl in model.entry.all_decls()
                )
                if name.startswith("sig_") or name.startswith("in_") or name.startswith("out_")
            }
            manager.add(
                ScratchpadAllocationPass(
                    capacity_bytes=capacity,
                    shared_latency=self.platform.shared_memory.read_latency,
                    spm_latency=self.platform.cores[0].scratchpad.read_latency,
                    protect=protected,
                )
            )
        reports = manager.run(model.entry)
        return model, reports

    def extract_tasks(self, model: CompiledModel) -> HierarchicalTaskGraph:
        options = ExtractionOptions(
            granularity=self.config.granularity,
            loop_chunks=self.config.loop_chunks,
        )
        htg = extract_htg(model, options)
        cost_model = HardwareCostModel(self.platform, self.platform.cores[0].core_id)
        annotate_htg_wcets(htg, model.entry, cost_model, cache=self.wcet_cache)
        return htg

    def schedule_tasks(self, htg: HierarchicalTaskGraph, model: CompiledModel) -> Schedule:
        scheduler = self.config.scheduler
        function = model.entry
        if scheduler == "sequential":
            return sequential_schedule(htg, function, self.platform, cache=self.wcet_cache)
        if scheduler == "acet_list":
            return acet_driven_schedule(
                htg, function, self.platform, self.config.max_cores, cache=self.wcet_cache
            )
        if scheduler == "simulated_annealing":
            return simulated_annealing_schedule(
                htg, function, self.platform, self.config.max_cores, seed=self.config.seed,
                cache=self.wcet_cache,
            )
        if scheduler == "genetic":
            return genetic_schedule(
                htg, function, self.platform, self.config.max_cores, seed=self.config.seed,
                cache=self.wcet_cache,
            )
        if scheduler == "bnb":
            schedule, _ = branch_and_bound_schedule(
                htg, function, self.platform, self.config.max_cores, cache=self.wcet_cache
            )
            return schedule
        return WcetAwareListScheduler(
            platform=self.platform,
            contention_weight=self.config.contention_weight,
            max_cores=self.config.max_cores,
            cache=self.wcet_cache,
        ).schedule(htg, function)

    # ------------------------------------------------------------------ #
    def run(self, diagram: Diagram) -> ToolchainResult:
        """Run the complete flow on ``diagram``."""
        if self.config.feedback_iterations > 1:
            from repro.core.feedback import CrossLayerFeedback

            return CrossLayerFeedback(self).optimize(diagram)
        return self.run_once(diagram)

    def run_once(self, diagram: Diagram) -> ToolchainResult:
        """One pass through the flow with the current configuration."""
        model, pass_reports = self.compile_model(diagram)
        htg = self.extract_tasks(model)
        schedule = self.schedule_tasks(htg, model)
        parallel_program = build_parallel_program(htg, model.entry, self.platform, schedule)

        sequential_bound = analyze_function_wcet(
            model.entry,
            HardwareCostModel(self.platform, self.platform.cores[0].core_id),
            cache=self.wcet_cache,
        ).total

        result = ToolchainResult(
            diagram_name=diagram.name,
            platform_name=self.platform.name,
            config=self.config,
            model=model,
            htg=htg,
            schedule=schedule,
            parallel_program=parallel_program,
            pass_reports=pass_reports,
        )
        result.metadata_sequential = sequential_bound
        return result

    # ------------------------------------------------------------------ #
    def simulate(
        self, result: ToolchainResult, inputs: Mapping[str, Any] | None = None
    ) -> SimulationResult:
        """Execute the parallel program on the platform model.

        ``inputs`` maps external inputs (``block.port`` or parameter names) to
        concrete values; constant parameters and state initial values are
        filled in automatically.
        """
        bindings = result.model.run_inputs(dict(inputs or {}))
        return simulate_parallel_program(
            result.parallel_program,
            result.htg,
            result.model.entry,
            self.platform,
            bindings,
        )
