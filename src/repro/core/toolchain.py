"""The ARGO tool chain facade: model -> IR -> HTG -> schedule -> WCET.

``ArgoToolchain`` is a thin compatibility facade over the composable
pipeline API (:mod:`repro.core.pipeline`); existing call sites keep working
unchanged while the flow itself is a :class:`~repro.core.pipeline.Pipeline`
of named stages with registry-resolved schedulers and transformation passes.

``ArgoToolchain.run`` reproduces the design workflow of Fig. 1:

1. model-based specification (a validated :class:`~repro.model.Diagram`);
2. compilation to the IR and predictability-enhancing transformations;
3. HTG extraction;
4. WCET-aware scheduling/mapping onto the ADL platform;
5. construction of the explicit parallel program model;
6. code-level + system-level WCET analysis (the schedule's bound);
7. optionally, iterative cross-layer optimisation (:mod:`repro.core.feedback`).

For whole design-space explorations (many diagrams x platforms x configs),
use :func:`repro.core.sweep.sweep` instead of hand-rolled loops around this
facade.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.adl.architecture import Platform
from repro.core.config import ToolchainConfig
from repro.core.pipeline import (
    Pipeline,
    PipelineContext,
    PipelineError,
    PipelineResult,
    StageArtifactCache,
)
from repro.frontend import CompiledModel
from repro.htg import HierarchicalTaskGraph
from repro.model.diagram import Diagram
from repro.scheduling.schedule import Schedule
from repro.sim import SimulationResult
from repro.transforms.base import PassReport
from repro.wcet.cache import WcetAnalysisCache, shared_cache

#: Backwards-compatible name of the flow's result type.
ToolchainResult = PipelineResult


class ArgoToolchain:
    """Facade running the whole flow for one target platform.

    Thin shim over :class:`~repro.core.pipeline.Pipeline`: construction
    validates the platform and builds the default stage graph; ``run`` /
    ``run_once`` delegate to it.  The step methods (``compile_model``,
    ``extract_tasks``, ``schedule_tasks``) remain for callers that drive the
    flow piecewise.
    """

    def __init__(
        self,
        platform: Platform,
        config: ToolchainConfig | None = None,
        wcet_cache: WcetAnalysisCache | None = None,
        stage_cache: "StageArtifactCache | None" = None,
    ) -> None:
        self.platform = platform
        self.config = config or ToolchainConfig()
        #: Memo of code-level analyses shared by every stage of this chain
        #: (and, via the feedback optimizer and the sweep runner, across
        #: candidate configurations: entries are content addressed, so
        #: unchanged IR hits the cache).  Defaults to the process-wide shared
        #: cache, which is disk-backed when ``REPRO_WCET_CACHE_DIR`` is set.
        self.wcet_cache = wcet_cache if wcet_cache is not None else shared_cache()
        #: The underlying stage graph; raises ToolchainError for platforms
        #: violating the predictability guidelines.  ``stage_cache`` (or the
        #: ``config.stage_cache`` knob) opts the chain into per-stage
        #: artifact reuse across runs.
        self.pipeline = Pipeline(
            platform, self.config, self.wcet_cache, stage_cache=stage_cache
        )

    # ------------------------------------------------------------------ #
    # piecewise drivers: each delegates to the pipeline's actual stage, so
    # the logic cannot drift from what Pipeline.run executes
    # ------------------------------------------------------------------ #
    def _stage_context(self, diagram: Diagram | None = None, **artifacts) -> PipelineContext:
        artifacts.update(platform=self.platform, config=self.config)
        if diagram is not None:
            artifacts["diagram"] = diagram
        return PipelineContext(
            diagram=diagram,  # type: ignore[arg-type] - unused by later stages
            platform=self.platform,
            config=self.config,
            wcet_cache=self.wcet_cache,
            artifacts=artifacts,
        )

    def _run_stage(self, name: str, context: PipelineContext) -> dict:
        for stage in self.pipeline.stages:
            if stage.name == name:
                produced = dict(stage.run(context) or {})
                context.artifacts.update(produced)
                return produced
        raise PipelineError(f"pipeline has no stage named {name!r}")

    def compile_model(self, diagram: Diagram) -> tuple[CompiledModel, list[PassReport]]:
        """Front end + predictability transformations (stages 1-2)."""
        context = self._stage_context(diagram)
        model = self._run_stage("frontend", context)["model"]
        reports = self._run_stage("transforms", context)["pass_reports"]
        return model, reports

    def extract_tasks(self, model: CompiledModel) -> HierarchicalTaskGraph:
        """HTG extraction + per-task WCET annotation (stage 3)."""
        context = self._stage_context(transformed_model=model)
        return self._run_stage("htg", context)["htg"]

    def schedule_tasks(self, htg: HierarchicalTaskGraph, model: CompiledModel) -> Schedule:
        """Mapping/scheduling via the scheduler registry (stage 4)."""
        context = self._stage_context(transformed_model=model, htg=htg)
        return self._run_stage("schedule", context)["schedule"]

    # ------------------------------------------------------------------ #
    def run(self, diagram: Diagram) -> ToolchainResult:
        """Run the complete flow on ``diagram``."""
        if self.config.feedback_iterations > 1:
            from repro.core.feedback import CrossLayerFeedback

            return CrossLayerFeedback(self).optimize(diagram)
        return self.run_once(diagram)

    def run_once(self, diagram: Diagram) -> ToolchainResult:
        """One pass through the stage graph with the current configuration."""
        return self.pipeline.run(diagram)

    # ------------------------------------------------------------------ #
    def simulate(
        self, result: ToolchainResult, inputs: Mapping[str, Any] | None = None
    ) -> SimulationResult:
        """Execute the parallel program on the platform model.

        ``inputs`` maps external inputs (``block.port`` or parameter names) to
        concrete values; constant parameters and state initial values are
        filled in automatically.
        """
        return self.pipeline.simulate(result, inputs)
