"""Cross-layer reports: bottleneck identification and flow summaries.

Paper Section II-E: the cross-layer interface should let end users see
"application bottlenecks ... and the artifacts hindering an efficient
parallelization".  These helpers render that information as plain text.
"""

from __future__ import annotations

from repro.core.toolchain import ToolchainResult
from repro.htg.graph import HierarchicalTaskGraph
from repro.scheduling.schedule import Schedule
from repro.utils.tables import Table


def bottleneck_report(htg: HierarchicalTaskGraph, schedule: Schedule, top: int = 5) -> str:
    """The heaviest tasks, their interference share and mapping."""
    if schedule.result is None:
        return "(schedule not analysed)"
    table = Table(
        ["task", "origin", "core", "wcet", "effective", "interference", "shared accesses"],
        title="bottleneck tasks (by effective WCET)",
    )
    effective = schedule.result.task_effective_wcet
    ranked = sorted(effective.items(), key=lambda kv: -kv[1])[:top]
    for tid, eff in ranked:
        task = htg.task(tid)
        table.add_row(
            [
                tid,
                task.origin,
                schedule.mapping[tid],
                task.wcet,
                eff,
                eff - task.wcet if task.wcet else 0.0,
                task.total_shared_accesses,
            ]
        )
    return table.render()


def fixed_point_report(schedule: Schedule) -> str:
    """Convergence evidence of the system-level fixed point.

    Renders the iteration count, the convergence verdict and the final
    maximum per-task delta; when the schedule was analysed under
    observability the per-iteration delta curve is included, which makes
    contraction (or the lack of it) visible at a glance.
    """
    result = schedule.result
    if result is None:
        return "(schedule not analysed)"
    lines = [
        "system fixed point",
        f"  iterations : {result.iterations}",
        f"  converged  : {'yes' if result.converged else 'NO (iteration cap hit)'}",
        f"  final delta: {result.final_delta:.6g} cycles",
    ]
    if result.iteration_deltas:
        curve = ", ".join(f"{d:.6g}" for d in result.iteration_deltas)
        lines.append(f"  delta curve: [{curve}]")
    return "\n".join(lines)


def toolchain_summary(result: ToolchainResult) -> str:
    """End-to-end summary of one flow run (the Fig. 1 pipeline outcome)."""
    schedule = result.schedule
    lines = [
        f"application      : {result.diagram_name}",
        f"platform         : {result.platform_name}",
        f"scheduler        : {schedule.scheduler}",
        f"tasks            : {len(result.htg.leaf_tasks())}",
        f"cores used       : {schedule.num_cores_used}",
        f"sequential WCET  : {result.sequential_wcet:.0f} cycles",
        f"parallel WCET    : {result.system_wcet:.0f} cycles",
        f"WCET speed-up    : {result.wcet_speedup:.2f}x",
        f"sync operations  : {result.parallel_program.num_sync_ops}",
        f"comm volume      : {result.parallel_program.total_comm_bytes} bytes",
        f"shared footprint : {result.parallel_program.shared_footprint_bytes()} bytes",
    ]
    if schedule.result is not None:
        lines.append(f"interference     : {schedule.result.interference_cycles:.0f} cycles")
        lines.append(f"communication    : {schedule.result.communication_cycles:.0f} cycles")
    utilization = schedule.utilization()
    for core in sorted(utilization):
        lines.append(f"core {core} utilisation: {100 * utilization[core]:.1f}%")
    lines.append("")
    lines.append(fixed_point_report(schedule))
    lines.append("")
    lines.append(bottleneck_report(result.htg, schedule))
    return "\n".join(lines)
