"""Iterative cross-layer optimisation (paper Section II-E).

WCET information computed at the end of the flow is fed back to the earlier
stages: the feedback loop explores neighbouring configurations (task
granularity, number of loop chunks, scheduler, contention weight), re-runs
the flow and keeps the configuration with the lowest guaranteed WCET.  The
history of attempted configurations is retained so the cross-layer interface
can show end users *why* the final parallelization decisions were taken.

Each round's neighbourhood is executed through the sweep API
(:func:`repro.core.sweep.sweep`) in in-process mode, so every candidate
shares the driver's live analysis cache: cache entries are content
addressed, so candidates whose transforms leave (parts of) the IR unchanged
reuse the code-level analyses of earlier iterations for free.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import ToolchainConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.toolchain import ArgoToolchain, ToolchainResult
    from repro.model.diagram import Diagram


@dataclass
class FeedbackHistoryEntry:
    """One attempted configuration and the WCET bound it achieved."""

    iteration: int
    config: ToolchainConfig
    system_wcet: float
    accepted: bool
    note: str = ""


@dataclass
class CrossLayerFeedback:
    """Drives the iterative optimisation around an :class:`ArgoToolchain`."""

    toolchain: "ArgoToolchain"
    history: list[FeedbackHistoryEntry] = field(default_factory=list)

    def _candidates(self, base: ToolchainConfig, iteration: int) -> list[ToolchainConfig]:
        """Configurations to explore at this iteration, derived from the base."""
        candidates: list[ToolchainConfig] = []

        def variant(**changes) -> ToolchainConfig:
            return dataclasses.replace(base, feedback_iterations=1, **changes)

        if iteration == 1:
            candidates.append(variant())
            return candidates
        # later iterations: refine granularity and contention handling
        candidates.append(variant(loop_chunks=max(1, base.loop_chunks // 2)))
        candidates.append(variant(loop_chunks=base.loop_chunks * 2))
        candidates.append(variant(contention_weight=base.contention_weight * 2.0))
        if base.granularity == "block":
            candidates.append(variant(granularity="loop"))
        else:
            candidates.append(variant(granularity="block"))
        return candidates

    def optimize(self, diagram: "Diagram") -> "ToolchainResult":
        """Run up to ``config.feedback_iterations`` rounds and return the best."""
        from repro.core.sweep import SweepCase, sweep

        base_config = self.toolchain.config
        iterations = base_config.feedback_iterations
        best_result: "ToolchainResult | None" = None
        best_config = dataclasses.replace(base_config, feedback_iterations=1)

        for iteration in range(1, iterations + 1):
            candidates = self._candidates(best_config, iteration)
            # One in-process mini-sweep per neighbourhood, sharing the
            # driver's analysis cache across all candidate chains.
            round_result = sweep(
                [
                    SweepCase(
                        diagram=diagram,
                        platform=self.toolchain.platform,
                        config=candidate,
                        label=f"iter{iteration}",
                    )
                    for candidate in candidates
                ],
                cache=self.toolchain.wcet_cache,
                keep_results=True,
            )
            improved = False
            for candidate, outcome in zip(candidates, round_result):
                if not outcome.ok:
                    # propagate the candidate's failure exactly as the flow
                    # raised it (type and traceback intact)
                    if outcome.exception is not None:
                        raise outcome.exception
                    raise RuntimeError(
                        f"feedback candidate {candidate} failed: {outcome.error}"
                    )
                result = outcome.result
                assert result is not None
                accepted = best_result is None or result.system_wcet < best_result.system_wcet
                self.history.append(
                    FeedbackHistoryEntry(
                        iteration=iteration,
                        config=candidate,
                        system_wcet=result.system_wcet,
                        accepted=accepted,
                        note=(
                            f"granularity={candidate.granularity}, chunks={candidate.loop_chunks}, "
                            f"scheduler={candidate.scheduler}"
                        ),
                    )
                )
                if accepted:
                    best_result = result
                    best_config = candidate
                    improved = True
            if iteration > 1 and not improved:
                break

        assert best_result is not None
        best_result.pass_reports = list(best_result.pass_reports)
        return best_result

    def summary(self) -> str:
        lines = ["cross-layer feedback history:"]
        for entry in self.history:
            marker = "*" if entry.accepted else " "
            lines.append(
                f" {marker} iter {entry.iteration}: WCET={entry.system_wcet:.0f}  ({entry.note})"
            )
        return "\n".join(lines)
