"""Tool-chain level exceptions."""


class ToolchainError(RuntimeError):
    """Raised when a stage of the ARGO flow cannot complete."""
