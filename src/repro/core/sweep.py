"""Design-space sweeps: one parallel entry point for grids of flow runs.

Every experiment script used to hand-roll its own loop over diagrams,
platforms and configurations.  :func:`sweep` replaces those loops: it takes
either an explicit list of :class:`SweepCase` objects or the three axes of a
grid (``diagrams x platforms x configs``), runs each case through the
pipeline (:func:`repro.core.pipeline.run_pipeline`, so feedback iterations
are honoured) and returns a tabular :class:`SweepResult`.

Execution modes
---------------
* ``max_workers=1`` (default) -- cases run in-process, sequentially, all
  sharing one live :class:`~repro.wcet.cache.WcetAnalysisCache`; results can
  be retained (``keep_results=True``) for callers that need the full
  :class:`~repro.core.pipeline.PipelineResult` objects (the cross-layer
  feedback loop does).
* ``max_workers>1`` -- cases run concurrently in a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Diagrams and platforms
  may be given as zero-argument *builders* (any picklable callable, e.g. a
  ``functools.partial`` of a use-case factory) so each worker constructs its
  own objects.  With ``cache_dir`` set, all workers share one disk-backed
  WCET cache: each worker process flushes its entries to a private shard
  file (atomic tempfile + ``os.replace``), and shards are merged on load --
  concurrent flushes can never corrupt the cache.

The flow is deterministic (seeds live in the config), so a parallel sweep
returns bit-identical WCET bounds to the equivalent sequential loop.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro import obs
from repro.adl.architecture import Platform
from repro.core.config import ToolchainConfig
from repro.core.pipeline import PipelineResult, StageArtifactCache, run_pipeline
from repro.model.diagram import Diagram
from repro.utils.tables import Table
from repro.wcet.cache import WcetAnalysisCache, shared_cache

#: A diagram (or platform) axis entry: the object itself or a zero-argument
#: builder.  Builders are required for process-parallel sweeps of objects
#: you do not want to pickle, and are invoked once per case.
DiagramSpec = Any  # Diagram | Callable[[], Diagram]
PlatformSpec = Any  # Platform | Callable[[], Platform]


@dataclass(frozen=True)
class SweepCase:
    """One (diagram, platform, config) combination of a sweep."""

    diagram: DiagramSpec
    platform: PlatformSpec
    config: ToolchainConfig
    label: str = ""

    def materialize(self) -> tuple[Diagram, Platform]:
        diagram = self.diagram() if callable(self.diagram) else self.diagram
        platform = self.platform() if callable(self.platform) else self.platform
        return diagram, platform


@dataclass
class SweepOutcome:
    """The tabular record of one completed (or failed) case."""

    index: int
    diagram_name: str
    platform_name: str
    scheduler: str
    label: str = ""
    system_wcet: float = 0.0
    sequential_wcet: float = 0.0
    wcet_speedup: float = 0.0
    seconds: float = 0.0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    cache_stats: dict[str, int] = field(default_factory=dict)
    error: str | None = None
    #: Per-case observability snapshot (``PipelineResult.telemetry()``);
    #: ``None`` when :mod:`repro.obs` was disabled in the executing process.
    #: Plain JSON data, so worker processes ship it back with the tabular
    #: fields and the parent merges the per-worker metrics -- the same
    #: discipline as the cache-stat deltas.
    telemetry: dict[str, Any] | None = None
    #: The original exception object; only retained by in-process sweeps
    #: (worker processes report the ``error`` string only), so callers like
    #: the feedback loop can re-raise with type and traceback intact.
    exception: Exception | None = None
    #: Full PipelineResult; only retained by in-process sweeps that asked
    #: for it (``keep_results=True``).
    result: PipelineResult | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "diagram": self.diagram_name,
            "platform": self.platform_name,
            "scheduler": self.scheduler,
            "label": self.label,
            "system_wcet": self.system_wcet,
            "sequential_wcet": self.sequential_wcet,
            "wcet_speedup": self.wcet_speedup,
            "seconds": self.seconds,
            "stage_seconds": dict(self.stage_seconds),
            "cache_stats": dict(self.cache_stats),
            "error": self.error,
            **({"telemetry": self.telemetry} if self.telemetry is not None else {}),
        }


@dataclass
class SweepResult:
    """All outcomes of one sweep, in case order."""

    outcomes: list[SweepOutcome]
    seconds: float = 0.0
    max_workers: int = 1

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, index: int) -> SweepOutcome:
        return self.outcomes[index]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def failures(self) -> list[SweepOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def best(self, key: Callable[[SweepOutcome], float] | None = None) -> SweepOutcome:
        """The successful outcome with the smallest ``key`` (default: bound)."""
        successes = [outcome for outcome in self.outcomes if outcome.ok]
        if not successes:
            raise ValueError("sweep produced no successful outcome")
        return min(successes, key=key or (lambda outcome: outcome.system_wcet))

    def as_dicts(self) -> list[dict[str, Any]]:
        return [outcome.as_dict() for outcome in self.outcomes]

    def merged_telemetry(self) -> dict[str, Any]:
        """All per-case metric snapshots pooled into one (counters add,
        histograms pool).  ``{"enabled": False}`` when no case recorded."""
        snapshots = [
            outcome.telemetry.get("metrics") or {}
            for outcome in self.outcomes
            if outcome.telemetry and outcome.telemetry.get("enabled")
        ]
        if not snapshots:
            return {"enabled": False}
        return {"enabled": True, "metrics": obs.merge_snapshots(snapshots)}

    def table(self, title: str = "design-space sweep") -> Table:
        table = Table(
            ["diagram", "platform", "scheduler", "sequential WCET", "parallel WCET",
             "speedup", "seconds"],
            title=title,
        )
        for outcome in self.outcomes:
            if outcome.ok:
                table.add_row(
                    [
                        outcome.diagram_name,
                        outcome.platform_name,
                        outcome.scheduler,
                        outcome.sequential_wcet,
                        outcome.system_wcet,
                        outcome.wcet_speedup,
                        round(outcome.seconds, 3),
                    ]
                )
            else:
                table.add_row(
                    [
                        outcome.diagram_name or f"case {outcome.index}",
                        outcome.platform_name,
                        outcome.scheduler,
                        "-",
                        "-",
                        "-",
                        f"ERROR: {outcome.error}",
                    ]
                )
        return table

    def render(self, title: str = "design-space sweep") -> str:
        return self.table(title).render()


def sweep_grid(
    diagrams: Sequence[DiagramSpec],
    platforms: Sequence[PlatformSpec],
    configs: Sequence[ToolchainConfig],
) -> list[SweepCase]:
    """The full cross product of the three axes, in deterministic order."""
    return [
        SweepCase(diagram=diagram, platform=platform, config=config)
        for diagram, platform, config in itertools.product(diagrams, platforms, configs)
    ]


# ---------------------------------------------------------------------- #
# case execution (module level so ProcessPoolExecutor can pickle it)
# ---------------------------------------------------------------------- #
def _describe_spec(spec: Any) -> str:
    if hasattr(spec, "name"):
        return str(spec.name)
    if callable(spec):
        return getattr(spec, "__name__", None) or repr(spec)
    return repr(spec)


def _execute_case(
    index: int,
    case: SweepCase,
    cache: WcetAnalysisCache | None,
    stage_cache: StageArtifactCache | None = None,
) -> SweepOutcome:
    outcome = SweepOutcome(
        index=index,
        diagram_name=_describe_spec(case.diagram),
        platform_name=_describe_spec(case.platform),
        scheduler=case.config.scheduler,
        label=case.label,
    )
    started = time.perf_counter()
    try:
        diagram, platform = case.materialize()
        outcome.diagram_name = diagram.name
        outcome.platform_name = platform.name
        with obs.span(
            "sweep.case", index=index, diagram=outcome.diagram_name, label=case.label
        ):
            result = run_pipeline(
                diagram, platform, case.config, wcet_cache=cache, stage_cache=stage_cache
            )
        outcome.system_wcet = result.system_wcet
        outcome.sequential_wcet = result.sequential_wcet
        outcome.wcet_speedup = result.wcet_speedup
        # private copies: PipelineResult owns its dicts and the outcome must
        # not become a mutation alias of them (nor vice versa)
        outcome.stage_seconds = dict(result.timings)
        outcome.cache_stats = dict(result.cache_stats)
        if result.telemetry_data is not None:
            outcome.telemetry = result.telemetry()
        outcome.result = result
    except Exception as exc:  # noqa: BLE001 - one bad case must not kill the sweep
        outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.exception = exc
    outcome.seconds = time.perf_counter() - started
    return outcome


#: One disk-backed cache per (worker process, cache directory): opened on
#: the first case a worker runs, reused for the rest, so the directory is
#: parsed once per worker instead of once per case and each worker owns a
#: single shard file.
_WORKER_CACHES: dict[str, WcetAnalysisCache] = {}


def _worker_cache(cache_dir: str) -> WcetAnalysisCache:
    cache = _WORKER_CACHES.get(cache_dir)
    if cache is None:
        cache = WcetAnalysisCache.open(cache_dir)
        _WORKER_CACHES[cache_dir] = cache
    return cache


#: One stage-artifact cache per worker process (stage artifacts are
#: in-memory only; cross-process reuse goes through the disk-backed WCET /
#: system-result tiers instead).
_WORKER_STAGE_CACHE: StageArtifactCache | None = None


def _worker_stage_cache() -> StageArtifactCache:
    global _WORKER_STAGE_CACHE
    if _WORKER_STAGE_CACHE is None:
        _WORKER_STAGE_CACHE = StageArtifactCache()
    return _WORKER_STAGE_CACHE


def _worker_run_case(args: tuple[int, SweepCase, str | None, bool]) -> SweepOutcome:
    """Run one case in a worker process, flushing the shared disk cache."""
    index, case, cache_dir, stage_cache = args
    cache = _worker_cache(cache_dir) if cache_dir else shared_cache()
    outcome = _execute_case(
        index, case, cache, _worker_stage_cache() if stage_cache else None
    )
    # PipelineResult objects can be large and tracebacks do not pickle;
    # workers return tabular data only.
    outcome.result = None
    outcome.exception = None
    if cache_dir:
        # Each worker process owns a private shard file; the write is a
        # tempfile + os.replace, so concurrent flushes are safe by design.
        cache.flush()
    return outcome


def sweep(
    cases: Iterable[SweepCase] | None = None,
    *,
    diagrams: Sequence[DiagramSpec] | None = None,
    platforms: Sequence[PlatformSpec] | None = None,
    configs: Sequence[ToolchainConfig] | None = None,
    max_workers: int = 1,
    cache_dir: str | None = None,
    cache: WcetAnalysisCache | None = None,
    keep_results: bool = False,
    stage_cache: bool = False,
) -> SweepResult:
    """Run every case (or the ``diagrams x platforms x configs`` grid).

    Exactly one of ``cases`` or the three grid axes must be given.  See the
    module docstring for the execution modes.  ``cache`` names the live
    in-process cache to use and ``cache_dir`` the disk directory shared
    across processes; given together (in-process mode), the cache is
    attached to the directory via :meth:`~repro.wcet.cache.WcetAnalysisCache.load`,
    so warm entries are pulled in and the trailing flush actually persists.
    ``stage_cache=True`` additionally shares one per-stage artifact cache
    across the sweep's cases (per worker process in parallel mode), so
    repeated identical (diagram, platform, config) cases skip whole stages.

    Argument validation is mode-based, not size-based: ``keep_results`` /
    ``cache`` are rejected for ``max_workers > 1`` even when the grid has a
    single case, so a sweep cannot change contract as it is scaled down.
    """
    if cases is None:
        if diagrams is None or platforms is None or configs is None:
            raise ValueError(
                "sweep() needs either explicit cases or all three of "
                "diagrams=, platforms=, configs="
            )
        case_list = sweep_grid(diagrams, platforms, configs)
    else:
        if diagrams is not None or platforms is not None or configs is not None:
            raise ValueError("pass either cases or the grid axes, not both")
        case_list = list(cases)
    if max_workers < 1:
        raise ValueError(f"max_workers must be at least 1, got {max_workers}")
    if max_workers > 1:
        if keep_results:
            raise ValueError(
                "keep_results=True requires an in-process sweep (max_workers=1): "
                "worker processes return tabular outcomes only"
            )
        if cache is not None:
            raise ValueError(
                "an in-memory cache cannot be shared across worker processes; "
                "use cache_dir= for parallel sweeps"
            )

    started = time.perf_counter()
    if max_workers == 1 or len(case_list) <= 1:
        if cache is None:
            cache = WcetAnalysisCache.open(cache_dir) if cache_dir else shared_cache()
        elif cache_dir and cache.cache_dir != Path(cache_dir):
            # an explicit cache with a cache_dir: attach it, so the warm
            # entries are visible and the trailing flush is not a no-op
            # (skipped when already attached -- re-merging every shard on
            # every sweep call would re-parse large directories for nothing)
            cache.load(cache_dir)
        stage_cache_obj = StageArtifactCache() if stage_cache else None
        outcomes = [
            _execute_case(index, case, cache, stage_cache_obj)
            for index, case in enumerate(case_list)
        ]
        if cache_dir:
            cache.flush()
        if not keep_results:
            for outcome in outcomes:
                outcome.result = None
        effective_workers = 1
    else:
        effective_workers = min(max_workers, len(case_list))
        jobs = [
            (index, case, cache_dir, stage_cache)
            for index, case in enumerate(case_list)
        ]
        with ProcessPoolExecutor(max_workers=effective_workers) as pool:
            outcomes = list(pool.map(_worker_run_case, jobs))
        if obs.obs_enabled():
            # fold the workers' per-case snapshots into the parent registry
            # (the in-process path above recorded into it directly)
            registry = obs.metrics()
            for outcome in outcomes:
                if outcome.telemetry and outcome.telemetry.get("enabled"):
                    registry.merge(outcome.telemetry.get("metrics") or {})
    return SweepResult(
        outcomes=outcomes,
        seconds=time.perf_counter() - started,
        max_workers=effective_workers,
    )
