"""The composable pipeline behind the ARGO flow (paper Fig. 1).

The flow -- model -> IR -> transformations -> HTG -> schedule -> parallel
program -> WCET -- is expressed as a :class:`Pipeline` of named
:class:`Stage` objects forming a small dataflow graph: every stage declares
the typed artifacts it ``consumes`` and ``produces``, the pipeline checks
the graph (each artifact produced exactly once, no missing inputs, no
cycles) and runs the stages in dependency order.  Each run yields a
:class:`PipelineResult` carrying the artifacts plus per-stage wall-clock
timings, the transformation pass reports and the WCET-cache hit/miss deltas.

The two variation points are plugin registries, so new behaviour needs no
core changes:

* the ``schedule`` stage resolves ``config.scheduler`` through
  :mod:`repro.scheduling.registry`;
* the ``transforms`` stage resolves ``config.effective_passes()`` through
  :mod:`repro.transforms.registry`.

Custom stages slot in through :meth:`Pipeline.with_stage` /
:meth:`Pipeline.replace_stage`, e.g. an extra analysis stage consuming
``schedule`` -- the dependency graph, not the insertion order, decides when
it runs.

Stages can opt into **per-stage artifact caching** by declaring a
content-addressed ``cache_key`` (the built-in ``schedule`` and ``wcet``
stages do): when a :class:`StageArtifactCache` is active -- passed
explicitly, or process-wide via ``ToolchainConfig.stage_cache`` -- a stage
whose key matches a previous run returns its cached artifacts instead of
re-running, and the hit/miss deltas surface in
``PipelineResult.cache_stats`` (``stage_hits`` / ``stage_misses``).

:class:`~repro.core.toolchain.ArgoToolchain` is a thin compatibility facade
over this module, and :func:`repro.core.sweep.sweep` runs whole grids of
(diagram, platform, config) combinations through :func:`run_pipeline`
concurrently.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import itertools
import json
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro import obs
from repro.adl.architecture import Platform
from repro.core.config import ToolchainConfig
from repro.core.exceptions import ToolchainError
from repro.frontend import CompiledModel, compile_diagram
from repro.htg import HierarchicalTaskGraph, extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.ir.loops import describe_unbounded_loops
from repro.model.diagram import Diagram
from repro.parallel import ParallelProgram, build_parallel_program
from repro.scheduling.registry import get_scheduler
from repro.scheduling.schedule import Schedule
from repro.sim import SimulationResult, simulate_parallel_program
from repro.transforms import PassManager
from repro.transforms.base import PassReport
from repro.transforms.registry import PassContext, build_pass_pipeline
from repro.wcet import HardwareCostModel
from repro.wcet.cache import WcetAnalysisCache, platform_signature, shared_cache
from repro.wcet.code_level import analyze_function_wcet


class PipelineError(ToolchainError):
    """A malformed stage graph or a stage contract violation."""


#: Artifacts available before any stage runs.
INITIAL_ARTIFACTS = ("diagram", "platform", "config")


@dataclass(frozen=True)
class Stage:
    """One named step of the flow.

    ``run`` receives the :class:`PipelineContext` and returns a mapping of
    the artifacts it produces (it must cover exactly ``produces``).  Extra
    diagnostic values can be recorded in ``context.info``; they end up in the
    stage's :class:`StageRecord`.

    ``cache_key`` opts the stage into the per-stage artifact cache: called
    with the context *before* ``run``, it must return a stable
    content-addressed key covering **everything** the stage's outputs depend
    on -- or ``None`` when the inputs cannot be fingerprinted, which skips
    caching for that run.  Stages without a ``cache_key`` are never cached.
    """

    name: str
    run: Callable[["PipelineContext"], Mapping[str, Any]]
    consumes: tuple[str, ...] = ()
    produces: tuple[str, ...] = ()
    description: str = ""
    cache_key: Callable[["PipelineContext"], str | None] | None = None


class StageArtifactCache:
    """In-memory LRU of per-stage artifact bundles.

    Keys are ``(stage name, content key)``; values are the stage's produced
    artifacts plus its diagnostic info.  Entries are deep-copied on both
    store and lookup so no run can mutate another run's artifacts through
    the cache.  The cache is bounded (whole schedules are not small) and
    in-process only -- cross-process reuse is what the disk-backed WCET /
    system-result tiers are for.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be at least 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple[str, str], tuple[dict, dict]]" = OrderedDict()

    def lookup(self, stage: str, key: str) -> tuple[dict, dict] | None:
        """Cached ``(artifacts, info)`` of one stage run, or ``None``."""
        entry = self._entries.get((stage, key))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end((stage, key))
        self.hits += 1
        artifacts, info = entry
        return copy.deepcopy(artifacts), copy.deepcopy(info)

    def store(self, stage: str, key: str, artifacts: Mapping[str, Any], info: Mapping[str, Any]) -> None:
        self._entries[(stage, key)] = (
            copy.deepcopy(dict(artifacts)),
            copy.deepcopy(dict(info)),
        )
        self._entries.move_to_end((stage, key))
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_shared_stage_cache: StageArtifactCache | None = None


def shared_stage_cache() -> StageArtifactCache:
    """The process-wide stage cache used when ``config.stage_cache`` is set."""
    global _shared_stage_cache
    if _shared_stage_cache is None:
        _shared_stage_cache = StageArtifactCache()
    return _shared_stage_cache


@dataclass
class StageRecord:
    """What one stage did during one run (for the cross-layer report)."""

    name: str
    seconds: float
    produced: tuple[str, ...] = ()
    info: dict[str, Any] = field(default_factory=dict)


@dataclass
class PipelineContext:
    """Mutable state threaded through the stages of one run."""

    diagram: Diagram
    platform: Platform
    config: ToolchainConfig
    wcet_cache: WcetAnalysisCache
    artifacts: dict[str, Any] = field(default_factory=dict)
    #: Per-stage scratch: diagnostic values for the current StageRecord.
    info: dict[str, Any] = field(default_factory=dict)
    #: Incremental-run inputs (set by :meth:`Pipeline.run_incremental`): the
    #: previous run's race-check state and the ids of tasks whose content
    #: changed.  ``None`` means "no reuse" -- the cold-run default.
    prev_race_state: Any = None
    changed_task_ids: set[str] | None = None

    def artifact(self, name: str) -> Any:
        try:
            return self.artifacts[name]
        except KeyError:
            raise PipelineError(f"artifact {name!r} has not been produced yet") from None


@dataclass
class PipelineResult:
    """Everything one pipeline run produced for a diagram/platform pair.

    This is the result type ``ArgoToolchain.run`` returns (the legacy name
    ``ToolchainResult`` is an alias).  The sequential single-core bound is a
    proper constructor field (``sequential_bound``); ``sequential_wcet`` /
    ``wcet_speedup`` / ``metadata_sequential`` remain as compatibility
    properties.
    """

    diagram_name: str
    platform_name: str
    config: ToolchainConfig
    model: CompiledModel
    htg: HierarchicalTaskGraph
    schedule: Schedule
    parallel_program: ParallelProgram
    sequential_bound: float = 0.0
    pass_reports: list[PassReport] = field(default_factory=list)
    stage_records: list[StageRecord] = field(default_factory=list)
    #: Every artifact of the run, including those of custom stages.
    artifacts: dict[str, Any] = field(default_factory=dict)
    #: Cache counter deltas of this run: code-level WCET lookups
    #: (``hits`` / ``disk_hits`` / ``misses``) plus the per-stage artifact
    #: cache (``stage_hits`` / ``stage_misses``, always present and zero
    #: when stage caching is disabled or no stage opted in).
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: Observability snapshot of the run (see :meth:`telemetry`); ``None``
    #: when :mod:`repro.obs` was disabled while the run executed.
    telemetry_data: dict[str, Any] | None = field(default=None, repr=False, compare=False)
    #: Memoized analysis dependency graph (see :meth:`artifact_summary`).
    _summary: Any = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    def artifact_summary(self, cache: WcetAnalysisCache | None = None) -> dict[str, Any]:
        """The run's analysis dependency graph, as a JSON-able dict.

        Records the content fingerprints of everything each stage consumed
        and the per-stage input frontiers (see
        :func:`repro.analysis.incremental.summarize_result`).  Memoized:
        capture it soon after the run, while the fingerprinted objects are
        unmutated -- ``cache`` is only consulted on the first call.
        """
        if self._summary is None:
            from repro.analysis.incremental import summarize_result

            self._summary = summarize_result(self, cache)
        return self._summary

    # ------------------------------------------------------------------ #
    @property
    def certificates(self):
        """The run's :class:`~repro.analysis.certify.CertificateChain`.

        ``None`` unless the run was configured with ``certify=True`` (or a
        custom stage produced a ``certificates`` artifact).
        """
        return self.artifacts.get("certificates")

    @property
    def system_wcet(self) -> float:
        """Guaranteed multi-core WCET bound (cycles)."""
        return self.schedule.wcet_bound

    @property
    def sequential_wcet(self) -> float:
        """Single-core WCET bound of the whole step function (cycles)."""
        return self.sequential_bound

    @property
    def wcet_speedup(self) -> float:
        """Sequential WCET divided by the parallel WCET bound."""
        if self.system_wcet <= 0:
            return 1.0
        return self.sequential_bound / self.system_wcet

    #: Compatibility shim for the pre-pipeline field name.
    @property
    def metadata_sequential(self) -> float:
        return self.sequential_bound

    @metadata_sequential.setter
    def metadata_sequential(self, value: float) -> None:
        self.sequential_bound = value

    # ------------------------------------------------------------------ #
    def telemetry(self) -> dict[str, Any]:
        """What :mod:`repro.obs` recorded while this run executed.

        ``{"enabled": False}`` when observability was off; otherwise
        ``{"enabled": True, "metrics": <snapshot delta>}`` where the metrics
        delta covers exactly this run (counters/histograms recorded between
        run start and finish).  JSON-serializable: the sweep runner ships it
        from workers through ``SweepOutcome.telemetry``.
        """
        return self.telemetry_data or {"enabled": False}

    # ------------------------------------------------------------------ #
    @property
    def timings(self) -> dict[str, float]:
        """Per-stage wall-clock seconds, in execution order."""
        return {record.name: record.seconds for record in self.stage_records}

    def stage(self, name: str) -> StageRecord:
        for record in self.stage_records:
            if record.name == name:
                return record
        raise KeyError(f"no stage record named {name!r}")


# ---------------------------------------------------------------------- #
# built-in stages
# ---------------------------------------------------------------------- #
def _frontend_stage(context: PipelineContext) -> dict[str, Any]:
    model = compile_diagram(context.diagram)
    # Catch unbounded loops here with a diagnostic naming function and loop,
    # instead of failing much later inside IPET with an opaque LP error.
    problems = describe_unbounded_loops(model.entry)
    if problems:
        raise PipelineError(
            "the compiled model contains loops without a derivable worst-case "
            "trip count: " + "; ".join(problems)
        )
    context.info["blocks"] = len(model.block_regions)
    return {"model": model}


def _transforms_stage(context: PipelineContext) -> dict[str, Any]:
    model: CompiledModel = context.artifact("model")
    names = context.config.effective_passes()
    passes = build_pass_pipeline(
        names, PassContext(platform=context.platform, config=context.config, model=model)
    )
    manager = PassManager()
    for pass_ in passes:
        manager.add(pass_)
    reports = manager.run(model.entry)
    context.info["passes"] = list(names)
    context.info["changed"] = sum(1 for r in reports if r.changed)
    # the IR object is transformed in place; re-expose it under a new name so
    # downstream stages depend on the *transformed* model by construction
    return {"transformed_model": model, "pass_reports": reports}


def _htg_stage(context: PipelineContext) -> dict[str, Any]:
    model: CompiledModel = context.artifact("transformed_model")
    options = ExtractionOptions(
        granularity=context.config.granularity,
        loop_chunks=context.config.loop_chunks,
    )
    htg = extract_htg(model, options)
    cost_model = HardwareCostModel(context.platform, context.platform.cores[0].core_id)
    context.wcet_cache.annotate_htg(htg, model.entry, cost_model)
    context.info["tasks"] = len(htg.leaf_tasks())
    return {"htg": htg}


def _schedule_stage(context: PipelineContext) -> dict[str, Any]:
    model: CompiledModel = context.artifact("transformed_model")
    htg: HierarchicalTaskGraph = context.artifact("htg")
    entry = get_scheduler(context.config.scheduler)
    # Ambient MHP options: scheduler plugins keep their signature; every
    # system_level_wcet call under build() resolves these unless a caller
    # passed explicit values.
    from repro.wcet.system_level import mhp_options

    with mhp_options(
        static_pruning=context.config.static_pruning,
        vectorise_min_pairs=context.config.mhp_vectorise_min_pairs,
    ):
        schedule = entry.build(
            htg, model.entry, context.platform, context.config, context.wcet_cache
        )
    context.info["scheduler"] = entry.name
    context.info["cores_used"] = schedule.num_cores_used
    return {"schedule": schedule}


def _parallel_stage(context: PipelineContext) -> dict[str, Any]:
    model: CompiledModel = context.artifact("transformed_model")
    race_state = None
    if context.config.race_check:
        from repro.analysis.races import incremental_race_check

        schedule = context.artifact("schedule")
        race_report, race_state = incremental_race_check(
            context.artifact("htg"),
            schedule.mapping,
            schedule.order,
            model.entry,
            prev_state=context.prev_race_state,
            changed_tasks=context.changed_task_ids,
        )
        context.info["race_pairs_checked"] = race_report.checked.get("pairs_checked", 0)
        if race_report.checked.get("pairs_reused"):
            context.info["race_pairs_reused"] = race_report.checked["pairs_reused"]
        if race_report.count("error"):
            # warnings (e.g. race.chunk-overlap-unproven) survive the gate
            raise PipelineError(
                "the schedule leaves conflicting shared accesses unordered: "
                + "; ".join(
                    str(f) for f in race_report.findings if f.severity == "error"
                )
            )
    program = build_parallel_program(
        context.artifact("htg"), model.entry, context.platform, context.artifact("schedule")
    )
    context.info["sync_ops"] = program.num_sync_ops
    produced: dict[str, Any] = {"parallel_program": program}
    if race_state is not None:
        # extra (undeclared) artifact: the reusable race-check snapshot a
        # later run_incremental seeds incremental_race_check from
        produced["race_state"] = race_state
    return produced


def _certify_stage(context: PipelineContext) -> dict[str, Any]:
    """Re-validate the run's claims through the independent checkers.

    Gated by ``config.certify``: off, the stage is a no-op producing
    ``certificates = None`` (so the artifact always exists and downstream
    consumers need no existence checks).  On, a refuted certificate aborts
    the run with a :class:`~repro.analysis.certify.CertificationError`.
    """
    if not context.config.certify:
        context.info["certified"] = False
        return {"certificates": None}
    from repro.analysis.certify import CertificationError, build_certificates

    model: CompiledModel = context.artifact("transformed_model")
    chain = build_certificates(
        context.artifact("schedule"),
        model.entry,
        context.artifact("htg"),
        context.platform,
    )
    context.info["certified"] = chain.ok
    context.info["certificate_findings"] = len(chain.findings())
    if not chain.ok:
        raise CertificationError(
            "certificate chain refuted the run's results: "
            + "; ".join(
                str(f) for f in chain.findings() if f.severity == "error"
            ),
        )
    return {"certificates": chain}


def _wcet_stage(context: PipelineContext) -> dict[str, Any]:
    model: CompiledModel = context.artifact("transformed_model")
    sequential_bound = analyze_function_wcet(
        model.entry,
        HardwareCostModel(context.platform, context.platform.cores[0].core_id),
        cache=context.wcet_cache,
    ).total
    context.info["system_wcet"] = context.artifact("schedule").wcet_bound
    context.info["sequential_wcet"] = sequential_bound
    return {"sequential_bound": sequential_bound}


# ---------------------------------------------------------------------- #
# content-addressed stage cache keys (see Stage.cache_key)
# ---------------------------------------------------------------------- #
def _config_digest(config: ToolchainConfig) -> str:
    knobs = dataclasses.asdict(config)
    # observability never changes any artifact, so tracing a run must not
    # split it off from the untraced cache entries
    knobs.pop("trace", None)
    return hashlib.sha1(
        json.dumps(knobs, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()


def _htg_fingerprint(context: PipelineContext, htg: HierarchicalTaskGraph) -> str:
    """Structural fingerprint of an HTG: tasks by content, edges by payload."""
    return _htg_fingerprint_of(htg, context.wcet_cache)


def _htg_fingerprint_of(htg: HierarchicalTaskGraph, cache: WcetAnalysisCache) -> str:
    tasks = sorted(
        (
            task.task_id,
            "synthetic" if task.is_synthetic or task.statements is None
            else cache.region_fingerprint(task.statements),
        )
        for task in htg.tasks.values()
    )
    edges = sorted((e.src, e.dst, e.payload_bytes) for e in htg.edges)
    return hashlib.sha1(
        json.dumps([tasks, edges], separators=(",", ":")).encode("utf-8")
    ).hexdigest()


#: scheduler callable -> monotonic token: identifies the *implementation*
#: without the id()-reuse hazard (a freed callable's address can be handed
#: to its replacement; a weak key dies with the callable and the counter
#: never repeats, so a re-registered scheduler always gets a fresh token)
_scheduler_tokens: "weakref.WeakKeyDictionary[Callable, int]" = weakref.WeakKeyDictionary()
_scheduler_token_counter = itertools.count()


def _scheduler_identity(name: str) -> str | None:
    """Process-local identity of the implementation behind a scheduler name.

    ``config.scheduler`` is resolved through a registry that explicitly
    supports re-registration (``replace=True``), so the name alone does not
    pin what the schedule stage will run.  The stage cache is strictly
    per-process, which makes a per-callable token a valid key component;
    callables that cannot be weakly referenced return ``None`` (the stage
    is then uncacheable rather than at risk of a stale hit).
    """
    build = get_scheduler(name).build
    try:
        token = _scheduler_tokens.get(build)
        if token is None:
            token = next(_scheduler_token_counter)
            _scheduler_tokens[build] = token
    except TypeError:
        return None
    return (
        f"{getattr(build, '__module__', '')}."
        f"{getattr(build, '__qualname__', '')}#{token}"
    )


def _schedule_stage_key(context: PipelineContext) -> str | None:
    """Everything the schedule depends on: IR, HTG, platform content, config,
    and the concrete scheduler implementation the registry resolves to."""
    psig = platform_signature(context.platform)
    if psig is None:
        return None
    scheduler_id = _scheduler_identity(context.config.scheduler)
    if scheduler_id is None:
        return None
    model: CompiledModel = context.artifact("transformed_model")
    return "|".join(
        (
            "schedule",
            context.wcet_cache.function_fingerprint(model.entry),
            _htg_fingerprint(context, context.artifact("htg")),
            psig,
            _config_digest(context.config),
            scheduler_id,
        )
    )


def _schedule_digest(schedule: Schedule) -> str:
    """Content digest of a schedule artifact (mapping, order, bound)."""
    payload = [
        sorted(schedule.mapping.items()),
        sorted((core, list(tids)) for core, tids in schedule.order.items()),
        schedule.wcet_bound,
    ]
    return hashlib.sha1(
        json.dumps(payload, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _wcet_stage_key(context: PipelineContext) -> str | None:
    """Everything the stage touches: the IR and platform determine the
    produced bound, and the consumed schedule pins the diagnostics -- a
    custom schedule stage must never replay another schedule's info."""
    psig = platform_signature(context.platform)
    if psig is None:
        return None
    model: CompiledModel = context.artifact("transformed_model")
    return "|".join(
        (
            "wcet",
            context.wcet_cache.function_fingerprint(model.entry),
            psig,
            _config_digest(context.config),
            _schedule_digest(context.artifact("schedule")),
        )
    )


def default_stages() -> tuple[Stage, ...]:
    """The seven built-in stages: the Fig. 1 flow plus the certify gate."""
    return (
        Stage(
            name="frontend",
            run=_frontend_stage,
            consumes=("diagram",),
            produces=("model",),
            description="model-based specification -> IR entry function",
        ),
        Stage(
            name="transforms",
            run=_transforms_stage,
            consumes=("model",),
            produces=("transformed_model", "pass_reports"),
            description="predictability-enhancing transformation passes",
        ),
        Stage(
            name="htg",
            run=_htg_stage,
            consumes=("transformed_model",),
            produces=("htg",),
            description="hierarchical task graph extraction + WCET annotation",
        ),
        Stage(
            name="schedule",
            run=_schedule_stage,
            consumes=("transformed_model", "htg"),
            produces=("schedule",),
            description="WCET-aware mapping/scheduling (via the scheduler registry)",
            cache_key=_schedule_stage_key,
        ),
        Stage(
            name="parallel",
            run=_parallel_stage,
            consumes=("transformed_model", "htg", "schedule"),
            produces=("parallel_program",),
            description="explicit parallel program construction",
        ),
        Stage(
            name="wcet",
            run=_wcet_stage,
            consumes=("transformed_model", "schedule"),
            produces=("sequential_bound",),
            description="sequential reference bound (system bound lives on the schedule)",
            cache_key=_wcet_stage_key,
        ),
        Stage(
            name="certify",
            run=_certify_stage,
            consumes=("transformed_model", "htg", "schedule"),
            produces=("certificates",),
            description="independent certificate checkers (gated by config.certify)",
        ),
    )


def _order_stages(stages: tuple[Stage, ...]) -> tuple[Stage, ...]:
    """Validate the artifact graph and return the stages in dependency order.

    Checks: unique stage names, every artifact produced exactly once, every
    consumed artifact available (initial or produced), and acyclicity.  The
    topological order is stable with respect to the declaration order.
    """
    names = [stage.name for stage in stages]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise PipelineError(f"duplicate stage names: {', '.join(dupes)}")
    producer: dict[str, Stage] = {}
    for stage in stages:
        for artifact in stage.produces:
            if artifact in INITIAL_ARTIFACTS:
                raise PipelineError(
                    f"stage {stage.name!r} produces reserved artifact {artifact!r}"
                )
            if artifact in producer:
                raise PipelineError(
                    f"artifact {artifact!r} produced by both "
                    f"{producer[artifact].name!r} and {stage.name!r}"
                )
            producer[artifact] = stage
    for stage in stages:
        for artifact in stage.consumes:
            if artifact not in producer and artifact not in INITIAL_ARTIFACTS:
                raise PipelineError(
                    f"stage {stage.name!r} consumes {artifact!r}, which no stage "
                    f"produces (known artifacts: "
                    f"{', '.join(sorted(set(producer) | set(INITIAL_ARTIFACTS)))})"
                )
    # Kahn's algorithm, preferring declaration order among ready stages.
    pending = list(stages)
    available = set(INITIAL_ARTIFACTS)
    ordered: list[Stage] = []
    while pending:
        ready = [s for s in pending if all(a in available for a in s.consumes)]
        if not ready:
            cycle = ", ".join(s.name for s in pending)
            raise PipelineError(f"stage graph has a dependency cycle through: {cycle}")
        stage = ready[0]
        pending.remove(stage)
        ordered.append(stage)
        available.update(stage.produces)
    return tuple(ordered)


class Pipeline:
    """A validated, composable instance of the flow for one platform."""

    def __init__(
        self,
        platform: Platform,
        config: ToolchainConfig | None = None,
        wcet_cache: WcetAnalysisCache | None = None,
        stages: tuple[Stage, ...] | None = None,
        stage_cache: StageArtifactCache | None = None,
    ) -> None:
        self.platform = platform
        self.config = config or ToolchainConfig()
        #: Memo of code-level analyses shared by every stage (and, via the
        #: sweep runner and feedback optimizer, across whole design-space
        #: explorations).  Defaults to the process-wide shared cache, which
        #: is disk-backed when ``REPRO_WCET_CACHE_DIR`` is set.
        self.wcet_cache = wcet_cache if wcet_cache is not None else shared_cache()
        #: Per-stage artifact cache; stages that declare a ``cache_key``
        #: reuse their outputs through it.  ``None`` disables stage caching
        #: unless ``config.stage_cache`` opts into the process-wide cache.
        if stage_cache is None and self.config.stage_cache:
            stage_cache = shared_stage_cache()
        self.stage_cache = stage_cache
        self.stages = _order_stages(tuple(stages) if stages is not None else default_stages())
        report = platform.check_predictability()
        if not report.passed:
            raise ToolchainError(
                "platform fails the predictability guidelines: "
                + "; ".join(report.violations)
            )

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def with_stage(self, stage: Stage) -> "Pipeline":
        """A new pipeline with ``stage`` added (position decided by the graph)."""
        return Pipeline(
            self.platform,
            self.config,
            self.wcet_cache,
            stages=self.stages + (stage,),
            stage_cache=self.stage_cache,
        )

    def replace_stage(self, name: str, stage: Stage) -> "Pipeline":
        """A new pipeline with the stage called ``name`` swapped for ``stage``."""
        if all(s.name != name for s in self.stages):
            raise PipelineError(f"no stage named {name!r} to replace")
        stages = tuple(stage if s.name == name else s for s in self.stages)
        return Pipeline(
            self.platform, self.config, self.wcet_cache, stages=stages,
            stage_cache=self.stage_cache,
        )

    def without_stage(self, name: str) -> "Pipeline":
        """A new pipeline with the stage called ``name`` removed."""
        if all(s.name != name for s in self.stages):
            raise PipelineError(f"no stage named {name!r} to remove")
        stages = tuple(s for s in self.stages if s.name != name)
        return Pipeline(
            self.platform, self.config, self.wcet_cache, stages=stages,
            stage_cache=self.stage_cache,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, diagram: Diagram) -> PipelineResult:
        """One pass through the stage graph on ``diagram``.

        With ``config.trace`` set, observability (:mod:`repro.obs`) is
        enabled for the duration of the run and restored afterwards.
        """
        previous = obs.set_enabled(obs.obs_enabled() or self.config.trace)
        try:
            return self._run(diagram)
        finally:
            obs.set_enabled(previous)

    def _run(self, diagram: Diagram) -> PipelineResult:
        context = PipelineContext(
            diagram=diagram,
            platform=self.platform,
            config=self.config,
            wcet_cache=self.wcet_cache,
            artifacts={
                "diagram": diagram,
                "platform": self.platform,
                "config": self.config,
            },
        )
        stats = self.wcet_cache.stats
        counters_before = (stats.hits, stats.disk_hits, stats.misses)
        obs_on = obs.obs_enabled()
        run_started = time.perf_counter()
        metrics_before = obs.metrics_snapshot() if obs_on else None
        records: list[StageRecord] = []
        stage_hits = 0
        stage_misses = 0
        for stage in self.stages:
            context.info = {}
            started = time.perf_counter()
            produced: dict[str, Any] | None = None
            cached_info: dict[str, Any] | None = None
            cache_key: str | None = None
            with obs.span(f"stage.{stage.name}") as stage_span:
                if self.stage_cache is not None and stage.cache_key is not None:
                    cache_key = stage.cache_key(context)
                    if cache_key is not None:
                        cached = self.stage_cache.lookup(stage.name, cache_key)
                        if cached is not None:
                            produced, cached_info = cached
                            stage_hits += 1
                        else:
                            stage_misses += 1
                from_cache = produced is not None
                if produced is None:
                    produced = dict(stage.run(context) or {})
                elif obs_on:
                    stage_span.set(stage_cache="hit")
            seconds = time.perf_counter() - started
            missing = [a for a in stage.produces if a not in produced]
            if missing:
                raise PipelineError(
                    f"stage {stage.name!r} did not produce declared artifact(s): "
                    f"{', '.join(missing)}"
                )
            context.artifacts.update(produced)
            if from_cache:
                info = dict(cached_info or {})
                info["stage_cache"] = "hit"
            else:
                info = dict(context.info)
                if cache_key is not None:
                    self.stage_cache.store(stage.name, cache_key, produced, info)
            records.append(
                StageRecord(
                    name=stage.name,
                    seconds=seconds,
                    produced=tuple(produced),
                    info=info,
                )
            )
        cache_stats = {
            key: after - before
            for key, before, after in zip(
                ("hits", "disk_hits", "misses"),
                counters_before,
                (stats.hits, stats.disk_hits, stats.misses),
            )
        }
        cache_stats["stage_hits"] = stage_hits
        cache_stats["stage_misses"] = stage_misses
        telemetry = self._capture_telemetry(
            obs_on, run_started, metrics_before, diagram, cache_stats, len(records)
        )
        return self._assemble_result(
            diagram, context, records, cache_stats, telemetry=telemetry
        )

    def _capture_telemetry(
        self,
        obs_on: bool,
        run_started: float,
        metrics_before: "dict[str, Any] | None",
        diagram: Diagram,
        cache_stats: dict[str, int],
        num_stages: int,
        span_name: str = "pipeline.run",
    ) -> "dict[str, Any] | None":
        """Fold this run's cache deltas into the registry and carve out the
        per-run metrics snapshot (``None`` when observability is off)."""
        if not obs_on:
            return None
        registry = obs.metrics()
        for key in ("hits", "disk_hits", "misses", "stage_hits", "stage_misses"):
            delta = cache_stats.get(key, 0)
            if delta:
                registry.counter(f"wcet_cache.{key}").inc(delta)
        obs.trace_complete(
            span_name,
            run_started,
            time.perf_counter() - run_started,
            {
                "diagram": diagram.name,
                "platform": self.platform.name,
                "stages": num_stages,
            },
        )
        return {
            "enabled": True,
            "metrics": obs.snapshot_delta(metrics_before or {}, obs.metrics_snapshot()),
        }

    def run_incremental(self, prev: PipelineResult, diagram: Diagram) -> PipelineResult:
        """Re-run the flow on an edited ``diagram``, reusing ``prev``.

        Walks the analysis dependency graph of ``prev`` (its
        :meth:`PipelineResult.artifact_summary`): a stage whose complete
        input frontier is unchanged is *replayed by reference* instead of
        re-run, and the stages that must run do so incrementally --

        * HTG extraction rebuilds only regions whose code fingerprint
          changed (task decompositions of clean regions are shallow-copied);
        * the race check reuses the previous happens-before closure and
          re-scans only pairs with a changed endpoint;
        * the schedule stage warm-starts the interference fixed point from
          the previous converged state (certificate-checked before reuse,
          see :mod:`repro.wcet.system_level`).

        The result is bit-identical to a cold :meth:`run` on the same
        diagram: every reuse is guarded by content fingerprints (replay is
        only valid when it *proves* the inputs unchanged) or re-validated by
        an independent checker (the warm fixed point).  The per-run reuse
        accounting lands in ``result.artifacts["incremental_report"]`` (an
        :class:`~repro.analysis.incremental.IncrementalReport`) and in
        ``cache_stats["stages_reused"] / ["stages_recomputed"]``.

        Falls back to a plain cold run (with ``fallback_reason`` set) when
        the stage graph is customised -- the engine only knows the input
        frontiers of the seven built-in stages.
        """
        previous = obs.set_enabled(obs.obs_enabled() or self.config.trace)
        try:
            return self._run_incremental(prev, diagram)
        finally:
            obs.set_enabled(previous)

    def _run_incremental(self, prev: PipelineResult, diagram: Diagram) -> PipelineResult:
        from repro.analysis.incremental import (
            TRACKED_STAGES,
            IncrementalReport,
            _digest,
            diagram_fingerprint,
            diff_summaries,
            stage_input_frontiers,
        )
        from repro.wcet.system_level import warm_start_hint

        report = IncrementalReport()
        obs_on = obs.obs_enabled()
        run_started = time.perf_counter()
        metrics_before = obs.metrics_snapshot() if obs_on else None
        stage_names = tuple(stage.name for stage in self.stages)
        if stage_names != TRACKED_STAGES:
            report.fallback_reason = (
                "custom stage graph: input frontiers unknown for "
                + ", ".join(sorted(set(stage_names) ^ set(TRACKED_STAGES)))
            )
            result = self.run(diagram)
            report.stages = {name: "recomputed" for name in stage_names}
            result.cache_stats["stages_reused"] = 0
            result.cache_stats["stages_recomputed"] = len(stage_names)
            result.artifacts["incremental_report"] = report
            return result

        prev_summary = prev.artifact_summary(self.wcet_cache)
        prev_fp = dict(prev_summary["fingerprints"])
        prev_frontiers = dict(prev_summary["frontiers"])
        new_fp: dict[str, Any] = {
            "diagram": diagram_fingerprint(diagram),
            "platform": platform_signature(self.platform),
            "config": _config_digest(self.config),
            "extraction": _digest([self.config.granularity, self.config.loop_chunks]),
            "scheduler": _scheduler_identity(self.config.scheduler),
        }

        # ---- quick path: nothing changed -> zero stages re-run ---------- #
        if (
            new_fp["platform"] is not None
            and new_fp["scheduler"] is not None
            and new_fp["diagram"] == prev_fp.get("diagram")
            and new_fp["platform"] == prev_fp.get("platform")
            and new_fp["config"] == prev_fp.get("config")
            and new_fp["scheduler"] == prev_fp.get("scheduler")
        ):
            report.diff = diff_summaries(prev_summary, prev_summary)
            report.stages = {name: "reused" for name in stage_names}
            report.regions_reused = len(prev_summary["regions"])
            records = []
            for stage in self.stages:
                try:
                    prev_record = prev.stage(stage.name)
                    produced, info = prev_record.produced, dict(prev_record.info)
                except KeyError:
                    produced, info = stage.produces, {}
                info["incremental"] = "reused"
                records.append(
                    StageRecord(name=stage.name, seconds=0.0, produced=produced, info=info)
                )
            artifacts = dict(prev.artifacts)
            artifacts.update(
                {"diagram": diagram, "platform": self.platform, "config": self.config}
            )
            artifacts["incremental_report"] = report
            if obs_on:
                obs.metrics().counter("incremental.stages_reused").inc(len(stage_names))
            telemetry = self._capture_telemetry(
                obs_on,
                run_started,
                metrics_before,
                diagram,
                {},
                len(records),
                span_name="pipeline.run_incremental",
            )
            return PipelineResult(
                diagram_name=diagram.name,
                platform_name=self.platform.name,
                config=self.config,
                model=prev.model,
                htg=prev.htg,
                schedule=prev.schedule,
                parallel_program=prev.parallel_program,
                sequential_bound=prev.sequential_bound,
                pass_reports=list(prev.pass_reports),
                stage_records=records,
                artifacts=artifacts,
                cache_stats={
                    "hits": 0,
                    "disk_hits": 0,
                    "misses": 0,
                    "stage_hits": 0,
                    "stage_misses": 0,
                    "stages_reused": len(stage_names),
                    "stages_recomputed": 0,
                },
                telemetry_data=telemetry,
                _summary=prev_summary,
            )

        # ---- dirty path: replay clean stages, re-run dirty ones --------- #
        context = PipelineContext(
            diagram=diagram,
            platform=self.platform,
            config=self.config,
            wcet_cache=self.wcet_cache,
            artifacts={
                "diagram": diagram,
                "platform": self.platform,
                "config": self.config,
            },
        )
        stats = self.wcet_cache.stats
        counters_before = (stats.hits, stats.disk_hits, stats.misses)
        records: list[StageRecord] = []
        by_name = {stage.name: stage for stage in self.stages}

        def execute(name: str, status: str = "recomputed") -> StageRecord:
            stage = by_name[name]
            context.info = {}
            started = time.perf_counter()
            with obs.span(f"stage.{name}", incremental=status):
                produced = dict(stage.run(context) or {})
            seconds = time.perf_counter() - started
            missing = [a for a in stage.produces if a not in produced]
            if missing:
                raise PipelineError(
                    f"stage {name!r} did not produce declared artifact(s): "
                    f"{', '.join(missing)}"
                )
            context.artifacts.update(produced)
            info = dict(context.info)
            info["incremental"] = status
            record = StageRecord(
                name=name, seconds=seconds, produced=tuple(produced), info=info
            )
            records.append(record)
            report.stages[name] = status
            return record

        def replay(name: str) -> None:
            try:
                prev_record = prev.stage(name)
                artifact_names = prev_record.produced
                info = dict(prev_record.info)
            except KeyError:
                artifact_names, info = by_name[name].produces, {}
            produced = {
                artifact: prev.artifacts[artifact]
                for artifact in artifact_names
                if artifact in prev.artifacts
            }
            context.artifacts.update(produced)
            info["incremental"] = "reused"
            records.append(
                StageRecord(name=name, seconds=0.0, produced=tuple(produced), info=info)
            )
            report.stages[name] = "reused"

        # frontend + transforms always re-run here: the transformation
        # passes mutate the compiled model in place, so the previous run
        # holds no pristine pre-transform model to replay from.
        execute("frontend")
        execute("transforms")
        model: CompiledModel = context.artifact("transformed_model")
        # the passes just mutated the freshly compiled IR in place; per the
        # WcetAnalysisCache contract, drop any fingerprints memoized for it
        # before fingerprinting the final content
        self.wcet_cache.invalidate_fingerprints(model.entry)
        new_fp["function"] = self.wcet_cache.function_fingerprint(model.entry)
        new_regions = {
            name: self.wcet_cache.region_fingerprint(block)
            for name, block in model.block_regions
        }
        prev_regions = dict(prev_summary["regions"])
        unchanged_regions = {
            name for name, fp in new_regions.items() if prev_regions.get(name) == fp
        }

        # htg: replay / per-region incremental re-extraction / cold
        changed_task_ids: set[str] | None
        psig_ok = (
            new_fp["platform"] is not None
            and new_fp["platform"] == prev_fp.get("platform")
        )
        extraction_same = new_fp["extraction"] == prev_fp.get("extraction")
        if (
            psig_ok
            and extraction_same
            and prev_fp.get("function") is not None
            and new_fp["function"] == prev_fp.get("function")
        ):
            replay("htg")
            changed_task_ids = set()
            report.regions_reused += len(new_regions)
        elif psig_ok and extraction_same:
            from repro.htg.extraction import extract_htg_incremental

            context.info = {}
            started = time.perf_counter()
            options = ExtractionOptions(
                granularity=self.config.granularity,
                loop_chunks=self.config.loop_chunks,
            )
            prev_tasks: dict[str, list] = {}
            for task in prev.htg.tasks.values():
                if task.origin:
                    prev_tasks.setdefault(task.origin, []).append(task)
            htg, inc = extract_htg_incremental(
                model, options, prev_tasks, unchanged_regions
            )
            # reused tasks are copies of already-annotated tasks and the
            # platform signature is proven unchanged (psig_ok), so only the
            # re-extracted tasks need WCET annotation; when the edit kept
            # the task/edge structure, the previous run's transitive-closure
            # memo applies verbatim as well.
            htg.adopt_dependent_pairs(prev.htg)
            cost_model = HardwareCostModel(self.platform, self.platform.cores[0].core_id)
            self.wcet_cache.annotate_htg(
                htg, model.entry, cost_model, only=set(inc["changed_task_ids"])
            )
            context.artifacts["htg"] = htg
            records.append(
                StageRecord(
                    name="htg",
                    seconds=time.perf_counter() - started,
                    produced=("htg",),
                    info={
                        "tasks": len(htg.leaf_tasks()),
                        "regions_reused": inc["regions_reused"],
                        "regions_recomputed": inc["regions_recomputed"],
                        "incremental": "incremental",
                    },
                )
            )
            report.stages["htg"] = "incremental"
            report.regions_reused += inc["regions_reused"]
            report.regions_recomputed += inc["regions_recomputed"]
            changed_task_ids = set(inc["changed_task_ids"])
        else:
            execute("htg")
            changed_task_ids = None
            report.regions_recomputed += len(new_regions)
        new_fp["htg"] = _htg_fingerprint_of(context.artifact("htg"), self.wcet_cache)

        # schedule: replay, or re-run warm-started from the previous result
        schedule_frontier = stage_input_frontiers(new_fp)["schedule"]
        if (
            schedule_frontier is not None
            and schedule_frontier == prev_frontiers.get("schedule")
        ):
            replay("schedule")
        else:
            with warm_start_hint(prev.schedule.result):
                record = execute("schedule")
            warm_info = getattr(
                context.artifact("schedule").result, "warm_info", None
            )
            if warm_info is not None:
                report.warm_fixed_point = warm_info
                record.info["warm_started"] = bool(warm_info.get("warm_started"))
        new_fp["schedule"] = _schedule_digest(context.artifact("schedule"))
        frontiers = stage_input_frontiers(new_fp)

        # parallel: replay, or re-check only race pairs with a changed endpoint
        if (
            frontiers["parallel"] is not None
            and frontiers["parallel"] == prev_frontiers.get("parallel")
        ):
            replay("parallel")
        else:
            context.prev_race_state = prev.artifacts.get("race_state")
            context.changed_task_ids = changed_task_ids
            status = (
                "incremental"
                if context.prev_race_state is not None and changed_task_ids is not None
                else "recomputed"
            )
            record = execute("parallel", status)
            report.race_pairs_checked = record.info.get("race_pairs_checked", 0)
            report.race_pairs_reused = record.info.get("race_pairs_reused", 0)

        # wcet + certify: pure frontier comparisons
        if (
            frontiers["wcet"] is not None
            and frontiers["wcet"] == prev_frontiers.get("wcet")
        ):
            replay("wcet")
        else:
            execute("wcet")
        if (
            frontiers["certify"] is not None
            and frontiers["certify"] == prev_frontiers.get("certify")
        ):
            replay("certify")
        else:
            execute("certify")

        cache_stats = {
            key: after - before
            for key, before, after in zip(
                ("hits", "disk_hits", "misses"),
                counters_before,
                (stats.hits, stats.disk_hits, stats.misses),
            )
        }
        cache_stats["stage_hits"] = 0
        cache_stats["stage_misses"] = 0
        cache_stats["stages_reused"] = report.stages_reused
        cache_stats["stages_recomputed"] = report.stages_recomputed
        if obs_on:
            registry = obs.metrics()
            registry.counter("incremental.stages_reused").inc(report.stages_reused)
            registry.counter("incremental.stages_recomputed").inc(
                report.stages_recomputed
            )
            registry.counter("incremental.regions_reused").inc(report.regions_reused)
            registry.counter("incremental.regions_recomputed").inc(
                report.regions_recomputed
            )
            registry.counter("incremental.race_pairs_reused").inc(
                report.race_pairs_reused
            )
        telemetry = self._capture_telemetry(
            obs_on,
            run_started,
            metrics_before,
            diagram,
            cache_stats,
            len(records),
            span_name="pipeline.run_incremental",
        )
        result = self._assemble_result(
            diagram, context, records, cache_stats, telemetry=telemetry
        )
        report.diff = diff_summaries(
            prev_summary, result.artifact_summary(self.wcet_cache)
        )
        result.artifacts["incremental_report"] = report
        return result

    def _assemble_result(
        self,
        diagram: Diagram,
        context: PipelineContext,
        records: list[StageRecord],
        cache_stats: dict[str, int],
        telemetry: "dict[str, Any] | None" = None,
    ) -> PipelineResult:
        artifacts = context.artifacts

        def require(name: str) -> Any:
            if name not in artifacts:
                raise PipelineError(
                    f"pipeline finished without producing required artifact {name!r} "
                    f"(is the {name!r}-producing stage missing?)"
                )
            return artifacts[name]

        return PipelineResult(
            diagram_name=diagram.name,
            platform_name=self.platform.name,
            config=self.config,
            model=require("transformed_model"),
            htg=require("htg"),
            schedule=require("schedule"),
            parallel_program=require("parallel_program"),
            sequential_bound=float(artifacts.get("sequential_bound", 0.0)),
            pass_reports=list(artifacts.get("pass_reports", [])),
            stage_records=records,
            artifacts=dict(artifacts),
            cache_stats=cache_stats,
            telemetry_data=telemetry,
        )

    # ------------------------------------------------------------------ #
    def simulate(
        self, result: PipelineResult, inputs: Mapping[str, Any] | None = None
    ) -> SimulationResult:
        """Execute the parallel program of ``result`` on the platform model."""
        bindings = result.model.run_inputs(dict(inputs or {}))
        return simulate_parallel_program(
            result.parallel_program,
            result.htg,
            result.model.entry,
            self.platform,
            bindings,
        )


# ---------------------------------------------------------------------- #
# convenience driver (used by the sweep runner and the toolchain facade)
# ---------------------------------------------------------------------- #
def run_pipeline(
    diagram: Diagram,
    platform: Platform,
    config: ToolchainConfig | None = None,
    wcet_cache: WcetAnalysisCache | None = None,
    stage_cache: StageArtifactCache | None = None,
) -> PipelineResult:
    """Run the complete flow, honouring ``config.feedback_iterations``.

    Mirrors ``ArgoToolchain.run``: with ``feedback_iterations > 1`` the
    cross-layer feedback loop explores neighbouring configurations (itself an
    inline sweep) and returns the best result.  ``stage_cache`` opts the
    single-shot path into per-stage artifact reuse (the feedback path
    manages its own pipelines and only honours ``config.stage_cache``).
    """
    config = config or ToolchainConfig()
    if config.feedback_iterations > 1:
        from repro.core.feedback import CrossLayerFeedback
        from repro.core.toolchain import ArgoToolchain

        return CrossLayerFeedback(ArgoToolchain(platform, config, wcet_cache)).optimize(
            diagram
        )
    return Pipeline(platform, config, wcet_cache, stage_cache=stage_cache).run(diagram)
