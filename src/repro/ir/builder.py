"""Fluent construction helpers for IR functions.

The front end (model-to-IR code generation), the use-case kernels and the
tests all build IR through :class:`FunctionBuilder`, which removes most of
the boilerplate of creating declarations and nested blocks by hand.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.expressions import ArrayRef, BinOp, Call, Const, Expr, UnOp, Var
from repro.ir.program import Function, Storage, VarDecl
from repro.ir.statements import Assign, Block, For, If, Return, Stmt, While
from repro.ir.types import FLOAT, INT, ArrayType, ScalarType


def as_expr(value: Expr | float | int | bool) -> Expr:
    """Coerce Python scalars to :class:`Const` nodes."""
    if isinstance(value, Expr):
        return value
    return Const(value)


@dataclass
class FunctionBuilder:
    """Incrementally builds a :class:`Function`.

    >>> fb = FunctionBuilder("saxpy")
    >>> x = fb.input_array("x", (16,))
    >>> y = fb.output_array("y", (16,))
    >>> a = fb.scalar_input("a")
    >>> with fb.loop("i", 0, 16) as i:
    ...     fb.assign(fb.at(y, i), fb.at(x, i) * a)
    >>> func = fb.build()
    >>> func.name
    'saxpy'
    """

    name: str
    _function: Function = field(init=False)
    _blocks: list[Block] = field(init=False)

    def __post_init__(self) -> None:
        self._function = Function(self.name)
        self._blocks = [self._function.body]

    # ------------------------------------------------------------------ #
    # declarations
    # ------------------------------------------------------------------ #
    def scalar_input(self, name: str, scalar: ScalarType = FLOAT) -> Var:
        self._function.params.append(VarDecl(name, scalar, Storage.INPUT))
        return Var(name, scalar)

    def input_array(self, name: str, shape: tuple[int, ...], scalar: ScalarType = FLOAT) -> Var:
        ty = ArrayType(scalar, shape)
        self._function.params.append(VarDecl(name, ty, Storage.INPUT))
        return Var(name, ty)

    def output_array(self, name: str, shape: tuple[int, ...], scalar: ScalarType = FLOAT) -> Var:
        ty = ArrayType(scalar, shape)
        self._function.params.append(VarDecl(name, ty, Storage.OUTPUT))
        return Var(name, ty)

    def local(self, name: str, scalar: ScalarType = FLOAT, initial: float | int | None = None) -> Var:
        self._function.declare(VarDecl(name, scalar, Storage.LOCAL, initial=initial))
        return Var(name, scalar)

    def local_array(self, name: str, shape: tuple[int, ...], scalar: ScalarType = FLOAT) -> Var:
        ty = ArrayType(scalar, shape)
        self._function.declare(VarDecl(name, ty, Storage.LOCAL))
        return Var(name, ty)

    def shared_array(self, name: str, shape: tuple[int, ...], scalar: ScalarType = FLOAT) -> Var:
        ty = ArrayType(scalar, shape)
        self._function.declare(VarDecl(name, ty, Storage.SHARED))
        return Var(name, ty)

    # ------------------------------------------------------------------ #
    # expression helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def at(array: Var, *indices: Expr | int) -> ArrayRef:
        """Element access into ``array`` (which must have an array type)."""
        if not isinstance(array.type, ArrayType):
            raise TypeError(f"{array.name} is not an array")
        return ArrayRef(
            array.name,
            tuple(as_expr(i) for i in indices),
            array.type.element,
        )

    @staticmethod
    def binop(op: str, left: Expr | float, right: Expr | float) -> BinOp:
        return BinOp(op, as_expr(left), as_expr(right))

    @staticmethod
    def call(func: str, *args: Expr | float) -> Call:
        return Call(func, tuple(as_expr(a) for a in args))

    @staticmethod
    def neg(value: Expr | float) -> UnOp:
        return UnOp("-", as_expr(value))

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    @property
    def current_block(self) -> Block:
        return self._blocks[-1]

    def emit(self, stmt: Stmt) -> Stmt:
        self.current_block.append(stmt)
        return stmt

    def assign(self, target: Var | ArrayRef, value: Expr | float | int) -> Assign:
        stmt = Assign(target, as_expr(value))
        self.emit(stmt)
        return stmt

    def ret(self, value: Expr | float | None = None) -> Return:
        stmt = Return(as_expr(value) if value is not None else None)
        self.emit(stmt)
        return stmt

    @contextlib.contextmanager
    def loop(
        self,
        index: str,
        lower: Expr | int,
        upper: Expr | int,
        step: int = 1,
        max_trip_count: int | None = None,
        parallelizable: bool = False,
    ) -> Iterator[Var]:
        """Open a counted loop; statements emitted inside land in its body."""
        body = Block()
        var = Var(index, INT)
        stmt = For(
            index=var,
            lower=as_expr(lower),
            upper=as_expr(upper),
            body=body,
            step=step,
            max_trip_count=max_trip_count,
            parallelizable=parallelizable,
        )
        self.emit(stmt)
        self._blocks.append(body)
        try:
            yield var
        finally:
            self._blocks.pop()

    @contextlib.contextmanager
    def while_loop(self, cond: Expr, max_trip_count: int) -> Iterator[None]:
        body = Block()
        stmt = While(cond=cond, body=body, max_trip_count=max_trip_count)
        self.emit(stmt)
        self._blocks.append(body)
        try:
            yield
        finally:
            self._blocks.pop()

    @contextlib.contextmanager
    def if_then(self, cond: Expr) -> Iterator[None]:
        """Open an if statement; only the then-branch receives statements."""
        stmt = If(cond, Block(), Block())
        self.emit(stmt)
        self._blocks.append(stmt.then_body)
        try:
            yield
        finally:
            self._blocks.pop()

    @contextlib.contextmanager
    def orelse(self) -> Iterator[None]:
        """Open the else branch of the most recently emitted if statement."""
        last = self.current_block.stmts[-1] if self.current_block.stmts else None
        if not isinstance(last, If):
            raise ValueError("orelse() must directly follow an if_then() block")
        self._blocks.append(last.else_body)
        try:
            yield
        finally:
            self._blocks.pop()

    # ------------------------------------------------------------------ #
    def build(self, validate: bool = True) -> Function:
        if validate:
            self._function.validate()
        return self._function


# Operator sugar on expressions -------------------------------------------- #
def _make_binop(op: str):
    def method(self: Expr, other):
        return BinOp(op, self, as_expr(other))

    return method


def _make_rbinop(op: str):
    def method(self: Expr, other):
        return BinOp(op, as_expr(other), self)

    return method


# Attach arithmetic/comparison operator overloads to Expr so builder code can
# write ``x[i] * a + 1`` naturally.
Expr.__add__ = _make_binop("+")
Expr.__radd__ = _make_rbinop("+")
Expr.__sub__ = _make_binop("-")
Expr.__rsub__ = _make_rbinop("-")
Expr.__mul__ = _make_binop("*")
Expr.__rmul__ = _make_rbinop("*")
Expr.__truediv__ = _make_binop("/")
Expr.__rtruediv__ = _make_rbinop("/")
Expr.__mod__ = _make_binop("%")
Expr.__lt__ = _make_binop("<")
Expr.__le__ = _make_binop("<=")
Expr.__gt__ = _make_binop(">")
Expr.__ge__ = _make_binop(">=")
Expr.__neg__ = lambda self: UnOp("-", self)  # noqa: E731
