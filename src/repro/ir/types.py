"""Type system of the C-subset IR: scalars and statically-shaped arrays."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Tuple


class ScalarKind(enum.Enum):
    """Primitive element kinds supported by the IR."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"


@dataclass(frozen=True)
class ScalarType:
    """A scalar type with a fixed byte width (defaults follow a 32-bit target)."""

    kind: ScalarKind
    bytes: int = 4

    @property
    def is_numeric(self) -> bool:
        return self.kind in (ScalarKind.INT, ScalarKind.FLOAT)

    @property
    def size_bytes(self) -> int:
        return self.bytes

    def __str__(self) -> str:
        if self.kind is ScalarKind.FLOAT and self.bytes == 8:
            return "double"
        if self.kind is ScalarKind.FLOAT:
            return "float"
        if self.kind is ScalarKind.BOOL:
            return "bool"
        return "int"


@dataclass(frozen=True)
class ArrayType:
    """A statically-shaped, row-major array of scalars.

    Static shapes are a deliberate restriction: the ARGO flow needs to know
    buffer sizes at compile time to compute the memory map and the worst-case
    number of shared-memory accesses.
    """

    element: ScalarType
    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("ArrayType requires a non-empty shape")
        if any(int(d) <= 0 for d in self.shape):
            raise ValueError(f"array dimensions must be positive, got {self.shape}")
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))

    @property
    def num_elements(self) -> int:
        return math.prod(self.shape)

    @property
    def size_bytes(self) -> int:
        return self.num_elements * self.element.size_bytes

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __str__(self) -> str:
        dims = "".join(f"[{d}]" for d in self.shape)
        return f"{self.element}{dims}"


#: Canonical scalar type instances used throughout the tool chain.
INT = ScalarType(ScalarKind.INT, 4)
FLOAT = ScalarType(ScalarKind.FLOAT, 4)
DOUBLE = ScalarType(ScalarKind.FLOAT, 8)
BOOL = ScalarType(ScalarKind.BOOL, 1)

IRType = ScalarType | ArrayType


def is_array(ty: IRType) -> bool:
    """True when ``ty`` is an :class:`ArrayType`."""
    return isinstance(ty, ArrayType)


def is_scalar(ty: IRType) -> bool:
    """True when ``ty`` is a :class:`ScalarType`."""
    return isinstance(ty, ScalarType)
