"""Generic statement/expression rewriting infrastructure.

Transformation passes (:mod:`repro.transforms`) subclass
:class:`StatementTransformer` and override the hooks for the node kinds they
care about; everything else is rebuilt structurally.
"""

from __future__ import annotations

import copy
from typing import Callable

from repro.ir.expressions import ArrayRef, BinOp, Call, Const, Expr, UnOp, Var
from repro.ir.statements import (
    Assign,
    Block,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    While,
)


def map_expression(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Bottom-up rewrite of an expression tree: children first, then ``fn``."""
    if isinstance(expr, (Const, Var)):
        return fn(expr)
    if isinstance(expr, BinOp):
        return fn(BinOp(expr.op, map_expression(expr.left, fn), map_expression(expr.right, fn)))
    if isinstance(expr, UnOp):
        return fn(UnOp(expr.op, map_expression(expr.operand, fn)))
    if isinstance(expr, ArrayRef):
        return fn(
            ArrayRef(
                expr.array,
                tuple(map_expression(i, fn) for i in expr.indices),
                expr.element_type,
            )
        )
    if isinstance(expr, Call):
        return fn(Call(expr.func, tuple(map_expression(a, fn) for a in expr.args), expr.type))
    raise TypeError(f"unknown expression {type(expr).__name__}")


class StatementTransformer:
    """Rebuilds a statement tree, letting subclasses rewrite selected nodes.

    Each ``visit_*`` method receives a freshly rebuilt node (children already
    transformed) and returns either a statement or a list of statements (to
    splice multiple statements in place of one, e.g. loop fission).
    """

    # expression hook ---------------------------------------------------- #
    def visit_expr(self, expr: Expr) -> Expr:
        return expr

    def _rewrite_expr(self, expr: Expr) -> Expr:
        return map_expression(expr, self.visit_expr)

    # statement hooks ---------------------------------------------------- #
    def visit_assign(self, stmt: Assign) -> Stmt | list[Stmt]:
        return stmt

    def visit_if(self, stmt: If) -> Stmt | list[Stmt]:
        return stmt

    def visit_for(self, stmt: For) -> Stmt | list[Stmt]:
        return stmt

    def visit_while(self, stmt: While) -> Stmt | list[Stmt]:
        return stmt

    def visit_return(self, stmt: Return) -> Stmt | list[Stmt]:
        return stmt

    def visit_expr_stmt(self, stmt: ExprStmt) -> Stmt | list[Stmt]:
        return stmt

    # driver -------------------------------------------------------------- #
    def transform_block(self, block: Block) -> Block:
        new_block = Block()
        for stmt in block.stmts:
            result = self.transform_statement(stmt)
            if isinstance(result, list):
                new_block.stmts.extend(result)
            else:
                new_block.stmts.append(result)
        return new_block

    def transform_statement(self, stmt: Stmt) -> Stmt | list[Stmt]:
        if isinstance(stmt, Assign):
            target = stmt.target
            if isinstance(target, ArrayRef):
                target = self._rewrite_expr(target)  # type: ignore[assignment]
            rebuilt = Assign(target, self._rewrite_expr(stmt.value))
            return self.visit_assign(rebuilt)
        if isinstance(stmt, Block):
            return self.transform_block(stmt)
        if isinstance(stmt, If):
            rebuilt = If(
                self._rewrite_expr(stmt.cond),
                self.transform_block(stmt.then_body),
                self.transform_block(stmt.else_body),
            )
            return self.visit_if(rebuilt)
        if isinstance(stmt, For):
            rebuilt = For(
                index=stmt.index,
                lower=self._rewrite_expr(stmt.lower),
                upper=self._rewrite_expr(stmt.upper),
                body=self.transform_block(stmt.body),
                step=stmt.step,
                max_trip_count=stmt.max_trip_count,
                parallelizable=stmt.parallelizable,
            )
            return self.visit_for(rebuilt)
        if isinstance(stmt, While):
            rebuilt = While(
                cond=self._rewrite_expr(stmt.cond),
                body=self.transform_block(stmt.body),
                max_trip_count=stmt.max_trip_count,
            )
            return self.visit_while(rebuilt)
        if isinstance(stmt, Return):
            rebuilt = Return(self._rewrite_expr(stmt.value) if stmt.value is not None else None)
            return self.visit_return(rebuilt)
        if isinstance(stmt, ExprStmt):
            rebuilt = ExprStmt(self._rewrite_expr(stmt.expr))
            return self.visit_expr_stmt(rebuilt)
        raise TypeError(f"unknown statement {type(stmt).__name__}")


def clone_block(block: Block) -> Block:
    """Deep copy of a statement block (fresh statement identities)."""
    return copy.deepcopy(block)
