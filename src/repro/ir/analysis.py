"""Static analyses on the IR: reads/writes, memory access counting, footprints.

These analyses feed three consumers:

* the HTG extractor, which needs per-task read/write sets to build data
  dependences and per-task worst-case shared-resource access counts
  (paper Section II-B: task nodes "include additional information on possible
  shared resource accesses (list of shared resources, and worst case number
  of accesses)");
* the WCET code-level analysis, which charges memory latencies per access;
* the scratchpad allocator, which ranks arrays by access frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.expressions import ArrayRef, Expr
from repro.ir.program import Function, Storage
from repro.ir.statements import Assign, Block, ExprStmt, For, If, Return, Stmt, While
from repro.ir.loops import loop_trip_count


@dataclass
class AccessSummary:
    """Worst-case counts of array accesses performed by a statement subtree.

    ``reads``/``writes`` map array names to worst-case access counts; scalar
    variables are assumed to live in registers and are not counted.
    """

    reads: dict[str, int] = field(default_factory=dict)
    writes: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "AccessSummary") -> None:
        for name, count in other.reads.items():
            self.reads[name] = self.reads.get(name, 0) + count
        for name, count in other.writes.items():
            self.writes[name] = self.writes.get(name, 0) + count

    def scaled(self, factor: int) -> "AccessSummary":
        return AccessSummary(
            reads={k: v * factor for k, v in self.reads.items()},
            writes={k: v * factor for k, v in self.writes.items()},
        )

    def maxed(self, other: "AccessSummary") -> "AccessSummary":
        """Element-wise max of the two summaries (used for if branches)."""
        result = AccessSummary(dict(self.reads), dict(self.writes))
        for name, count in other.reads.items():
            result.reads[name] = max(result.reads.get(name, 0), count)
        for name, count in other.writes.items():
            result.writes[name] = max(result.writes.get(name, 0), count)
        return result

    @property
    def total_reads(self) -> int:
        return sum(self.reads.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes.values())

    @property
    def total(self) -> int:
        return self.total_reads + self.total_writes

    def touched_arrays(self) -> set[str]:
        return set(self.reads) | set(self.writes)


def _expr_array_reads(expr: Expr) -> dict[str, int]:
    counts: dict[str, int] = {}
    for ref in expr.array_reads():
        counts[ref.array] = counts.get(ref.array, 0) + 1
    return counts


def access_summary(stmt: Stmt) -> AccessSummary:
    """Worst-case array access counts for the subtree rooted at ``stmt``.

    Loops multiply their body counts by the worst-case trip count; the two
    arms of an ``if`` contribute the element-wise maximum (the worst case).
    """
    if isinstance(stmt, Assign):
        summary = AccessSummary()
        for expr in stmt.expressions():
            for name, count in _expr_array_reads(expr).items():
                summary.reads[name] = summary.reads.get(name, 0) + count
        if isinstance(stmt.target, ArrayRef):
            summary.writes[stmt.target.array] = summary.writes.get(stmt.target.array, 0) + 1
        return summary
    if isinstance(stmt, (Return, ExprStmt)):
        summary = AccessSummary()
        for expr in stmt.expressions():
            for name, count in _expr_array_reads(expr).items():
                summary.reads[name] = summary.reads.get(name, 0) + count
        return summary
    if isinstance(stmt, Block):
        summary = AccessSummary()
        for child in stmt.stmts:
            summary.merge(access_summary(child))
        return summary
    if isinstance(stmt, If):
        summary = AccessSummary()
        for name, count in _expr_array_reads(stmt.cond).items():
            summary.reads[name] = summary.reads.get(name, 0) + count
        branch = access_summary(stmt.then_body).maxed(access_summary(stmt.else_body))
        summary.merge(branch)
        return summary
    if isinstance(stmt, For):
        trip = loop_trip_count(stmt)
        summary = AccessSummary()
        for expr in stmt.expressions():
            for name, count in _expr_array_reads(expr).items():
                summary.reads[name] = summary.reads.get(name, 0) + count
        summary.merge(access_summary(stmt.body).scaled(trip))
        return summary
    if isinstance(stmt, While):
        summary = AccessSummary()
        for name, count in _expr_array_reads(stmt.cond).items():
            summary.reads[name] = summary.reads.get(name, 0) + count * (stmt.max_trip_count + 1)
        summary.merge(access_summary(stmt.body).scaled(stmt.max_trip_count))
        return summary
    raise TypeError(f"unsupported statement {type(stmt).__name__}")


def read_write_sets(stmt: Stmt) -> tuple[set[str], set[str]]:
    """Names of variables (scalars and arrays) read and written by ``stmt``."""
    reads: set[str] = set()
    writes: set[str] = set()
    for node in stmt.walk():
        reads |= node.variables_read()
        writes |= node.variables_written()
    return reads, writes


def shared_access_summary(function: Function, stmt: Stmt) -> AccessSummary:
    """Like :func:`access_summary` but restricted to shared-storage arrays.

    This is the quantity the system-level WCET analysis cares about: accesses
    to core-private scratchpads or locals can never interfere with other
    cores.
    """
    full = access_summary(stmt)
    shared_names = {
        d.name
        for d in function.all_decls()
        if d.is_array and d.storage in (Storage.SHARED, Storage.INPUT, Storage.OUTPUT)
    }
    return AccessSummary(
        reads={k: v for k, v in full.reads.items() if k in shared_names},
        writes={k: v for k, v in full.writes.items() if k in shared_names},
    )


def storage_of(function: Function, name: str) -> Storage:
    """Storage class of variable ``name`` (LOCAL for loop indices/temps)."""
    decl = function.lookup(name)
    if decl is None:
        return Storage.LOCAL
    return decl.storage


def array_footprints(function: Function) -> dict[str, int]:
    """Map each declared array to its size in bytes."""
    return {d.name: d.size_bytes for d in function.arrays()}


def operation_histogram(stmt: Stmt) -> dict[str, int]:
    """Worst-case scalar operation histogram for the subtree at ``stmt``.

    Like :func:`access_summary`, loops scale by trip count and conditionals
    take the per-operator maximum across arms.
    """
    if isinstance(stmt, (Assign, Return, ExprStmt)):
        counts: dict[str, int] = {}
        for expr in stmt.expressions():
            for op, n in expr.operation_count().items():
                counts[op] = counts.get(op, 0) + n
        return counts
    if isinstance(stmt, Block):
        counts = {}
        for child in stmt.stmts:
            for op, n in operation_histogram(child).items():
                counts[op] = counts.get(op, 0) + n
        return counts
    if isinstance(stmt, If):
        counts = dict(stmt.cond.operation_count())
        then_c = operation_histogram(stmt.then_body)
        else_c = operation_histogram(stmt.else_body)
        merged: dict[str, int] = {}
        for op in set(then_c) | set(else_c):
            merged[op] = max(then_c.get(op, 0), else_c.get(op, 0))
        for op, n in merged.items():
            counts[op] = counts.get(op, 0) + n
        return counts
    if isinstance(stmt, For):
        trip = loop_trip_count(stmt)
        counts = {}
        for expr in stmt.expressions():
            for op, n in expr.operation_count().items():
                counts[op] = counts.get(op, 0) + n
        for op, n in operation_histogram(stmt.body).items():
            counts[op] = counts.get(op, 0) + n * trip
        return counts
    if isinstance(stmt, While):
        counts = {
            op: n * (stmt.max_trip_count + 1)
            for op, n in stmt.cond.operation_count().items()
        }
        for op, n in operation_histogram(stmt.body).items():
            counts[op] = counts.get(op, 0) + n * stmt.max_trip_count
        return counts
    raise TypeError(f"unsupported statement {type(stmt).__name__}")
