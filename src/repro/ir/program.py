"""Top-level IR containers: variable declarations, functions, programs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.statements import Block
from repro.ir.types import IRType, is_array


class Storage(enum.Enum):
    """Where a variable lives on the target platform.

    The scratchpad-allocation transformation moves arrays from ``SHARED`` to
    ``SCRATCHPAD``; the WCET memory model charges different access latencies
    per storage class, and the system-level analysis only counts ``SHARED``
    accesses as interference-prone.
    """

    LOCAL = "local"          # scalar register / stack data, private to a core
    SCRATCHPAD = "scratchpad"  # core-private scratchpad memory
    SHARED = "shared"        # shared on-chip or external memory
    INPUT = "input"          # function input (read-only shared buffer)
    OUTPUT = "output"        # function output (write shared buffer)


@dataclass
class VarDecl:
    """A declared variable with its type and storage class."""

    name: str
    type: IRType
    storage: Storage = Storage.LOCAL
    #: Optional initial value (scalar) used by the interpreter.
    initial: float | int | None = None

    @property
    def is_array(self) -> bool:
        return is_array(self.type)

    @property
    def size_bytes(self) -> int:
        return self.type.size_bytes

    def __str__(self) -> str:
        return f"{self.storage.value} {self.type} {self.name}"


@dataclass
class Function:
    """A single-entry, single-exit IR function.

    ``params`` are treated as inputs, ``decls`` as local/shared state, and the
    body is a structured statement block.
    """

    name: str
    params: list[VarDecl] = field(default_factory=list)
    decls: list[VarDecl] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    #: Free-form annotations carried through the flow (e.g. originating block).
    annotations: dict[str, object] = field(default_factory=dict)

    def all_decls(self) -> list[VarDecl]:
        return list(self.params) + list(self.decls)

    def lookup(self, name: str) -> VarDecl | None:
        for decl in self.all_decls():
            if decl.name == name:
                return decl
        return None

    def declare(self, decl: VarDecl) -> VarDecl:
        existing = self.lookup(decl.name)
        if existing is not None:
            if existing.type != decl.type:
                raise ValueError(
                    f"conflicting declaration for {decl.name!r}: "
                    f"{existing.type} vs {decl.type}"
                )
            return existing
        self.decls.append(decl)
        return decl

    def arrays(self) -> list[VarDecl]:
        return [d for d in self.all_decls() if d.is_array]

    def statements(self):
        """Iterate over every statement in the body (pre-order)."""
        return self.body.walk()

    def validate(self) -> None:
        """Check that every referenced variable is declared.

        Raises ``ValueError`` listing the undeclared names otherwise.  The
        loop index variables of ``for`` statements are declared implicitly.
        """
        declared = {d.name for d in self.all_decls()}
        from repro.ir.statements import For

        for stmt in self.body.walk():
            if isinstance(stmt, For):
                declared.add(stmt.index.name)
        missing: set[str] = set()
        for stmt in self.body.walk():
            missing |= stmt.variables_read() - declared
            missing |= stmt.variables_written() - declared
        if missing:
            raise ValueError(
                f"function {self.name!r} references undeclared variables: "
                f"{sorted(missing)}"
            )


@dataclass
class Program:
    """A collection of functions plus program-wide shared declarations."""

    name: str
    functions: list[Function] = field(default_factory=list)

    def add(self, function: Function) -> Function:
        if any(f.name == function.name for f in self.functions):
            raise ValueError(f"duplicate function name {function.name!r}")
        self.functions.append(function)
        return function

    def lookup(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function named {name!r} in program {self.name!r}")

    @property
    def entry(self) -> Function:
        """The entry function: ``main`` if present, otherwise the first one."""
        for function in self.functions:
            if function.name == "main":
                return function
        if not self.functions:
            raise ValueError(f"program {self.name!r} has no functions")
        return self.functions[0]

    def total_shared_bytes(self) -> int:
        """Total footprint of shared arrays across all functions."""
        total = 0
        for function in self.functions:
            for decl in function.all_decls():
                if decl.storage in (Storage.SHARED, Storage.INPUT, Storage.OUTPUT):
                    total += decl.size_bytes
        return total
