"""Control-flow graph construction from the structured IR.

The CFG is consumed by the IPET-based WCET engine (:mod:`repro.wcet.ipet`),
which formulates the worst-case path search as a linear program over basic
block execution counts, exactly like binary-level analyzers do.  Because the
IR is structured the CFG is reducible by construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.ir.expressions import Expr
from repro.ir.program import Function
from repro.ir.statements import (
    Assign,
    Block,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    While,
)


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of simple statements."""

    bid: int
    statements: list[Stmt] = field(default_factory=list)
    #: Condition expressions evaluated at the end of this block (loop/branch
    #: headers); used for cost accounting.
    conditions: list[Expr] = field(default_factory=list)
    label: str = ""

    def __hash__(self) -> int:
        return hash(self.bid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BasicBlock) and other.bid == self.bid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BB{self.bid}({self.label})"


#: The only edge kinds the IPET formulation and the dataflow analyses
#: understand; :meth:`_CFGBuilder.edge` rejects anything else.
EDGE_KINDS = ("fallthrough", "taken", "back", "exit")


@dataclass
class CFGEdge:
    """A directed control-flow edge."""

    src: BasicBlock
    dst: BasicBlock
    kind: str = "fallthrough"  # one of EDGE_KINDS

    @property
    def key(self) -> tuple[int, int, str]:
        """Stable identity of the edge: ``(src bid, dst bid, kind)``.

        Unlike ``id(edge)`` this survives CFG copying/caching, so it is what
        the IPET LP and the flow-fact format key edges by.
        """
        return (self.src.bid, self.dst.bid, self.kind)


@dataclass
class ControlFlowGraph:
    """Per-function control-flow graph with loop-bound annotations."""

    function_name: str
    blocks: list[BasicBlock] = field(default_factory=list)
    edges: list[CFGEdge] = field(default_factory=list)
    entry: BasicBlock | None = None
    exit: BasicBlock | None = None
    #: Map of loop-header block id -> worst-case trip count.  Headers whose
    #: bound could not be derived (only possible when the CFG was built with
    #: ``allow_unbounded=True``) are absent here but present in
    #: :attr:`back_edges` / :attr:`loop_stmts`.
    loop_bounds: dict[int, int] = field(default_factory=dict)
    #: Map of loop-header block id -> back-edge source block id.
    back_edges: dict[int, int] = field(default_factory=dict)
    #: Map of loop-header block id -> the ``For``/``While`` statement it was
    #: lowered from (used by the dataflow analyses to model the loop index
    #: and by the flow-fact derivation to re-derive bounds).
    loop_stmts: dict[int, Stmt] = field(default_factory=dict)

    def successors(self, block: BasicBlock) -> list[BasicBlock]:
        return [e.dst for e in self.edges if e.src is block]

    def predecessors(self, block: BasicBlock) -> list[BasicBlock]:
        return [e.src for e in self.edges if e.dst is block]

    def edge_pairs(self) -> list[tuple[int, int]]:
        return [(e.src.bid, e.dst.bid) for e in self.edges]

    def block_by_id(self, bid: int) -> BasicBlock:
        for block in self.blocks:
            if block.bid == bid:
                return block
        raise KeyError(f"no basic block with id {bid}")

    def reachable_blocks(self) -> set[int]:
        """Block ids reachable from the entry along CFG edges."""
        if self.entry is None:
            return set()
        succs: dict[int, list[int]] = {}
        for edge in self.edges:
            succs.setdefault(edge.src.bid, []).append(edge.dst.bid)
        seen = {self.entry.bid}
        stack = [self.entry.bid]
        while stack:
            for nxt in succs.get(stack.pop(), ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen


class _CFGBuilder:
    def __init__(self, name: str, allow_unbounded: bool = False) -> None:
        self.cfg = ControlFlowGraph(name)
        self._ids = itertools.count(0)
        #: When set, loops without a derivable trip count are recorded in
        #: ``loop_stmts``/``back_edges`` but omitted from ``loop_bounds``
        #: instead of raising -- the value-range flow-fact derivation may
        #: still bound them later.
        self._allow_unbounded = allow_unbounded

    def new_block(self, label: str = "") -> BasicBlock:
        block = BasicBlock(next(self._ids), label=label)
        self.cfg.blocks.append(block)
        return block

    def edge(self, src: BasicBlock, dst: BasicBlock, kind: str = "fallthrough") -> None:
        if kind not in EDGE_KINDS:
            raise ValueError(
                f"unknown CFG edge kind {kind!r} for {src!r} -> {dst!r}; "
                f"allowed kinds: {', '.join(EDGE_KINDS)}"
            )
        self.cfg.edges.append(CFGEdge(src, dst, kind))

    def build(self, function: Function) -> ControlFlowGraph:
        from repro.ir.loops import loop_trip_count

        entry = self.new_block("entry")
        self.cfg.entry = entry
        exit_block = self.new_block("exit")
        self.cfg.exit = exit_block

        current = self._lower_block(function.body, entry, loop_trip_count)
        self.edge(current, exit_block, "exit")
        return self.cfg

    def _lower_block(self, block: Block, current: BasicBlock, trip_count_fn) -> BasicBlock:
        for stmt in block.stmts:
            current = self._lower_stmt(stmt, current, trip_count_fn)
        return current

    def _lower_stmt(self, stmt: Stmt, current: BasicBlock, trip_count_fn) -> BasicBlock:
        if isinstance(stmt, (Assign, Return, ExprStmt)):
            current.statements.append(stmt)
            return current
        if isinstance(stmt, Block):
            return self._lower_block(stmt, current, trip_count_fn)
        if isinstance(stmt, If):
            current.conditions.append(stmt.cond)
            then_entry = self.new_block("then")
            else_entry = self.new_block("else")
            join = self.new_block("join")
            self.edge(current, then_entry, "taken")
            self.edge(current, else_entry, "fallthrough")
            then_exit = self._lower_block(stmt.then_body, then_entry, trip_count_fn)
            else_exit = self._lower_block(stmt.else_body, else_entry, trip_count_fn)
            self.edge(then_exit, join)
            self.edge(else_exit, join)
            return join
        if isinstance(stmt, (For, While)):
            header = self.new_block("loop_header")
            body_entry = self.new_block("loop_body")
            after = self.new_block("loop_exit")
            if isinstance(stmt, For):
                header.conditions.append(stmt.upper)
            else:
                header.conditions.append(stmt.cond)
            self.edge(current, header)
            self.edge(header, body_entry, "taken")
            self.edge(header, after, "exit")
            body_exit = self._lower_block(stmt.body, body_entry, trip_count_fn)
            self.edge(body_exit, header, "back")
            if self._allow_unbounded:
                from repro.ir.loops import LoopBoundError

                try:
                    self.cfg.loop_bounds[header.bid] = trip_count_fn(stmt)
                except LoopBoundError:
                    pass
            else:
                self.cfg.loop_bounds[header.bid] = trip_count_fn(stmt)
            self.cfg.back_edges[header.bid] = body_exit.bid
            self.cfg.loop_stmts[header.bid] = stmt
            return after
        raise TypeError(f"unsupported statement {type(stmt).__name__}")


def build_cfg(function: Function, allow_unbounded: bool = False) -> ControlFlowGraph:
    """Build the control-flow graph of ``function``.

    With ``allow_unbounded=True`` loops whose trip count cannot be derived
    from their annotations do not raise :class:`repro.ir.loops.LoopBoundError`;
    their headers are simply missing from :attr:`ControlFlowGraph.loop_bounds`
    (callers such as the flow-fact derivation may bound them by other means).
    """
    return _CFGBuilder(function.name, allow_unbounded=allow_unbounded).build(function)
