"""Expression nodes of the C-subset IR.

Expressions are immutable trees.  Each node knows how to report the scalar
operations it performs and the variables it reads, which is the information
the WCET hardware model and the HTG dependence analysis consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.ir.types import BOOL, FLOAT, INT, IRType, ScalarKind, ScalarType

#: Binary operators supported by the IR, grouped by cost class.
ARITH_OPS = ("+", "-", "*", "/", "%", "min", "max")
COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")
LOGIC_OPS = ("&&", "||")
BINARY_OPS = ARITH_OPS + COMPARE_OPS + LOGIC_OPS

UNARY_OPS = ("-", "!", "abs", "sqrt", "exp", "log", "sin", "cos", "atan2", "floor")

#: Call intrinsics understood by the interpreter and the timing model.
INTRINSICS = (
    "min",
    "max",
    "abs",
    "sqrt",
    "exp",
    "log",
    "sin",
    "cos",
    "tan",
    "atan2",
    "floor",
    "ceil",
    "pow",
    "hypot",
    "clamp",
)


class Expr:
    """Base class for all IR expressions."""

    type: IRType

    def children(self) -> Sequence["Expr"]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def variables_read(self) -> set[str]:
        """Names of scalar variables and arrays read by this expression."""
        names: set[str] = set()
        for node in self.walk():
            if isinstance(node, Var):
                names.add(node.name)
            elif isinstance(node, ArrayRef):
                names.add(node.array)
        return names

    def operation_count(self) -> dict[str, int]:
        """Histogram of scalar operations performed by this expression."""
        counts: dict[str, int] = {}
        for node in self.walk():
            if isinstance(node, BinOp):
                counts[node.op] = counts.get(node.op, 0) + 1
            elif isinstance(node, UnOp):
                counts[node.op] = counts.get(node.op, 0) + 1
            elif isinstance(node, Call):
                counts[node.func] = counts.get(node.func, 0) + 1
        return counts

    def array_reads(self) -> list["ArrayRef"]:
        """All array element reads occurring in this expression."""
        return [node for node in self.walk() if isinstance(node, ArrayRef)]


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant."""

    value: float | int | bool
    type: ScalarType = field(default=FLOAT)

    def __post_init__(self) -> None:
        if isinstance(self.value, bool):
            object.__setattr__(self, "type", BOOL)
        elif isinstance(self.value, int) and self.type == FLOAT:
            # Integer literals default to INT unless a float type was forced
            # by constructing with an explicit non-default scalar type.
            object.__setattr__(self, "type", INT)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A reference to a scalar variable (or a whole array when passed around)."""

    name: str
    type: IRType = field(default=FLOAT)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    @property
    def type(self) -> IRType:  # type: ignore[override]
        if self.op in COMPARE_OPS or self.op in LOGIC_OPS:
            return BOOL
        left_t = self.left.type
        right_t = self.right.type
        if isinstance(left_t, ScalarType) and isinstance(right_t, ScalarType):
            if ScalarKind.FLOAT in (left_t.kind, right_t.kind):
                return FLOAT
            return INT
        return FLOAT

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation ``op operand``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    @property
    def type(self) -> IRType:  # type: ignore[override]
        if self.op == "!":
            return BOOL
        return self.operand.type

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class ArrayRef(Expr):
    """An element access ``array[idx0][idx1]...`` into a named array."""

    array: str
    indices: tuple[Expr, ...]
    element_type: ScalarType = field(default=FLOAT)

    def __post_init__(self) -> None:
        if not self.indices:
            raise ValueError("ArrayRef requires at least one index expression")
        object.__setattr__(self, "indices", tuple(self.indices))

    @property
    def type(self) -> IRType:  # type: ignore[override]
        return self.element_type

    def children(self) -> Sequence[Expr]:
        return self.indices

    def __str__(self) -> str:
        idx = "".join(f"[{i}]" for i in self.indices)
        return f"{self.array}{idx}"


@dataclass(frozen=True)
class Call(Expr):
    """A call to a pure intrinsic function (sqrt, sin, min, ...)."""

    func: str
    args: tuple[Expr, ...]
    type: ScalarType = field(default=FLOAT)

    def __post_init__(self) -> None:
        if self.func not in INTRINSICS:
            raise ValueError(f"unknown intrinsic {self.func!r}; known: {INTRINSICS}")
        object.__setattr__(self, "args", tuple(self.args))

    def children(self) -> Sequence[Expr]:
        return self.args

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


def const(value: float | int | bool) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value)


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Return ``expr`` with scalar variable reads replaced per ``mapping``.

    Array names are left untouched (only whole-variable reads are replaced);
    index expressions are rewritten recursively.
    """
    if isinstance(expr, Var) and expr.name in mapping:
        return mapping[expr.name]
    if isinstance(expr, Const) or isinstance(expr, Var):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, substitute(expr.operand, mapping))
    if isinstance(expr, ArrayRef):
        return ArrayRef(
            expr.array,
            tuple(substitute(i, mapping) for i in expr.indices),
            expr.element_type,
        )
    if isinstance(expr, Call):
        return Call(expr.func, tuple(substitute(a, mapping) for a in expr.args), expr.type)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def try_evaluate_constant(expr: Expr) -> float | int | bool | None:
    """Evaluate ``expr`` when it only involves constants, else return None."""
    import math

    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, BinOp):
        left = try_evaluate_constant(expr.left)
        right = try_evaluate_constant(expr.right)
        if left is None or right is None:
            return None
        try:
            return _apply_binop(expr.op, left, right)
        except (ValueError, OverflowError, ZeroDivisionError):
            return None
    if isinstance(expr, UnOp):
        val = try_evaluate_constant(expr.operand)
        if val is None:
            return None
        try:
            return _apply_unop(expr.op, val)
        except (ValueError, OverflowError, ZeroDivisionError):
            return None
    if isinstance(expr, Call):
        args = [try_evaluate_constant(a) for a in expr.args]
        if any(a is None for a in args):
            return None
        try:
            return _apply_intrinsic(expr.func, args)  # type: ignore[arg-type]
        except (ValueError, OverflowError, ZeroDivisionError):
            return None
    del math
    return None


def _apply_binop(op: str, left, right):
    import math

    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ZeroDivisionError("division by zero in constant expression")
        if isinstance(left, int) and isinstance(right, int):
            return int(math.trunc(left / right))
        return left / right
    if op == "%":
        return left % right
    if op == "min":
        return min(left, right)
    if op == "max":
        return max(left, right)
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "&&":
        return bool(left) and bool(right)
    if op == "||":
        return bool(left) or bool(right)
    raise ValueError(f"unknown binary operator {op!r}")


def _apply_unop(op: str, value):
    import math

    if op == "-":
        return -value
    if op == "!":
        return not bool(value)
    if op == "abs":
        return abs(value)
    if op == "sqrt":
        return math.sqrt(value)
    if op == "exp":
        return math.exp(value)
    if op == "log":
        return math.log(value)
    if op == "sin":
        return math.sin(value)
    if op == "cos":
        return math.cos(value)
    if op == "floor":
        return math.floor(value)
    raise ValueError(f"unknown unary operator {op!r}")


def _apply_intrinsic(func: str, args):
    import math

    if func == "min":
        return min(args)
    if func == "max":
        return max(args)
    if func == "abs":
        return abs(args[0])
    if func == "sqrt":
        return math.sqrt(args[0])
    if func == "exp":
        return math.exp(args[0])
    if func == "log":
        return math.log(args[0])
    if func == "sin":
        return math.sin(args[0])
    if func == "cos":
        return math.cos(args[0])
    if func == "tan":
        return math.tan(args[0])
    if func == "atan2":
        return math.atan2(args[0], args[1])
    if func == "floor":
        return math.floor(args[0])
    if func == "ceil":
        return math.ceil(args[0])
    if func == "pow":
        return math.pow(args[0], args[1])
    if func == "hypot":
        return math.hypot(args[0], args[1])
    if func == "clamp":
        lo, hi = args[1], args[2]
        return min(max(args[0], lo), hi)
    raise ValueError(f"unknown intrinsic {func!r}")
