"""Reference interpreter for the IR.

The interpreter serves three purposes in the reproduction:

* functional validation -- the model-level simulation of a dataflow diagram
  and the execution of its generated IR must agree (tested);
* average-case execution statistics -- it counts the scalar operations and
  array accesses actually performed on a given input, which the baseline
  (average-case-oriented) scheduler and the "gap between worst-case and
  average-case" experiments use;
* trace generation for the discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.ir.expressions import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    UnOp,
    Var,
    _apply_binop,
    _apply_intrinsic,
    _apply_unop,
)
from repro.ir.program import Function
from repro.ir.statements import (
    Assign,
    Block,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    While,
)
from repro.ir.types import ArrayType, ScalarKind, ScalarType


class InterpreterError(RuntimeError):
    """Raised on runtime errors (unbound variables, bound violations...)."""


@dataclass
class ExecutionStats:
    """Dynamic counts collected while interpreting a function."""

    operations: dict[str, int] = field(default_factory=dict)
    array_reads: dict[str, int] = field(default_factory=dict)
    array_writes: dict[str, int] = field(default_factory=dict)
    loop_iterations: int = 0
    statements_executed: int = 0

    def record_op(self, op: str) -> None:
        self.operations[op] = self.operations.get(op, 0) + 1

    def record_read(self, array: str) -> None:
        self.array_reads[array] = self.array_reads.get(array, 0) + 1

    def record_write(self, array: str) -> None:
        self.array_writes[array] = self.array_writes.get(array, 0) + 1

    @property
    def total_operations(self) -> int:
        return sum(self.operations.values())

    @property
    def total_array_accesses(self) -> int:
        return sum(self.array_reads.values()) + sum(self.array_writes.values())


@dataclass
class ExecutionResult:
    """Final environment and statistics after interpreting a function."""

    env: dict[str, Any]
    stats: ExecutionStats
    return_value: Any = None

    def array(self, name: str) -> np.ndarray:
        value = self.env[name]
        if not isinstance(value, np.ndarray):
            raise KeyError(f"{name!r} is not an array in the final environment")
        return value

    def scalar(self, name: str) -> float:
        value = self.env[name]
        if isinstance(value, np.ndarray):
            raise KeyError(f"{name!r} is an array, not a scalar")
        return value


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class Interpreter:
    """Executes IR functions over concrete (numpy-backed) environments."""

    def __init__(self, max_loop_violation: bool = True) -> None:
        #: When True, executing more iterations than a loop's declared
        #: ``max_trip_count`` raises; this is how tests assert bound safety.
        self.check_loop_bounds = max_loop_violation

    # ------------------------------------------------------------------ #
    def run(self, function: Function, inputs: Mapping[str, Any] | None = None) -> ExecutionResult:
        """Interpret ``function`` with the given input bindings."""
        env = self._initial_environment(function, dict(inputs or {}))
        stats = ExecutionStats()
        return_value = None
        try:
            self._exec_block(function.body, env, stats)
        except _ReturnSignal as signal:
            return_value = signal.value
        return ExecutionResult(env=env, stats=stats, return_value=return_value)

    def run_statements(self, block: Block, env: dict[str, Any]) -> ExecutionStats:
        """Execute a statement block against an existing environment.

        Used by the multi-core simulator, which executes one HTG task region
        at a time while sharing a single global memory environment.
        """
        stats = ExecutionStats()
        try:
            self._exec_block(block, env, stats)
        except _ReturnSignal:
            pass
        return stats

    def initial_environment(self, function: Function, inputs: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Public wrapper building the starting environment of a function."""
        return self._initial_environment(function, dict(inputs or {}))

    # ------------------------------------------------------------------ #
    def _initial_environment(self, function: Function, inputs: dict[str, Any]) -> dict[str, Any]:
        env: dict[str, Any] = {}
        for decl in function.all_decls():
            if decl.name in inputs:
                value = inputs.pop(decl.name)
                env[decl.name] = self._coerce(decl.type, value)
            elif isinstance(decl.type, ArrayType):
                dtype = np.float64 if decl.type.element.kind is ScalarKind.FLOAT else np.int64
                env[decl.name] = np.zeros(decl.type.shape, dtype=dtype)
            else:
                env[decl.name] = decl.initial if decl.initial is not None else 0
        if inputs:
            raise InterpreterError(
                f"inputs {sorted(inputs)} do not match any declaration of "
                f"function {function.name!r}"
            )
        return env

    @staticmethod
    def _coerce(ty, value: Any) -> Any:
        if isinstance(ty, ArrayType):
            arr = np.asarray(value, dtype=np.float64 if ty.element.kind is ScalarKind.FLOAT else np.int64)
            if arr.shape != ty.shape:
                arr = np.reshape(arr, ty.shape)
            return arr.copy()
        if isinstance(ty, ScalarType) and ty.kind is ScalarKind.INT:
            return int(value)
        if isinstance(ty, ScalarType) and ty.kind is ScalarKind.BOOL:
            return bool(value)
        return float(value)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _exec_block(self, block: Block, env: dict[str, Any], stats: ExecutionStats) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env, stats)

    def _exec_stmt(self, stmt: Stmt, env: dict[str, Any], stats: ExecutionStats) -> None:
        stats.statements_executed += 1
        if isinstance(stmt, Assign):
            value = self._eval(stmt.value, env, stats)
            self._store(stmt.target, value, env, stats)
            return
        if isinstance(stmt, Block):
            self._exec_block(stmt, env, stats)
            return
        if isinstance(stmt, If):
            cond = self._eval(stmt.cond, env, stats)
            if cond:
                self._exec_block(stmt.then_body, env, stats)
            else:
                self._exec_block(stmt.else_body, env, stats)
            return
        if isinstance(stmt, For):
            lower = int(self._eval(stmt.lower, env, stats))
            upper = int(self._eval(stmt.upper, env, stats))
            iterations = 0
            index = lower
            while (index < upper) if stmt.step > 0 else (index > upper):
                if self.check_loop_bounds and stmt.max_trip_count is not None:
                    if iterations >= stmt.max_trip_count:
                        raise InterpreterError(
                            f"loop over {stmt.index.name!r} exceeded its declared "
                            f"bound of {stmt.max_trip_count} iterations"
                        )
                env[stmt.index.name] = index
                self._exec_block(stmt.body, env, stats)
                index += stmt.step
                iterations += 1
                stats.loop_iterations += 1
            return
        if isinstance(stmt, While):
            iterations = 0
            while self._eval(stmt.cond, env, stats):
                if iterations >= stmt.max_trip_count:
                    if self.check_loop_bounds:
                        raise InterpreterError(
                            "while loop exceeded its declared bound of "
                            f"{stmt.max_trip_count} iterations"
                        )
                    break
                self._exec_block(stmt.body, env, stats)
                iterations += 1
                stats.loop_iterations += 1
            return
        if isinstance(stmt, Return):
            value = self._eval(stmt.value, env, stats) if stmt.value is not None else None
            raise _ReturnSignal(value)
        if isinstance(stmt, ExprStmt):
            self._eval(stmt.expr, env, stats)
            return
        raise InterpreterError(f"unsupported statement {type(stmt).__name__}")

    def _store(self, target: Var | ArrayRef, value: Any, env: dict[str, Any], stats: ExecutionStats) -> None:
        if isinstance(target, Var):
            env[target.name] = value
            return
        array = env.get(target.array)
        if not isinstance(array, np.ndarray):
            raise InterpreterError(f"assignment to unknown array {target.array!r}")
        indices = tuple(int(self._eval(i, env, stats)) for i in target.indices)
        try:
            array[indices] = value
        except IndexError as exc:
            raise InterpreterError(
                f"out-of-bounds write {target.array}{list(indices)} "
                f"(shape {array.shape})"
            ) from exc
        stats.record_write(target.array)

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def _eval(self, expr: Expr, env: dict[str, Any], stats: ExecutionStats) -> Any:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in env:
                raise InterpreterError(f"unbound variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, env, stats)
            right = self._eval(expr.right, env, stats)
            stats.record_op(expr.op)
            try:
                return _apply_binop(expr.op, left, right)
            except ZeroDivisionError as exc:
                raise InterpreterError(str(exc)) from exc
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand, env, stats)
            stats.record_op(expr.op)
            try:
                return _apply_unop(expr.op, value)
            except ValueError as exc:
                raise InterpreterError(str(exc)) from exc
        if isinstance(expr, ArrayRef):
            array = env.get(expr.array)
            if not isinstance(array, np.ndarray):
                raise InterpreterError(f"read from unknown array {expr.array!r}")
            indices = tuple(int(self._eval(i, env, stats)) for i in expr.indices)
            try:
                value = array[indices]
            except IndexError as exc:
                raise InterpreterError(
                    f"out-of-bounds read {expr.array}{list(indices)} "
                    f"(shape {array.shape})"
                ) from exc
            stats.record_read(expr.array)
            return float(value) if array.dtype.kind == "f" else int(value)
        if isinstance(expr, Call):
            args = [self._eval(a, env, stats) for a in expr.args]
            stats.record_op(expr.func)
            try:
                return _apply_intrinsic(expr.func, args)
            except (ValueError, OverflowError) as exc:
                raise InterpreterError(str(exc)) from exc
        raise InterpreterError(f"unsupported expression {type(expr).__name__}")


def run_function(function: Function, inputs: Mapping[str, Any] | None = None) -> ExecutionResult:
    """Convenience wrapper: interpret ``function`` with default settings."""
    return Interpreter().run(function, inputs)
