"""Loop information and loop-bound analysis on the structured IR.

Every loop must have a statically-known worst-case trip count; ``for`` loops
with constant (or constant-foldable) bounds get it computed automatically,
otherwise the ``max_trip_count`` annotation must be present.  This mirrors
the flow-fact requirements of industrial WCET analyzers (aiT) that the ARGO
flow builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ir.expressions import try_evaluate_constant
from repro.ir.statements import Block, For, Stmt, While


class LoopBoundError(ValueError):
    """Raised when a loop's worst-case trip count cannot be determined."""


def loop_trip_count(loop: For | While) -> int:
    """Worst-case number of iterations of ``loop``.

    For counted loops with constant bounds the exact trip count
    ``ceil((upper - lower) / step)`` is returned (clamped to >= 0).  When the
    bounds are not compile-time constants the ``max_trip_count`` annotation is
    used; if it is missing a :class:`LoopBoundError` is raised.
    """
    if isinstance(loop, While):
        return loop.max_trip_count
    lower = try_evaluate_constant(loop.lower)
    upper = try_evaluate_constant(loop.upper)
    if lower is not None and upper is not None:
        span = float(upper) - float(lower)
        if span <= 0:
            exact = 0
        else:
            exact = int(math.ceil(span / abs(loop.step)))
        if loop.max_trip_count is not None:
            return min(exact, loop.max_trip_count)
        return exact
    if loop.max_trip_count is not None:
        return loop.max_trip_count
    raise LoopBoundError(
        f"loop over {loop.index.name!r} has non-constant bounds and no "
        "max_trip_count annotation"
    )


@dataclass
class LoopInfo:
    """A loop together with its nesting context."""

    loop: For | While
    depth: int
    trip_count: int
    parent: "LoopInfo | None" = None
    children: list["LoopInfo"] = field(default_factory=list)

    @property
    def total_iterations(self) -> int:
        """Trip count multiplied over all enclosing loops."""
        total = self.trip_count
        node = self.parent
        while node is not None:
            total *= node.trip_count
            node = node.parent
        return total

    @property
    def index_name(self) -> str | None:
        if isinstance(self.loop, For):
            return self.loop.index.name
        return None


def loop_forest(stmt: Stmt) -> list[LoopInfo]:
    """Build the loop nesting forest of the subtree rooted at ``stmt``."""

    def visit(node: Stmt, parent: LoopInfo | None, depth: int) -> list[LoopInfo]:
        infos: list[LoopInfo] = []
        if isinstance(node, (For, While)):
            info = LoopInfo(node, depth, loop_trip_count(node), parent)
            if parent is not None:
                parent.children.append(info)
            infos.append(info)
            for child in node.children():
                visit(child, info, depth + 1)
            return infos
        for child in node.children():
            infos.extend(visit(child, parent, depth))
        return infos

    roots: list[LoopInfo] = []
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            roots.extend(visit(child, None, 0))
    else:
        roots.extend(visit(stmt, None, 0))
    return roots


def all_loops(stmt: Stmt) -> list[LoopInfo]:
    """Flatten :func:`loop_forest` into a pre-order list of all loops."""
    result: list[LoopInfo] = []

    def collect(info: LoopInfo) -> None:
        result.append(info)
        for child in info.children:
            collect(child)

    for root in loop_forest(stmt):
        collect(root)
    return result


def max_loop_depth(stmt: Stmt) -> int:
    """Maximum loop nesting depth in the subtree (0 when loop-free)."""
    loops = all_loops(stmt)
    if not loops:
        return 0
    return max(info.depth for info in loops) + 1


def check_all_loops_bounded(stmt: Stmt) -> None:
    """Raise :class:`LoopBoundError` if any loop lacks a derivable bound."""
    for info in all_loops(stmt):
        # loop_forest already calls loop_trip_count, so reaching here means
        # every loop is bounded; this function exists for explicit validation
        # call sites and re-checks defensively.
        loop_trip_count(info.loop)


def describe_unbounded_loops(function) -> list[str]:
    """Human-readable diagnostics for every unbounded loop of ``function``.

    Unlike :func:`check_all_loops_bounded` this never raises and names the
    function and the loop in each message, so front-end gates can report all
    problems at once instead of failing later inside IPET with an opaque LP
    error.  Uses :func:`repro.ir.statements.collect_loops` (not the loop
    forest, whose construction itself raises on the first unbounded loop).
    """
    from repro.ir.statements import For, collect_loops

    problems: list[str] = []
    for loop in collect_loops(function.body):
        try:
            loop_trip_count(loop)
        except LoopBoundError as exc:
            where = (
                f"loop over {loop.index.name!r}" if isinstance(loop, For) else "while loop"
            )
            problems.append(f"function {function.name!r}, {where}: {exc}")
    return problems
