"""C-like pretty printer for the IR.

The printed text is what the ARGO flow would hand to a downstream C compiler
(paper Section II-C: "generate C code following the WCET-aware programming
model").  It is also invaluable for debugging and for golden tests.
"""

from __future__ import annotations

from repro.ir.expressions import ArrayRef, BinOp, Call, Const, Expr, UnOp, Var
from repro.ir.program import Function, Program, Storage, VarDecl
from repro.ir.statements import (
    Assign,
    Block,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    While,
)
from repro.ir.types import ArrayType

_INDENT = "    "


def expr_to_c(expr: Expr) -> str:
    """Render an expression as C source text."""
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            return "1" if expr.value else "0"
        if isinstance(expr.value, float):
            return repr(float(expr.value))
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return f"{expr.op}({expr_to_c(expr.left)}, {expr_to_c(expr.right)})"
        return f"({expr_to_c(expr.left)} {expr.op} {expr_to_c(expr.right)})"
    if isinstance(expr, UnOp):
        if expr.op in ("-", "!"):
            return f"{expr.op}({expr_to_c(expr.operand)})"
        return f"{expr.op}({expr_to_c(expr.operand)})"
    if isinstance(expr, ArrayRef):
        idx = "".join(f"[{expr_to_c(i)}]" for i in expr.indices)
        return f"{expr.array}{idx}"
    if isinstance(expr, Call):
        return f"{expr.func}({', '.join(expr_to_c(a) for a in expr.args)})"
    raise TypeError(f"cannot print expression {type(expr).__name__}")


def _decl_to_c(decl: VarDecl) -> str:
    qualifier = {
        Storage.LOCAL: "",
        Storage.SCRATCHPAD: "__spm ",
        Storage.SHARED: "__shared ",
        Storage.INPUT: "const __shared ",
        Storage.OUTPUT: "__shared ",
    }[decl.storage]
    if isinstance(decl.type, ArrayType):
        dims = "".join(f"[{d}]" for d in decl.type.shape)
        return f"{qualifier}{decl.type.element} {decl.name}{dims}"
    init = f" = {decl.initial}" if decl.initial is not None else ""
    return f"{qualifier}{decl.type} {decl.name}{init}"


def _stmt_to_c(stmt: Stmt, indent: int) -> list[str]:
    pad = _INDENT * indent
    if isinstance(stmt, Assign):
        return [f"{pad}{expr_to_c(stmt.target)} = {expr_to_c(stmt.value)};"]
    if isinstance(stmt, Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {expr_to_c(stmt.value)};"]
    if isinstance(stmt, ExprStmt):
        return [f"{pad}{expr_to_c(stmt.expr)};"]
    if isinstance(stmt, Block):
        lines: list[str] = []
        for child in stmt.stmts:
            lines.extend(_stmt_to_c(child, indent))
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}if ({expr_to_c(stmt.cond)}) {{"]
        lines.extend(_stmt_to_c(stmt.then_body, indent + 1))
        if stmt.else_body.stmts:
            lines.append(f"{pad}}} else {{")
            lines.extend(_stmt_to_c(stmt.else_body, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, For):
        idx = stmt.index.name
        step = f"{idx} += {stmt.step}" if stmt.step != 1 else f"{idx}++"
        header = (
            f"{pad}for (int {idx} = {expr_to_c(stmt.lower)}; "
            f"{idx} < {expr_to_c(stmt.upper)}; {step}) {{"
        )
        lines = []
        if stmt.max_trip_count is not None:
            lines.append(f"{pad}/* loop bound: {stmt.max_trip_count} */")
        if stmt.parallelizable:
            lines.append(f"{pad}/* parallelizable */")
        lines.append(header)
        lines.extend(_stmt_to_c(stmt.body, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [
            f"{pad}/* loop bound: {stmt.max_trip_count} */",
            f"{pad}while ({expr_to_c(stmt.cond)}) {{",
        ]
        lines.extend(_stmt_to_c(stmt.body, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot print statement {type(stmt).__name__}")


def function_to_c(function: Function) -> str:
    """Render a function as C source text."""
    params = ", ".join(_decl_to_c(p) for p in function.params)
    lines = [f"void {function.name}({params})", "{"]
    for decl in function.decls:
        lines.append(f"{_INDENT}{_decl_to_c(decl)};")
    if function.decls:
        lines.append("")
    lines.extend(_stmt_to_c(function.body, 1))
    lines.append("}")
    return "\n".join(lines)


def to_c(obj: Program | Function | Stmt | Expr) -> str:
    """Render any IR object (program, function, statement, expression) as C."""
    if isinstance(obj, Program):
        return "\n\n".join(function_to_c(f) for f in obj.functions)
    if isinstance(obj, Function):
        return function_to_c(obj)
    if isinstance(obj, Stmt):
        return "\n".join(_stmt_to_c(obj, 0))
    if isinstance(obj, Expr):
        return expr_to_c(obj)
    raise TypeError(f"cannot print object of type {type(obj).__name__}")
