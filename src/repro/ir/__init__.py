"""C-subset intermediate representation (IR) used by the ARGO tool chain.

The Xcos/Scilab models are compiled to this IR (paper Section II-B); the
predictability transformations, the HTG extraction and the WCET analyses all
operate on it.  The IR is *structured* (no goto): programs are trees of
statements with explicit counted loops, which keeps loop-bound analysis and
structural WCET computation exact.

Main entry points
-----------------
* :class:`repro.ir.program.Program`, :class:`repro.ir.program.Function` --
  top-level containers.
* :class:`repro.ir.builder.FunctionBuilder` -- fluent construction helper.
* :class:`repro.ir.interpreter.Interpreter` -- functional execution with
  operation / memory-access accounting.
* :class:`repro.ir.cfg.ControlFlowGraph` -- basic-block view used by IPET.
"""

from repro.ir.types import (
    ScalarKind,
    ScalarType,
    ArrayType,
    INT,
    FLOAT,
    BOOL,
)
from repro.ir.expressions import (
    Expr,
    Const,
    Var,
    BinOp,
    UnOp,
    ArrayRef,
    Call,
)
from repro.ir.statements import (
    Stmt,
    Assign,
    Block,
    If,
    For,
    While,
    Return,
    ExprStmt,
)
from repro.ir.program import Storage, VarDecl, Function, Program
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import to_c
from repro.ir.interpreter import Interpreter, ExecutionStats
from repro.ir.cfg import ControlFlowGraph, build_cfg

__all__ = [
    "ScalarKind",
    "ScalarType",
    "ArrayType",
    "INT",
    "FLOAT",
    "BOOL",
    "Expr",
    "Const",
    "Var",
    "BinOp",
    "UnOp",
    "ArrayRef",
    "Call",
    "Stmt",
    "Assign",
    "Block",
    "If",
    "For",
    "While",
    "Return",
    "ExprStmt",
    "Storage",
    "VarDecl",
    "Function",
    "Program",
    "FunctionBuilder",
    "to_c",
    "Interpreter",
    "ExecutionStats",
    "ControlFlowGraph",
    "build_cfg",
]
