"""Statement nodes of the C-subset IR.

The IR is fully structured: blocks, two-armed conditionals, counted ``for``
loops and bounded ``while`` loops.  There is no unstructured control flow,
which is what makes exact structural WCET computation possible (paper
Section II-D relies on a program representation exposing this information).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.ir.expressions import ArrayRef, Expr, Var

_STMT_IDS = itertools.count(1)


def _next_stmt_id() -> int:
    return next(_STMT_IDS)


class Stmt:
    """Base class for all IR statements."""

    #: Unique id used to key per-statement analysis results.
    sid: int

    def children(self) -> Sequence["Stmt"]:
        return ()

    def walk(self) -> Iterator["Stmt"]:
        """Pre-order traversal of the statement tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def expressions(self) -> Sequence[Expr]:
        """Expressions evaluated directly by this statement (not children)."""
        return ()

    def variables_read(self) -> set[str]:
        names: set[str] = set()
        for expr in self.expressions():
            names |= expr.variables_read()
        return names

    def variables_written(self) -> set[str]:
        return set()


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a scalar variable or array element."""

    target: Var | ArrayRef
    value: Expr
    sid: int = field(default_factory=_next_stmt_id, compare=False)

    def expressions(self) -> Sequence[Expr]:
        exprs: list[Expr] = [self.value]
        if isinstance(self.target, ArrayRef):
            exprs.extend(self.target.indices)
        return exprs

    def variables_written(self) -> set[str]:
        if isinstance(self.target, ArrayRef):
            return {self.target.array}
        return {self.target.name}

    def __str__(self) -> str:
        return f"{self.target} = {self.value};"


@dataclass
class Block(Stmt):
    """A sequence of statements."""

    stmts: list[Stmt] = field(default_factory=list)
    sid: int = field(default_factory=_next_stmt_id, compare=False)

    def children(self) -> Sequence[Stmt]:
        return tuple(self.stmts)

    def append(self, stmt: Stmt) -> None:
        self.stmts.append(stmt)

    def __len__(self) -> int:
        return len(self.stmts)

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.stmts)


@dataclass
class If(Stmt):
    """A two-armed conditional; the else branch may be empty."""

    cond: Expr
    then_body: Block
    else_body: Block = field(default_factory=Block)
    sid: int = field(default_factory=_next_stmt_id, compare=False)

    def children(self) -> Sequence[Stmt]:
        return (self.then_body, self.else_body)

    def expressions(self) -> Sequence[Expr]:
        return (self.cond,)


@dataclass
class For(Stmt):
    """A counted loop ``for (i = lower; i < upper; i += step) body``.

    ``lower``/``upper`` are expressions; when they are compile-time constants
    the loop-bound analysis derives the exact trip count, otherwise the
    ``max_trip_count`` annotation must be supplied (mirroring the flow
    annotations WCET tools such as aiT require).
    """

    index: Var
    lower: Expr
    upper: Expr
    body: Block
    step: int = 1
    max_trip_count: int | None = None
    #: Set by transformations that want the HTG extractor to treat every
    #: iteration (or chunk of iterations) as a parallel task candidate.
    parallelizable: bool = False
    sid: int = field(default_factory=_next_stmt_id, compare=False)

    def __post_init__(self) -> None:
        if self.step == 0:
            raise ValueError("for-loop step must be non-zero")

    def children(self) -> Sequence[Stmt]:
        return (self.body,)

    def expressions(self) -> Sequence[Expr]:
        return (self.lower, self.upper)

    def variables_written(self) -> set[str]:
        return {self.index.name}


@dataclass
class While(Stmt):
    """A condition-controlled loop; ``max_trip_count`` is mandatory.

    Unbounded loops are rejected by the WCET analysis, matching the
    requirement that every loop carries a flow bound.
    """

    cond: Expr
    body: Block
    max_trip_count: int = 1
    sid: int = field(default_factory=_next_stmt_id, compare=False)

    def __post_init__(self) -> None:
        if self.max_trip_count < 0:
            raise ValueError("while-loop max_trip_count must be non-negative")

    def children(self) -> Sequence[Stmt]:
        return (self.body,)

    def expressions(self) -> Sequence[Expr]:
        return (self.cond,)


@dataclass
class Return(Stmt):
    """Return from the enclosing function, optionally with a value."""

    value: Expr | None = None
    sid: int = field(default_factory=_next_stmt_id, compare=False)

    def expressions(self) -> Sequence[Expr]:
        return (self.value,) if self.value is not None else ()


@dataclass
class ExprStmt(Stmt):
    """Evaluate an expression for effect (kept for completeness)."""

    expr: Expr
    sid: int = field(default_factory=_next_stmt_id, compare=False)

    def expressions(self) -> Sequence[Expr]:
        return (self.expr,)


def count_statements(stmt: Stmt) -> int:
    """Number of statement nodes in the subtree rooted at ``stmt``."""
    return sum(1 for _ in stmt.walk())


def collect_loops(stmt: Stmt) -> list[For | While]:
    """All loops in the subtree rooted at ``stmt`` in pre-order."""
    return [s for s in stmt.walk() if isinstance(s, (For, While))]
