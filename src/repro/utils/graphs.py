"""Small directed-graph helpers shared by the HTG, scheduling and WCET layers.

These wrap :mod:`networkx` with the restricted interfaces the tool chain
needs (topological order, DAG longest path with node weights, transitive
closure) so callers never depend on networkx types directly.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

import networkx as nx


def is_acyclic(edges: Iterable[tuple[Hashable, Hashable]], nodes: Iterable[Hashable] = ()) -> bool:
    """Return True when the directed graph defined by ``edges`` has no cycle."""
    graph = nx.DiGraph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    return nx.is_directed_acyclic_graph(graph)


def topological_order(
    nodes: Iterable[Hashable], edges: Iterable[tuple[Hashable, Hashable]]
) -> list[Hashable]:
    """Deterministic topological order (lexicographic tie-break on ``str``)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("graph contains a cycle; no topological order exists")
    return list(nx.lexicographical_topological_sort(graph, key=str))


def longest_path_length(
    nodes: Iterable[Hashable],
    edges: Iterable[tuple[Hashable, Hashable]],
    node_weight: Callable[[Hashable], float] | Mapping[Hashable, float],
    edge_weight: Callable[[Hashable, Hashable], float] | None = None,
) -> float:
    """Length of the heaviest path in a DAG, counting node and edge weights.

    This is the critical-path length used both as a scheduling lower bound and
    by the structural WCET computation over task graphs.
    """
    if isinstance(node_weight, Mapping):
        weights = node_weight
        node_weight_fn = lambda n: float(weights.get(n, 0.0))  # noqa: E731
    else:
        node_weight_fn = node_weight
    edge_weight_fn = edge_weight or (lambda u, v: 0.0)

    order = topological_order(nodes, edges)
    graph = nx.DiGraph()
    graph.add_nodes_from(order)
    graph.add_edges_from(edges)

    finish: dict[Hashable, float] = {}
    best = 0.0
    for node in order:
        start = 0.0
        for pred in graph.predecessors(node):
            start = max(start, finish[pred] + edge_weight_fn(pred, node))
        finish[node] = start + float(node_weight_fn(node))
        best = max(best, finish[node])
    return best


def transitive_closure(
    nodes: Iterable[Hashable], edges: Iterable[tuple[Hashable, Hashable]]
) -> set[tuple[Hashable, Hashable]]:
    """Set of (u, v) pairs such that v is reachable from u by one or more edges."""
    graph = nx.DiGraph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    closure = nx.transitive_closure_dag(graph) if nx.is_directed_acyclic_graph(graph) else nx.transitive_closure(graph)
    return set(closure.edges())
