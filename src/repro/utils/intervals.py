"""Half-open time intervals, used by schedules and the MHP analysis."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[start, end)`` on the time axis."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    @property
    def length(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """Return True when the two half-open intervals intersect."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def shifted(self, delta: float) -> "Interval":
        return Interval(self.start + delta, self.end + delta)

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end


def intervals_overlap(a: Interval, b: Interval) -> bool:
    """Module-level convenience wrapper around :meth:`Interval.overlaps`."""
    return a.overlaps(b)


def total_busy_time(intervals: list[Interval]) -> float:
    """Length of the union of ``intervals`` (used for core utilisation)."""
    if not intervals:
        return 0.0
    ordered = sorted(intervals, key=lambda iv: iv.start)
    total = 0.0
    cur_start, cur_end = ordered[0].start, ordered[0].end
    for iv in ordered[1:]:
        if iv.start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = iv.start, iv.end
        else:
            cur_end = max(cur_end, iv.end)
    total += cur_end - cur_start
    return total
