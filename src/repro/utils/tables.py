"""Plain-text table rendering used by the benchmark harness and reports.

The ARGO paper contains no numeric tables, so the benchmark harness defines
its own experiment tables (see ``EXPERIMENTS.md``).  :class:`Table` renders
them in a stable, diff-friendly fixed-width format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned text table.

    >>> t = Table(["app", "cores", "wcet"])
    >>> t.add_row(["egpws", 4, 1234.0])
    >>> print(t.render())  # doctest: +ELLIPSIS
    app   | cores | wcet...
    """

    columns: Sequence[str]
    title: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[Any]) -> None:
        row = [_fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        out = []
        if self.title:
            out.append(self.title)
        out.append(line(headers))
        out.append("-+-".join("-" * w for w in widths))
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
