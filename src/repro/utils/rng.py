"""Deterministic random number generation helpers.

Every stochastic component of the tool chain (metaheuristic schedulers,
synthetic workload generators, use-case data synthesis) draws its randomness
from a :class:`numpy.random.Generator` created through :func:`make_rng`, so
experiments are reproducible bit-for-bit given a seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0x41524F  # "ARO"


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a seeded :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Seed for the generator.  ``None`` selects the package-wide default
        seed (experiments stay deterministic unless the caller explicitly
        opts into a different seed).
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, salt: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when a component needs to hand out sub-generators (e.g. one per
    scheduling restart) without consuming the parent stream in an
    order-dependent way.
    """
    seed = int(rng.integers(0, 2**31 - 1)) ^ (salt * 0x9E3779B1 & 0x7FFFFFFF)
    return np.random.default_rng(seed)
