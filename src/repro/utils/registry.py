"""Minimal name -> entry plugin registry.

Shared machinery of the pluggable subsystems (scheduler strategies in
:mod:`repro.scheduling.registry`, transformation passes in
:mod:`repro.transforms.registry`): duplicate-name protection with an
explicit ``replace`` escape hatch, lookup errors that list the known names,
and an optional ``ensure`` hook that lets a registry lazily import the
modules providing its built-in entries.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

T = TypeVar("T")


def first_doc_line(obj: object) -> str:
    """The first non-empty docstring line of ``obj`` (or an empty string)."""
    return ((getattr(obj, "__doc__", None) or "").strip().splitlines() or [""])[0]


class Registry(Generic[T]):
    """A name -> entry mapping with plugin-friendly registration semantics."""

    def __init__(
        self,
        kind: str,
        error: type[Exception],
        ensure: Callable[[], None] | None = None,
        kind_plural: str | None = None,
    ) -> None:
        self._kind = kind
        self._kind_plural = kind_plural or f"{kind}s"
        self._error = error
        #: invoked before lookups so built-in entries can self-register on
        #: first use (typically an import of the providing package)
        self._ensure = ensure
        self._entries: dict[str, T] = {}

    def register(self, name: str, entry: T, replace: bool = False) -> T:
        if name in self._entries and not replace:
            raise self._error(
                f"{self._kind} {name!r} is already registered "
                f"(by {self._entries[name]!r}); pass replace=True to override"
            )
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove a registration; unknown names are a no-op."""
        self._entries.pop(name, None)

    def get(self, name: str) -> T:
        """Look up an entry by name, raising with the known names on a miss."""
        if self._ensure is not None:
            self._ensure()
        try:
            return self._entries[name]
        except KeyError:
            raise self._error(
                f"unknown {self._kind} {name!r}; registered {self._kind_plural}: "
                f"{', '.join(self.available())}"
            ) from None

    def available(self) -> tuple[str, ...]:
        """Sorted names of every registered entry."""
        if self._ensure is not None:
            self._ensure()
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries
