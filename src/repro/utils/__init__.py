"""Shared utilities: deterministic RNG, table formatting, graph helpers."""

from repro.utils.rng import make_rng
from repro.utils.tables import Table
from repro.utils.intervals import Interval, intervals_overlap
from repro.utils.graphs import (
    topological_order,
    longest_path_length,
    transitive_closure,
    is_acyclic,
)

__all__ = [
    "make_rng",
    "Table",
    "Interval",
    "intervals_overlap",
    "topological_order",
    "longest_path_length",
    "transitive_closure",
    "is_acyclic",
]
