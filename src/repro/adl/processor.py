"""Processor timing models.

A :class:`ProcessorModel` gives the worst-case cycle cost of every scalar
operation the IR can express, plus flags describing speculative hardware
features.  The paper's design guidelines (Section III-B) require avoiding
hard-to-predict mechanisms (dynamic branch prediction, prefetching,
write buffers, cache coherence); platforms whose processors enable them fail
the predictability check.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


#: Default worst-case operation latencies (cycles) for a simple in-order RISC
#: pipeline.  Division and transcendental intrinsics are software-emulated
#: and therefore expensive, which matches DSP-class cores such as the Xentium.
DEFAULT_OP_CYCLES: dict[str, int] = {
    "+": 1,
    "-": 1,
    "*": 3,
    "/": 18,
    "%": 18,
    "min": 1,
    "max": 1,
    "<": 1,
    "<=": 1,
    ">": 1,
    ">=": 1,
    "==": 1,
    "!=": 1,
    "&&": 1,
    "||": 1,
    "!": 1,
    "abs": 1,
    "sqrt": 30,
    "exp": 45,
    "log": 45,
    "sin": 40,
    "cos": 40,
    "tan": 50,
    "atan2": 55,
    "floor": 2,
    "ceil": 2,
    "pow": 60,
    "hypot": 45,
    "clamp": 2,
}

#: Fixed overheads charged by the WCET analysis for control constructs.
DEFAULT_BRANCH_CYCLES = 2
DEFAULT_LOOP_OVERHEAD_CYCLES = 2
DEFAULT_CALL_OVERHEAD_CYCLES = 10


@dataclass(frozen=True)
class ProcessorModel:
    """Worst-case timing model of a single core.

    Parameters
    ----------
    name:
        Human-readable processor name (``"xentium"``, ``"leon3"`` ...).
    clock_mhz:
        Clock frequency; only used to convert cycles to wall-clock time in
        reports, all analyses work in cycles.
    op_cycles:
        Worst-case latency of each IR operation in cycles.
    branch_cycles / loop_overhead_cycles:
        Fixed penalties for conditional branches and per-iteration loop
        control (increment + compare + branch).
    dynamic_branch_prediction / prefetcher / write_buffer / cache_coherence:
        Speculative features.  They do not change the timing model (we always
        assume the worst case) but make the platform fail the paper's
        predictability guidelines.
    timing_compositional:
        Whether the core is fully timing compositional (no timing anomalies),
        a prerequisite for the compositional system-level analysis.
    """

    name: str
    clock_mhz: float = 100.0
    op_cycles: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_OP_CYCLES))
    branch_cycles: int = DEFAULT_BRANCH_CYCLES
    loop_overhead_cycles: int = DEFAULT_LOOP_OVERHEAD_CYCLES
    call_overhead_cycles: int = DEFAULT_CALL_OVERHEAD_CYCLES
    dynamic_branch_prediction: bool = False
    prefetcher: bool = False
    write_buffer: bool = False
    cache_coherence: bool = False
    timing_compositional: bool = True

    def cycles_for_op(self, op: str) -> int:
        """Worst-case cycles for one IR operation ``op``.

        Unknown operations are charged the most expensive known operation so
        the estimate stays safe.
        """
        if op in self.op_cycles:
            return self.op_cycles[op]
        return max(self.op_cycles.values())

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at this core's clock."""
        return cycles / (self.clock_mhz * 1e6)

    def scaled(self, factor: float) -> "ProcessorModel":
        """A copy of this model with every operation cost scaled by ``factor``.

        Used to model heterogeneous platforms (e.g. an accelerator tile that
        executes arithmetic faster than the general-purpose cores).
        """
        if factor <= 0:
            raise ValueError("scaling factor must be positive")
        new_ops = {op: max(1, round(c * factor)) for op, c in self.op_cycles.items()}
        return replace(self, op_cycles=new_ops)

    @property
    def is_predictable(self) -> bool:
        """True when no hard-to-predict speculative feature is enabled."""
        return not (
            self.dynamic_branch_prediction
            or self.prefetcher
            or self.write_buffer
            or self.cache_coherence
        )


def xentium_processor() -> ProcessorModel:
    """A Xentium-like fixed-point/VLIW DSP core model (Recore Systems)."""
    ops = dict(DEFAULT_OP_CYCLES)
    # DSP datapath: cheap multiply-accumulate, expensive division.
    ops.update({"*": 2, "/": 24, "%": 24, "sqrt": 36})
    return ProcessorModel(name="xentium", clock_mhz=200.0, op_cycles=ops)


def leon3_processor() -> ProcessorModel:
    """A Leon3-like SPARC V8 core model (KIT compute tiles)."""
    ops = dict(DEFAULT_OP_CYCLES)
    ops.update({"*": 5, "/": 35, "%": 35, "sqrt": 55})
    return ProcessorModel(name="leon3", clock_mhz=100.0, op_cycles=ops)
