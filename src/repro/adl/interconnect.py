"""Predictable interconnect models: TDM bus, round-robin bus, full crossbar.

The paper's guideline (Section III-B) is that the interconnect must provide
(i) a worst-case delay for *gaining access* and (ii) a worst-case delay for
*copying the data* once access is granted.  Every model here exposes exactly
those two quantities through :meth:`Interconnect.worst_case_access_delay` and
:meth:`Interconnect.worst_case_transfer_delay`; the system-level WCET
analysis and the discrete-event simulator both consume them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class Interconnect:
    """Base class for all interconnect models."""

    name: str = "interconnect"
    #: Bytes moved per granted slot/beat.
    bytes_per_beat: int = 4

    def worst_case_access_delay(self, contenders: int) -> float:
        """Worst-case cycles to be *granted* access with ``contenders`` peers.

        ``contenders`` counts the other cores that may access the resource at
        the same time (0 means exclusive access).
        """
        raise NotImplementedError

    def transfer_beats(self, num_bytes: int) -> int:
        """Number of bus/NoC beats needed to move ``num_bytes``."""
        return max(1, math.ceil(num_bytes / self.bytes_per_beat))

    def worst_case_transfer_delay(self, num_bytes: int, contenders: int) -> float:
        """Worst-case cycles to move ``num_bytes`` under contention.

        The default model re-arbitrates for every beat, which is the safe
        assumption for shared buses without burst locking.
        """
        beats = self.transfer_beats(num_bytes)
        per_beat = self.worst_case_access_delay(contenders) + self.beat_cycles
        return beats * per_beat

    @property
    def beat_cycles(self) -> float:
        """Cycles needed to move one beat once access is granted."""
        return 1.0

    def is_predictable(self) -> bool:
        """Interconnects in this module are predictable by construction."""
        return True


@dataclass
class TDMBus(Interconnect):
    """A time-division-multiplexed bus.

    Every core owns one slot of ``slot_cycles`` cycles in a repeating frame of
    ``num_slots`` slots.  The worst-case access delay is a full frame minus
    one slot (the requester just missed its slot), independent of the actual
    number of contenders -- fully composable, but wasteful at low load.
    """

    num_slots: int
    slot_cycles: int = 4
    bytes_per_beat: int = 4
    name: str = "tdm_bus"

    def __post_init__(self) -> None:
        if self.num_slots <= 0 or self.slot_cycles <= 0:
            raise ValueError("num_slots and slot_cycles must be positive")

    def worst_case_access_delay(self, contenders: int) -> float:
        # TDM does not care about the actual contenders: the frame is fixed.
        return (self.num_slots - 1) * self.slot_cycles

    @property
    def beat_cycles(self) -> float:
        return float(self.slot_cycles)

    def worst_case_transfer_delay(self, num_bytes: int, contenders: int) -> float:
        beats = self.transfer_beats(num_bytes)
        frame = self.num_slots * self.slot_cycles
        # One frame per beat in the worst case, minus the fact that the
        # requester's own slot carries the beat.
        return beats * frame

    def is_predictable(self) -> bool:
        return True


@dataclass
class RoundRobinBus(Interconnect):
    """A work-conserving round-robin arbitrated bus.

    The worst case for gaining access is waiting for every *actual* contender
    to complete one beat; this is tighter than TDM when few cores compete,
    which is precisely the property the ARGO scheduler exploits by limiting
    the number of simultaneous contenders (paper Section II: "the number of
    shared resource contenders ... is reduced during parallelization").
    """

    arbitration_cycles: int = 1
    beat_latency: int = 2
    bytes_per_beat: int = 4
    name: str = "rr_bus"

    def worst_case_access_delay(self, contenders: int) -> float:
        if contenders < 0:
            raise ValueError("contenders must be non-negative")
        return self.arbitration_cycles + contenders * self.beat_latency

    @property
    def beat_cycles(self) -> float:
        return float(self.beat_latency)


@dataclass
class FullCrossbar(Interconnect):
    """A full crossbar: contention only on same-destination conflicts.

    We conservatively assume all contenders target the same destination port,
    so it behaves like round-robin per port but with no arbitration overhead.
    """

    beat_latency: int = 1
    bytes_per_beat: int = 8
    name: str = "crossbar"

    def worst_case_access_delay(self, contenders: int) -> float:
        if contenders < 0:
            raise ValueError("contenders must be non-negative")
        return contenders * self.beat_latency

    @property
    def beat_cycles(self) -> float:
        return float(self.beat_latency)
