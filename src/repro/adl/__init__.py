"""Architecture Description Language (ADL) for predictable multi-cores.

The ARGO ADL (paper Section II-A) captures everything the tool chain needs to
compute WCETs: processors and their instruction timing, the memory hierarchy
(scratchpads instead of caches), and the interconnect together with its
worst-case access/transfer delays.  Section III-B's design guidelines for
predictable multi-core architectures are encoded as validation checks on the
platform description (:meth:`Platform.check_predictability`).

Platform presets for the two target architectures of Section IV-C (a Recore
Xentium-like many-core and a KIT Leon3 + iNoC tile-based many-core) live in
:mod:`repro.adl.platforms`.
"""

from repro.adl.processor import ProcessorModel
from repro.adl.memory import MemoryKind, MemoryRegion
from repro.adl.interconnect import (
    Interconnect,
    TDMBus,
    RoundRobinBus,
    FullCrossbar,
)
from repro.adl.noc import MeshNoC, NocLink, xy_route
from repro.adl.architecture import Core, Platform, PredictabilityReport
from repro.adl.platforms import (
    generic_predictable_multicore,
    recore_xentium_like,
    kit_leon3_inoc,
)

__all__ = [
    "ProcessorModel",
    "MemoryKind",
    "MemoryRegion",
    "Interconnect",
    "TDMBus",
    "RoundRobinBus",
    "FullCrossbar",
    "MeshNoC",
    "NocLink",
    "xy_route",
    "Core",
    "Platform",
    "PredictabilityReport",
    "generic_predictable_multicore",
    "recore_xentium_like",
    "kit_leon3_inoc",
]
