"""Mesh network-on-chip with weighted-round-robin QoS routers (iNoC-like).

The KIT target platform uses the invasive NoC (iNoC) with a scalable router
providing QoS through weighted round robin scheduling (Heisswolf et al.,
reference [12] of the paper); it offers the bandwidth and latency guarantees
the system-level WCET analysis needs.  This module reproduces that behaviour
analytically:

* 2-D mesh topology with deterministic XY routing;
* per-link weighted-round-robin arbitration -- a flow with weight ``w`` out of
  a total active weight ``W`` on a link is guaranteed at least ``w / W`` of
  the link bandwidth and a worst-case per-flit waiting time of
  ``(W - w)`` flit slots;
* worst-case end-to-end latency = per-hop router latency plus the per-hop WRR
  waiting time, accumulated over the XY route, plus serialization of the
  packet's flits at the injection rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.adl.interconnect import Interconnect


@dataclass(frozen=True)
class NocLink:
    """A directed link between two adjacent routers (or router and local port)."""

    src: tuple[int, int]
    dst: tuple[int, int]

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}"


def xy_route(src: tuple[int, int], dst: tuple[int, int]) -> list[NocLink]:
    """Deterministic XY (dimension-ordered) route from ``src`` to ``dst``.

    X is routed first, then Y; the route is returned as the list of directed
    links traversed.  Deterministic routing is essential for computing
    worst-case contention: the set of flows crossing each link is known
    statically.
    """
    links: list[NocLink] = []
    x, y = src
    dx, dy = dst
    while x != dx:
        nxt = x + (1 if dx > x else -1)
        links.append(NocLink((x, y), (nxt, y)))
        x = nxt
    while y != dy:
        nxt = y + (1 if dy > y else -1)
        links.append(NocLink((x, y), (x, nxt)))
        y = nxt
    return links


@dataclass
class MeshNoC(Interconnect):
    """A ``width`` x ``height`` mesh NoC with WRR-arbitrated links."""

    width: int = 2
    height: int = 2
    router_latency: int = 3          # cycles per hop through a router
    link_latency: int = 1            # cycles per hop on the wire
    flit_bytes: int = 8              # payload bytes per flit
    flit_cycles: int = 1             # cycles to forward one flit once granted
    #: Default WRR weight for best-effort flows; guaranteed-service flows can
    #: be given larger weights via ``flow_weights``.
    default_weight: int = 1
    flow_weights: dict[str, int] = field(default_factory=dict)
    name: str = "mesh_noc"
    bytes_per_beat: int = 8

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("mesh dimensions must be positive")
        self.bytes_per_beat = self.flit_bytes

    # ------------------------------------------------------------------ #
    # topology helpers
    # ------------------------------------------------------------------ #
    @property
    def num_tiles(self) -> int:
        return self.width * self.height

    def tile_coords(self, tile_index: int) -> tuple[int, int]:
        """Map a linear tile index to (x, y) mesh coordinates."""
        if not 0 <= tile_index < self.num_tiles:
            raise ValueError(f"tile index {tile_index} out of range")
        return (tile_index % self.width, tile_index // self.width)

    def hop_count(self, src_tile: int, dst_tile: int) -> int:
        sx, sy = self.tile_coords(src_tile)
        dx, dy = self.tile_coords(dst_tile)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src_tile: int, dst_tile: int) -> list[NocLink]:
        return xy_route(self.tile_coords(src_tile), self.tile_coords(dst_tile))

    # ------------------------------------------------------------------ #
    # worst-case latency model (WRR guarantees)
    # ------------------------------------------------------------------ #
    def weight_of(self, flow: str) -> int:
        return self.flow_weights.get(flow, self.default_weight)

    def flits_for(self, num_bytes: int) -> int:
        return max(1, math.ceil(num_bytes / self.flit_bytes))

    def per_hop_waiting(self, contenders: int, weight: int = 1, total_weight: int | None = None) -> float:
        """Worst-case WRR waiting time (cycles) at one router output port.

        With ``contenders`` other flows of total weight ``total_weight - weight``
        sharing the port, a flit of our flow waits at most one service slot per
        unit of competing weight before its turn comes around.
        """
        if contenders < 0:
            raise ValueError("contenders must be non-negative")
        if total_weight is None:
            total_weight = weight + contenders * self.default_weight
        competing = max(0, total_weight - weight)
        return competing * self.flit_cycles

    def worst_case_access_delay(self, contenders: int) -> float:
        """Interconnect-interface view: one-hop worst-case grant delay."""
        return self.router_latency + self.per_hop_waiting(contenders)

    def worst_case_packet_latency(
        self,
        num_bytes: int,
        src_tile: int,
        dst_tile: int,
        contenders: int,
        weight: int = 1,
    ) -> float:
        """Worst-case end-to-end latency of one packet between two tiles.

        The head flit pays router + link + WRR waiting per hop; the remaining
        flits stream behind it (wormhole switching) at one flit per
        ``flit_cycles`` times the worst-case WRR slowdown.
        """
        hops = max(1, self.hop_count(src_tile, dst_tile))
        flits = self.flits_for(num_bytes)
        per_hop = self.router_latency + self.link_latency + self.per_hop_waiting(contenders, weight)
        head_latency = hops * per_hop
        total_weight = weight + contenders * self.default_weight
        serialization = (flits - 1) * self.flit_cycles * max(1.0, total_weight / weight)
        return head_latency + serialization

    def worst_case_transfer_delay(self, num_bytes: int, contenders: int) -> float:
        """Conservative transfer bound when tile placement is unknown.

        Assumes the longest possible route in the mesh (the diameter).
        """
        diameter_src = 0
        diameter_dst = self.num_tiles - 1
        return self.worst_case_packet_latency(num_bytes, diameter_src, diameter_dst, contenders)

    def guaranteed_bandwidth(self, weight: int, total_weight: int) -> float:
        """Fraction of link bandwidth guaranteed to a flow by WRR arbitration."""
        if total_weight <= 0:
            raise ValueError("total weight must be positive")
        return min(1.0, weight / total_weight)

    def is_predictable(self) -> bool:
        return True
