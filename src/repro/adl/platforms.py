"""Platform presets used throughout the reproduction.

Three families are provided, mirroring paper Section IV-C:

* :func:`generic_predictable_multicore` -- a simple bus-based predictable
  multi-core used as the default target and in most unit tests;
* :func:`recore_xentium_like` -- a Recore-style heterogeneous many-core with
  Xentium DSP cores behind a round-robin bus / crossbar;
* :func:`kit_leon3_inoc` -- a KIT-style tile-based many-core with Leon3
  compute tiles connected by the WRR-arbitrated invasive NoC.
"""

from __future__ import annotations

from repro.adl.architecture import Core, Platform
from repro.adl.interconnect import FullCrossbar, RoundRobinBus, TDMBus
from repro.adl.memory import external_dram, scratchpad, shared_sram
from repro.adl.noc import MeshNoC
from repro.adl.processor import (
    ProcessorModel,
    leon3_processor,
    xentium_processor,
)


def generic_predictable_multicore(
    cores: int = 4,
    spm_kib: int = 64,
    shared_kib: int = 1024,
    shared_latency: int = 8,
    clock_mhz: float = 100.0,
) -> Platform:
    """A generic bus-based predictable multi-core.

    All cores are identical in-order RISC cores with private scratchpads, a
    shared on-chip SRAM and a round-robin arbitrated bus.  This is the
    "textbook" ARGO target used by most experiments.
    """
    if cores <= 0:
        raise ValueError("core count must be positive")
    proc = ProcessorModel(name="generic_riscv", clock_mhz=clock_mhz)
    core_list = [
        Core(core_id=i, processor=proc, scratchpad=scratchpad(f"spm{i}", spm_kib))
        for i in range(cores)
    ]
    return Platform(
        name=f"generic{cores}",
        cores=core_list,
        shared_memory=shared_sram(size_kib=shared_kib, latency=shared_latency),
        interconnect=RoundRobinBus(),
        description="Generic predictable multi-core (RR bus, scratchpads, shared SRAM)",
    )


def recore_xentium_like(
    dsp_cores: int = 8,
    control_cores: int = 1,
    spm_kib: int = 32,
    use_tdm_bus: bool = False,
) -> Platform:
    """A Recore-style heterogeneous many-core built from Xentium DSP tiles.

    The real platform is an "IP agnostic many-core ... including the Xentium
    processor and supporting more than hundred processors"; here we model a
    configurable number of Xentium-like DSP cores plus a few control cores,
    sharing an SRAM through either a round-robin or a TDM bus.
    """
    if dsp_cores <= 0:
        raise ValueError("need at least one DSP core")
    cores: list[Core] = []
    xentium = xentium_processor()
    control = ProcessorModel(name="arm_like_control", clock_mhz=200.0)
    for i in range(dsp_cores):
        cores.append(Core(core_id=i, processor=xentium, scratchpad=scratchpad(f"spm{i}", spm_kib)))
    for j in range(control_cores):
        cid = dsp_cores + j
        cores.append(Core(core_id=cid, processor=control, scratchpad=scratchpad(f"spm{cid}", spm_kib)))
    total = dsp_cores + control_cores
    interconnect = TDMBus(num_slots=total) if use_tdm_bus else FullCrossbar()
    return Platform(
        name=f"recore_xentium{total}",
        cores=cores,
        shared_memory=shared_sram(size_kib=2048, latency=6),
        interconnect=interconnect,
        description="Recore-style Xentium many-core (crossbar/TDM, scratchpads)",
    )


def kit_leon3_inoc(
    mesh_width: int = 2,
    mesh_height: int = 2,
    cores_per_tile: int = 2,
    spm_kib: int = 64,
) -> Platform:
    """A KIT-style tile-based many-core: Leon3 tiles on the invasive NoC.

    Each tile holds ``cores_per_tile`` Leon3-like cores with private
    scratchpads; tiles are connected by a ``mesh_width`` x ``mesh_height``
    mesh NoC with weighted-round-robin QoS routers providing latency and
    bandwidth guarantees (reference [12] of the paper).  External DRAM is
    reached through the NoC as well.
    """
    if cores_per_tile <= 0:
        raise ValueError("cores_per_tile must be positive")
    noc = MeshNoC(width=mesh_width, height=mesh_height)
    leon = leon3_processor()
    cores: list[Core] = []
    core_id = 0
    for tile in range(noc.num_tiles):
        for _ in range(cores_per_tile):
            cores.append(
                Core(
                    core_id=core_id,
                    processor=leon,
                    scratchpad=scratchpad(f"spm{core_id}", spm_kib),
                    tile=tile,
                )
            )
            core_id += 1
    return Platform(
        name=f"kit_leon3_{mesh_width}x{mesh_height}x{cores_per_tile}",
        cores=cores,
        shared_memory=external_dram(),
        interconnect=RoundRobinBus(beat_latency=3),
        noc=noc,
        description="KIT-style tile-based many-core (Leon3 tiles, iNoC mesh with WRR QoS)",
    )
