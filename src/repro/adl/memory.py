"""Memory regions of the ADL: scratchpads, shared on-chip SRAM, external DRAM.

Scratchpad memories are preferred over caches (paper Section III-B) because
they make every access latency statically known.  A cache-equipped region can
still be described (``MemoryKind.CACHED_DRAM``) but fails the predictability
check unless it is locked/partitioned.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MemoryKind(enum.Enum):
    """Classes of memory regions with different predictability properties."""

    SCRATCHPAD = "scratchpad"       # core-private, single-cycle-ish, private
    SHARED_SRAM = "shared_sram"     # on-chip shared memory behind interconnect
    DRAM = "dram"                   # external memory behind interconnect
    CACHED_DRAM = "cached_dram"     # DRAM behind a cache (unpredictable)


@dataclass(frozen=True)
class MemoryRegion:
    """A memory region with worst-case access latencies.

    ``read_latency``/``write_latency`` are per-access worst-case latencies in
    cycles *excluding* interconnect contention, which the system-level WCET
    analysis adds separately for shared regions.
    """

    name: str
    kind: MemoryKind
    size_bytes: int
    read_latency: int
    write_latency: int
    #: True when only one core can ever access the region (no interference).
    private: bool = False
    #: For CACHED_DRAM: whether the cache is locked/partitioned per core,
    #: which restores predictability at the price of capacity.
    cache_locked: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("memory size must be positive")
        if self.read_latency < 0 or self.write_latency < 0:
            raise ValueError("latencies must be non-negative")

    @property
    def is_shared(self) -> bool:
        return not self.private

    @property
    def is_predictable(self) -> bool:
        """True when every access has a statically bounded latency."""
        if self.kind is MemoryKind.CACHED_DRAM:
            return self.cache_locked
        return True

    def worst_access_latency(self) -> int:
        return max(self.read_latency, self.write_latency)


def scratchpad(name: str, size_kib: int = 64, latency: int = 1) -> MemoryRegion:
    """A core-private scratchpad region."""
    return MemoryRegion(
        name=name,
        kind=MemoryKind.SCRATCHPAD,
        size_bytes=size_kib * 1024,
        read_latency=latency,
        write_latency=latency,
        private=True,
    )


def shared_sram(name: str = "shared_sram", size_kib: int = 1024, latency: int = 8) -> MemoryRegion:
    """An on-chip shared SRAM region behind the interconnect."""
    return MemoryRegion(
        name=name,
        kind=MemoryKind.SHARED_SRAM,
        size_bytes=size_kib * 1024,
        read_latency=latency,
        write_latency=latency,
        private=False,
    )


def external_dram(name: str = "dram", size_mib: int = 256, latency: int = 40) -> MemoryRegion:
    """External DRAM; high worst-case latency but large capacity."""
    return MemoryRegion(
        name=name,
        kind=MemoryKind.DRAM,
        size_bytes=size_mib * 1024 * 1024,
        read_latency=latency,
        write_latency=latency + 5,
        private=False,
    )
