"""Platform-level ADL objects: cores, tiles and the whole platform.

A :class:`Platform` bundles the processors, the memory hierarchy and the
interconnect, and can audit itself against the predictable-architecture
guidelines of paper Section III-B (:meth:`Platform.check_predictability`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adl.interconnect import Interconnect
from repro.adl.memory import MemoryKind, MemoryRegion
from repro.adl.noc import MeshNoC
from repro.adl.processor import ProcessorModel


@dataclass
class Core:
    """One processing core with its private scratchpad."""

    core_id: int
    processor: ProcessorModel
    scratchpad: MemoryRegion
    #: Tile index for NoC-based platforms (several cores may share a tile).
    tile: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"core{self.core_id}"
        if not self.scratchpad.private:
            raise ValueError(
                f"core {self.core_id}: scratchpad region must be private"
            )

    @property
    def scratchpad_bytes(self) -> int:
        return self.scratchpad.size_bytes


@dataclass
class PredictabilityReport:
    """Result of auditing a platform against the Section III-B guidelines."""

    passed: bool
    violations: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed


@dataclass
class Platform:
    """A complete multi-/many-core platform description.

    Parameters
    ----------
    name:
        Platform identifier used in reports.
    cores:
        The processing cores.
    shared_memory:
        The shared memory region all cores can reach through ``interconnect``.
    interconnect:
        Interconnect between cores and shared memory (bus, crossbar or NoC).
    noc:
        Optional distinct NoC used for core-to-core communication; when absent
        inter-core messages also go through ``interconnect``.
    """

    name: str
    cores: list[Core]
    shared_memory: MemoryRegion
    interconnect: Interconnect
    noc: MeshNoC | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValueError("a platform needs at least one core")
        ids = [c.core_id for c in self.cores]
        if len(set(ids)) != len(ids):
            raise ValueError("core ids must be unique")
        if self.shared_memory.private:
            raise ValueError("the shared memory region cannot be private")

    # ------------------------------------------------------------------ #
    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def core(self, core_id: int) -> Core:
        for core in self.cores:
            if core.core_id == core_id:
                return core
        raise KeyError(f"no core with id {core_id} on platform {self.name!r}")

    def communication_fabric(self) -> Interconnect:
        """The fabric used for core-to-core data transfers."""
        return self.noc if self.noc is not None else self.interconnect

    def is_homogeneous(self) -> bool:
        names = {c.processor.name for c in self.cores}
        return len(names) == 1

    def min_scratchpad_bytes(self) -> int:
        return min(c.scratchpad_bytes for c in self.cores)

    # ------------------------------------------------------------------ #
    # worst-case delay helpers used by the WCET analyses and the simulator
    # ------------------------------------------------------------------ #
    def shared_read_latency(self, contenders: int) -> float:
        """Worst-case latency of one shared-memory read with ``contenders``."""
        return (
            self.shared_memory.read_latency
            + self.interconnect.worst_case_access_delay(contenders)
        )

    def shared_write_latency(self, contenders: int) -> float:
        return (
            self.shared_memory.write_latency
            + self.interconnect.worst_case_access_delay(contenders)
        )

    def communication_latency(
        self, num_bytes: int, src_core: int, dst_core: int, contenders: int = 0
    ) -> float:
        """Worst-case latency to move ``num_bytes`` between two cores."""
        if src_core == dst_core:
            return 0.0
        fabric = self.communication_fabric()
        if isinstance(fabric, MeshNoC):
            src_tile = self.core(src_core).tile
            dst_tile = self.core(dst_core).tile
            if src_tile == dst_tile:
                # Same tile: transfer through the tile-local memory.
                return fabric.flits_for(num_bytes) * fabric.flit_cycles
            return fabric.worst_case_packet_latency(num_bytes, src_tile, dst_tile, contenders)
        return fabric.worst_case_transfer_delay(num_bytes, contenders)

    # ------------------------------------------------------------------ #
    def check_predictability(self) -> PredictabilityReport:
        """Audit the platform against the Section III-B design guidelines.

        Checks performed:

        1. every processor is time-predictable (no dynamic branch prediction,
           prefetching, write buffers or cache coherence);
        2. every processor is fully timing compositional;
        3. cores use scratchpads (not caches) as local memory;
        4. the shared memory is predictable (no unlocked cache in front);
        5. the interconnect provides worst-case access and transfer delays.
        """
        violations: list[str] = []
        warnings: list[str] = []
        for core in self.cores:
            if not core.processor.is_predictable:
                violations.append(
                    f"{core.name}: processor {core.processor.name!r} enables "
                    "hard-to-predict speculative features"
                )
            if not core.processor.timing_compositional:
                violations.append(
                    f"{core.name}: processor {core.processor.name!r} is not "
                    "fully timing compositional"
                )
            if core.scratchpad.kind is not MemoryKind.SCRATCHPAD:
                violations.append(
                    f"{core.name}: local memory is {core.scratchpad.kind.value}, "
                    "expected a scratchpad"
                )
        if not self.shared_memory.is_predictable:
            violations.append(
                f"shared memory {self.shared_memory.name!r} has an unlocked "
                "cache in front of it"
            )
        if not self.interconnect.is_predictable():
            violations.append(
                f"interconnect {self.interconnect.name!r} provides no "
                "worst-case delay bounds"
            )
        if self.num_cores > 16 and self.noc is None:
            warnings.append(
                "more than 16 cores on a single bus: WCET estimates will be "
                "very pessimistic; consider a NoC-based platform"
            )
        return PredictabilityReport(passed=not violations, violations=violations, warnings=warnings)
