"""Loop transformations: unrolling, fission, index-set splitting, strip-mining.

These are the "predictability oriented task parallelism extraction through
loop transformations" of paper Section II-B.  Index-set splitting in
particular is cited by the paper (reference [10]) as a transformation whose
control overhead hurts average-case performance but which is "perfectly
viable and relevant in a predictable performance context": splitting a loop
with an interior condition into two condition-free loops removes the branch
from the worst-case path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.expressions import BinOp, Const, Var, substitute, try_evaluate_constant
from repro.ir.program import Function
from repro.ir.statements import Block, For, If, Stmt
from repro.ir.visitors import StatementTransformer, clone_block
from repro.transforms.base import FunctionPass, PassReport


def _constant_bounds(loop: For) -> tuple[int, int] | None:
    lower = try_evaluate_constant(loop.lower)
    upper = try_evaluate_constant(loop.upper)
    if lower is None or upper is None:
        return None
    return int(lower), int(upper)


@dataclass
class LoopUnrollPass(FunctionPass):
    """Fully unroll innermost counted loops with small constant trip counts.

    Unrolling removes per-iteration loop overhead from the WCET and exposes
    constant indices to later passes; it is only applied to loops with at most
    ``max_trip_count`` iterations to bound code growth.
    """

    max_trip_count: int = 8
    name = "loop_unroll"

    def run(self, function: Function) -> PassReport:
        unrolled = 0
        limit = self.max_trip_count

        class _Unroller(StatementTransformer):
            def visit_for(self, stmt: For):
                nonlocal unrolled
                bounds = _constant_bounds(stmt)
                if bounds is None:
                    return stmt
                # innermost only: no nested loops in the body
                if any(isinstance(s, For) for s in stmt.body.walk() if s is not stmt.body):
                    return stmt
                lower, upper = bounds
                trip = max(0, -(-(upper - lower) // stmt.step)) if stmt.step > 0 else 0
                if trip == 0 or trip > limit:
                    return stmt
                unrolled += 1
                replacement: list[Stmt] = []
                value = lower
                while value < upper:
                    body_copy = clone_block(stmt.body)
                    mapping = {stmt.index.name: Const(value)}
                    replacement.extend(_substitute_block(body_copy, mapping).stmts)
                    value += stmt.step
                return replacement

        function.body = _Unroller().transform_block(function.body)
        return PassReport(self.name, function.name, unrolled > 0, {"unrolled_loops": unrolled})


def _substitute_block(block: Block, mapping: dict[str, Const]) -> Block:
    class _Sub(StatementTransformer):
        def visit_expr(self, expr):
            return substitute(expr, mapping)

    return _Sub().transform_block(block)


@dataclass
class LoopFissionPass(FunctionPass):
    """Split loops whose body is a sequence of independent statements.

    A loop ``for i { S1; S2 }`` is split into ``for i { S1 }; for i { S2 }``
    when S2 does not read anything S1 writes (and vice versa for
    scalar temporaries).  Fission creates more, smaller tasks for the HTG
    extractor -- finer-grain parallelism at the price of extra loop overhead.
    """

    name = "loop_fission"

    def run(self, function: Function) -> PassReport:
        split = 0

        class _Fission(StatementTransformer):
            def visit_for(self, stmt: For):
                nonlocal split
                if len(stmt.body.stmts) < 2:
                    return stmt
                groups = _independent_groups(stmt.body.stmts)
                if len(groups) < 2:
                    return stmt
                split += 1
                loops: list[Stmt] = []
                for group in groups:
                    loops.append(
                        For(
                            index=stmt.index,
                            lower=stmt.lower,
                            upper=stmt.upper,
                            body=Block(list(group)),
                            step=stmt.step,
                            max_trip_count=stmt.max_trip_count,
                            parallelizable=stmt.parallelizable,
                        )
                    )
                return loops

        function.body = _Fission().transform_block(function.body)
        return PassReport(self.name, function.name, split > 0, {"fissioned_loops": split})


def _independent_groups(stmts: list[Stmt]) -> list[list[Stmt]]:
    """Greedily partition statements into groups with no def-use crossing."""
    groups: list[list[Stmt]] = []
    group_writes: list[set[str]] = []
    for stmt in stmts:
        reads, writes = stmt.variables_read(), stmt.variables_written()
        for s in stmt.walk():
            reads |= s.variables_read()
            writes |= s.variables_written()
        placed = False
        for i in range(len(groups)):
            # must go into the earliest group it depends on, or a new group
            if reads & group_writes[i] or writes & group_writes[i]:
                groups[i].append(stmt)
                group_writes[i] |= writes
                placed = True
                break
        if not placed:
            groups.append([stmt])
            group_writes.append(set(writes))
    return groups


@dataclass
class IndexSetSplittingPass(FunctionPass):
    """Split loops at conditions of the form ``i < K`` / ``i >= K``.

    When a loop body is a single ``if (i < K) A else B`` (with constant K and
    ``i`` the loop variable), the loop is split into ``[lower, K)`` running A
    and ``[K, upper)`` running B, removing the branch entirely (Griebl et al.,
    reference [10] of the paper).
    """

    name = "index_set_splitting"

    def run(self, function: Function) -> PassReport:
        performed = 0

        class _Splitter(StatementTransformer):
            def visit_for(self, stmt: For):
                nonlocal performed
                bounds = _constant_bounds(stmt)
                if bounds is None or len(stmt.body.stmts) != 1:
                    return stmt
                inner = stmt.body.stmts[0]
                if not isinstance(inner, If):
                    return stmt
                pivot = _split_point(inner.cond, stmt.index.name)
                if pivot is None:
                    return stmt
                lower, upper = bounds
                if not (lower < pivot < upper):
                    return stmt
                performed += 1
                first = For(
                    index=stmt.index,
                    lower=Const(lower),
                    upper=Const(pivot),
                    body=clone_block(inner.then_body),
                    step=stmt.step,
                )
                second = For(
                    index=stmt.index,
                    lower=Const(pivot),
                    upper=Const(upper),
                    body=clone_block(inner.else_body),
                    step=stmt.step,
                )
                result: list[Stmt] = [first]
                if second.body.stmts:
                    result.append(second)
                return result

        function.body = _Splitter().transform_block(function.body)
        return PassReport(self.name, function.name, performed > 0, {"split_loops": performed})


def _split_point(cond, index_name: str) -> int | None:
    if not isinstance(cond, BinOp):
        return None
    if not (isinstance(cond.left, Var) and cond.left.name == index_name):
        return None
    threshold = try_evaluate_constant(cond.right)
    if threshold is None:
        return None
    if cond.op == "<":
        return int(threshold)
    if cond.op == "<=":
        return int(threshold) + 1
    return None


@dataclass
class StripMinePass(FunctionPass):
    """Strip-mine (1-D tile) large counted loops into nested chunk loops.

    ``for i in [0, N)`` becomes ``for ii in [0, N/T): for i in [ii*T, ii*T+T)``
    which gives the HTG extractor natural chunk boundaries and improves
    scratchpad locality for blocked data transfers.
    """

    tile: int = 16
    min_trip_count: int = 32
    name = "strip_mine"

    def run(self, function: Function) -> PassReport:
        mined = 0
        tile = self.tile
        min_trip = self.min_trip_count

        class _Miner(StatementTransformer):
            def visit_for(self, stmt: For):
                nonlocal mined
                bounds = _constant_bounds(stmt)
                if bounds is None:
                    return stmt
                lower, upper = bounds
                trip = upper - lower
                if trip < min_trip or trip % tile != 0 or stmt.step != 1 or lower != 0:
                    return stmt
                mined += 1
                outer_index = Var(f"{stmt.index.name}{stmt.index.name}", stmt.index.type)
                inner = For(
                    index=stmt.index,
                    lower=BinOp("*", outer_index, Const(tile)),
                    upper=BinOp("+", BinOp("*", outer_index, Const(tile)), Const(tile)),
                    body=stmt.body,
                    step=1,
                    max_trip_count=tile,
                    parallelizable=stmt.parallelizable,
                )
                outer = For(
                    index=outer_index,
                    lower=Const(0),
                    upper=Const(trip // tile),
                    body=Block([inner]),
                    step=1,
                    parallelizable=stmt.parallelizable,
                )
                return outer

        function.body = _Miner().transform_block(function.body)
        return PassReport(self.name, function.name, mined > 0, {"strip_mined_loops": mined})
