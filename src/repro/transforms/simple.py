"""Scalar clean-up passes: constant folding and dead-code elimination."""

from __future__ import annotations

from repro.ir.expressions import Const, Expr, try_evaluate_constant
from repro.ir.program import Function
from repro.ir.statements import Assign, For, If, Stmt, While
from repro.ir.visitors import StatementTransformer
from repro.transforms.base import FunctionPass, PassReport


class _Folder(StatementTransformer):
    def __init__(self) -> None:
        self.folded = 0

    def visit_expr(self, expr: Expr) -> Expr:
        if isinstance(expr, Const):
            return expr
        value = try_evaluate_constant(expr)
        if value is None:
            return expr
        self.folded += 1
        if isinstance(value, bool):
            return Const(value)
        if isinstance(value, float) and value.is_integer() and abs(value) < 2**31:
            return Const(int(value))
        return Const(value)

    def visit_if(self, stmt: If) -> Stmt | list[Stmt]:
        cond = try_evaluate_constant(stmt.cond)
        if cond is None:
            return stmt
        self.folded += 1
        return list(stmt.then_body.stmts) if cond else list(stmt.else_body.stmts)


class ConstantFoldingPass(FunctionPass):
    """Fold constant sub-expressions and statically-decided branches."""

    name = "constant_folding"

    def run(self, function: Function) -> PassReport:
        folder = _Folder()
        function.body = folder.transform_block(function.body)
        return PassReport(self.name, function.name, folder.folded > 0, {"folded": folder.folded})


def _written_then_used(function: Function) -> set[str]:
    """Names whose value is observable: read anywhere, or non-local storage."""
    observable: set[str] = set()
    from repro.ir.program import Storage

    for decl in function.all_decls():
        if decl.storage is not Storage.LOCAL:
            observable.add(decl.name)
    for stmt in function.body.walk():
        observable |= stmt.variables_read()
    return observable


class DeadCodeEliminationPass(FunctionPass):
    """Remove assignments to local scalars that are never read.

    Array writes and writes to shared/input/output storage are always kept
    (they are observable).  The pass is conservative: it only looks at whole
    names, not at individual elements or live ranges.
    """

    name = "dead_code_elimination"

    def run(self, function: Function) -> PassReport:
        observable = _written_then_used(function)
        removed = 0

        class _Pruner(StatementTransformer):
            def visit_assign(self, stmt: Assign):
                nonlocal removed
                from repro.ir.expressions import Var

                if isinstance(stmt.target, Var) and stmt.target.name not in observable:
                    removed += 1
                    return []
                return stmt

        function.body = _Pruner().transform_block(function.body)
        # also drop now-empty loops (their only content was dead assignments)
        cleaned = 0

        class _EmptyLoopPruner(StatementTransformer):
            def visit_for(self, stmt: For):
                nonlocal cleaned
                if not stmt.body.stmts:
                    cleaned += 1
                    return []
                return stmt

            def visit_while(self, stmt: While):
                nonlocal cleaned
                if not stmt.body.stmts:
                    cleaned += 1
                    return []
                return stmt

        function.body = _EmptyLoopPruner().transform_block(function.body)
        return PassReport(
            self.name,
            function.name,
            removed + cleaned > 0,
            {"removed_assignments": removed, "removed_empty_loops": cleaned},
        )
