"""WCET-directed scratchpad allocation (paper reference [6]).

Shared arrays that fit in the core-private scratchpad are relocated there,
which (i) removes their access latency from the worst-case path and (ii)
removes them from the set of interference-prone shared accesses the
system-level analysis has to inflate.  Selection is a greedy knapsack on
*worst-case accesses per byte*, the classic WCET-directed SPM heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.analysis import access_summary
from repro.ir.program import Function, Storage
from repro.transforms.base import FunctionPass, PassReport


@dataclass
class SpmAllocation:
    """Result of a scratchpad allocation decision."""

    moved: list[str] = field(default_factory=list)
    kept_shared: list[str] = field(default_factory=list)
    used_bytes: int = 0
    capacity_bytes: int = 0
    #: Estimated saved worst-case cycles (shared latency minus SPM latency,
    #: times the worst-case access count of every moved array).
    estimated_saving_cycles: float = 0.0


def allocate_scratchpad(
    function: Function,
    capacity_bytes: int,
    shared_latency: float = 8.0,
    spm_latency: float = 1.0,
    protect: set[str] | None = None,
) -> SpmAllocation:
    """Choose shared arrays to relocate into the scratchpad.

    ``protect`` lists arrays that must remain shared (e.g. buffers written by
    one core and read by another -- the caller knows the task mapping).
    Returns the allocation decision; the caller applies it either by mutating
    the IR declarations (:class:`ScratchpadAllocationPass`) or through the
    cost-model override used during design-space exploration.
    """
    if capacity_bytes < 0:
        raise ValueError("capacity must be non-negative")
    protect = protect or set()
    summary = access_summary(function.body)
    access_count: dict[str, int] = {}
    for name, count in summary.reads.items():
        access_count[name] = access_count.get(name, 0) + count
    for name, count in summary.writes.items():
        access_count[name] = access_count.get(name, 0) + count

    candidates = []
    for decl in function.arrays():
        if decl.storage not in (Storage.SHARED, Storage.INPUT, Storage.OUTPUT):
            continue
        if decl.name in protect:
            continue
        accesses = access_count.get(decl.name, 0)
        if accesses == 0:
            continue
        candidates.append((accesses / decl.size_bytes, accesses, decl))
    candidates.sort(key=lambda item: (-item[0], item[2].name))

    allocation = SpmAllocation(capacity_bytes=capacity_bytes)
    remaining = capacity_bytes
    per_access_gain = max(0.0, shared_latency - spm_latency)
    for _, accesses, decl in candidates:
        if decl.size_bytes <= remaining:
            allocation.moved.append(decl.name)
            allocation.used_bytes += decl.size_bytes
            allocation.estimated_saving_cycles += accesses * per_access_gain
            remaining -= decl.size_bytes
        else:
            allocation.kept_shared.append(decl.name)
    return allocation


@dataclass
class ScratchpadAllocationPass(FunctionPass):
    """Apply :func:`allocate_scratchpad` by rewriting storage classes.

    Only plain ``SHARED`` arrays are relocated in place; ``INPUT``/``OUTPUT``
    parameters keep their storage class (they belong to the caller) -- callers
    that want those staged into the SPM should use the cost-model override
    returned in the report details.
    """

    capacity_bytes: int = 64 * 1024
    shared_latency: float = 8.0
    spm_latency: float = 1.0
    protect: set[str] = field(default_factory=set)
    name = "scratchpad_allocation"

    def run(self, function: Function) -> PassReport:
        allocation = allocate_scratchpad(
            function,
            self.capacity_bytes,
            self.shared_latency,
            self.spm_latency,
            self.protect,
        )
        moved_in_place = []
        for decl in function.decls:
            if decl.name in allocation.moved and decl.storage is Storage.SHARED:
                decl.storage = Storage.SCRATCHPAD
                moved_in_place.append(decl.name)
        return PassReport(
            self.name,
            function.name,
            bool(moved_in_place),
            {
                "moved": ",".join(allocation.moved),
                "moved_in_place": len(moved_in_place),
                "used_bytes": allocation.used_bytes,
                "estimated_saving_cycles": allocation.estimated_saving_cycles,
            },
        )
