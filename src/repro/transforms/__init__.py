"""Predictability-enhancing source-to-source transformations (GeCoS stage).

Paper Section II-B: the IR "is used as input by the GeCoS source-to-source
transformation framework, which performs several predictability enhancing
program transformations (scratchpad management for data, predictability
oriented task parallelism extraction through loop transformations, etc.)".

Provided passes:

* :mod:`repro.transforms.simple` -- constant folding and dead-code
  elimination (enablers for the loop transformations);
* :mod:`repro.transforms.loop_transforms` -- loop unrolling, loop fission,
  index-set splitting and strip-mining/tiling;
* :mod:`repro.transforms.scratchpad` -- WCET-directed scratchpad allocation
  (reference [6] of the paper);
* :class:`repro.transforms.base.PassManager` -- ordered application of passes
  with per-pass reporting;
* :mod:`repro.transforms.registry` -- the named-pass plugin registry the
  pipeline's ``transforms`` stage resolves ``ToolchainConfig.passes``
  through (third parties add passes with
  :func:`~repro.transforms.registry.register_pass`).
"""

from repro.transforms.base import FunctionPass, PassManager, PassReport
from repro.transforms.registry import (
    PassContext,
    PassRegistryError,
    RegisteredPass,
    available_passes,
    build_pass_pipeline,
    get_pass,
    register_pass,
    unregister_pass,
)
from repro.transforms.simple import ConstantFoldingPass, DeadCodeEliminationPass
from repro.transforms.loop_transforms import (
    LoopUnrollPass,
    LoopFissionPass,
    IndexSetSplittingPass,
    StripMinePass,
)
from repro.transforms.scratchpad import ScratchpadAllocationPass, allocate_scratchpad

__all__ = [
    "FunctionPass",
    "PassManager",
    "PassReport",
    "PassContext",
    "PassRegistryError",
    "RegisteredPass",
    "available_passes",
    "build_pass_pipeline",
    "get_pass",
    "register_pass",
    "unregister_pass",
    "ConstantFoldingPass",
    "DeadCodeEliminationPass",
    "LoopUnrollPass",
    "LoopFissionPass",
    "IndexSetSplittingPass",
    "StripMinePass",
    "ScratchpadAllocationPass",
    "allocate_scratchpad",
]
