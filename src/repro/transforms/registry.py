"""Plugin registry for predictability-enhancing transformation passes.

``ToolchainConfig.passes`` names the pass pipeline as an *ordered list of
registered pass names* (instead of a fixed set of booleans); the pipeline's
``transforms`` stage resolves each name through this registry and runs the
resulting :class:`~repro.transforms.base.FunctionPass` objects in order.

A registered entry is a *factory*: it receives the :class:`PassContext` of
the running flow (platform, config, compiled model) and returns a configured
pass instance.  That indirection is what lets platform-dependent passes --
scratchpad allocation needs the platform's memory latencies and capacity --
participate in a declarative, order-only configuration.

Third parties plug in passes with the :func:`register_pass` decorator::

    from repro.transforms.registry import register_pass

    @register_pass("my_normalizer")
    def build_my_normalizer(context):
        return MyNormalizerPass(threshold=context.config.seed)

    ToolchainConfig(passes=["constant_folding", "my_normalizer"])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.frontend import protected_signal_names
from repro.transforms.base import FunctionPass
from repro.transforms.simple import ConstantFoldingPass, DeadCodeEliminationPass
from repro.transforms.scratchpad import ScratchpadAllocationPass
from repro.utils.registry import Registry, first_doc_line


class PassRegistryError(ValueError):
    """Unknown, duplicate or malformed pass registration/lookup."""


@dataclass
class PassContext:
    """What a pass factory may observe when instantiating its pass.

    ``platform`` is the target :class:`~repro.adl.architecture.Platform`,
    ``config`` the flow's :class:`~repro.core.config.ToolchainConfig` and
    ``model`` the :class:`~repro.frontend.CompiledModel` the pass pipeline is
    about to transform (factories must not mutate it -- that is the job of
    the passes themselves).
    """

    platform: Any
    config: Any
    model: Any


PassFactory = Callable[[PassContext], FunctionPass]


@dataclass(frozen=True)
class RegisteredPass:
    """One pluggable transformation pass."""

    name: str
    factory: PassFactory
    description: str = ""


_REGISTRY: Registry[RegisteredPass] = Registry(
    "transformation pass", PassRegistryError, kind_plural="passes"
)


def register_pass(
    name: str, *, description: str = "", replace: bool = False
) -> Callable[[PassFactory], PassFactory]:
    """Decorator registering a pass factory under ``name``."""

    def decorator(factory: PassFactory) -> PassFactory:
        doc = description or first_doc_line(factory)
        _REGISTRY.register(
            name, RegisteredPass(name=name, factory=factory, description=doc), replace
        )
        return factory

    return decorator


def unregister_pass(name: str) -> None:
    """Remove a registration (primarily for tests); unknown names are a no-op."""
    _REGISTRY.unregister(name)


def get_pass(name: str) -> RegisteredPass:
    """Look up a pass factory by name, raising with the known names on a miss."""
    return _REGISTRY.get(name)


def available_passes() -> tuple[str, ...]:
    """Sorted names of every registered pass."""
    return _REGISTRY.available()


def build_pass_pipeline(names, context: PassContext) -> list[FunctionPass]:
    """Instantiate the named passes, in order, for one flow run."""
    return [get_pass(name).factory(context) for name in names]


# ---------------------------------------------------------------------- #
# built-in passes
# ---------------------------------------------------------------------- #
@register_pass("constant_folding", description="fold constant expressions")
def _constant_folding(context: PassContext) -> FunctionPass:
    return ConstantFoldingPass()


@register_pass("dead_code_elimination", description="remove unused assignments")
def _dead_code_elimination(context: PassContext) -> FunctionPass:
    return DeadCodeEliminationPass()


@register_pass(
    "ir_verifier",
    description="structural + dataflow IR lint; reports findings, never mutates",
)
def _ir_verifier(context: PassContext) -> FunctionPass:
    from repro.analysis.verifier import IRVerifierPass

    return IRVerifierPass()


@register_pass(
    "scratchpad_allocation",
    description="WCET-directed promotion of block-local state to scratchpads",
)
def _scratchpad_allocation(context: PassContext) -> FunctionPass:
    platform, config = context.platform, context.config
    capacity = (
        config.scratchpad_capacity_bytes
        if config.scratchpad_capacity_bytes is not None
        else platform.min_scratchpad_bytes()
    )
    return ScratchpadAllocationPass(
        capacity_bytes=capacity,
        shared_latency=platform.shared_memory.read_latency,
        spm_latency=platform.cores[0].scratchpad.read_latency,
        protect=protected_signal_names(context.model.entry),
    )
