"""Transformation pass infrastructure."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.program import Function


@dataclass
class PassReport:
    """What a pass did to a function (for the cross-layer report)."""

    pass_name: str
    function_name: str
    changed: bool
    details: dict[str, float | int | str] = field(default_factory=dict)


class FunctionPass:
    """Base class: a transformation applied to one IR function in place."""

    name = "pass"

    def run(self, function: Function) -> PassReport:
        raise NotImplementedError


@dataclass
class PassManager:
    """Applies an ordered list of passes and collects their reports."""

    passes: list[FunctionPass] = field(default_factory=list)

    def add(self, pass_: FunctionPass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, function: Function) -> list[PassReport]:
        reports = []
        for pass_ in self.passes:
            reports.append(pass_.run(function))
        return reports
