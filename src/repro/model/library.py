"""Standard block library (the Xcos palette equivalent).

Every factory returns a :class:`~repro.model.blocks.Block` whose behaviour is
written in the mini-Scilab subset that both the interpreter and the IR
lowering understand.  Vector blocks loop explicitly over their elements so
that the generated IR has countable loops (a WCET requirement).
"""

from __future__ import annotations

import numpy as np

from repro.model.blocks import Block, Port


def _vec(shape: int | tuple[int, ...]) -> tuple[int, ...]:
    if isinstance(shape, int):
        return (shape,)
    return tuple(shape)


def constant(name: str, value: float) -> Block:
    """A scalar constant source."""
    return Block(
        name=name,
        kind="constant",
        outputs=[Port("y")],
        params={"value": float(value)},
        behavior="y = value",
    )


def vector_source(name: str, size: int, values: np.ndarray | None = None) -> Block:
    """A constant vector source (terrain rows, filter taps, test stimuli)."""
    data = np.zeros(size) if values is None else np.asarray(values, dtype=float)
    if data.shape != (size,):
        raise ValueError(f"values must have shape ({size},)")
    return Block(
        name=name,
        kind="vector_source",
        outputs=[Port("y", (size,))],
        params={"n": size, "data": data},
        behavior=(
            "for i = 1:n\n"
            "  y(i) = data(i)\n"
            "end"
        ),
    )


def gain(name: str, k: float, size: int = 1) -> Block:
    """Multiply a signal by a constant gain (scalar or elementwise)."""
    if size == 1:
        return Block(
            name=name,
            kind="gain",
            inputs=[Port("u")],
            outputs=[Port("y")],
            params={"k": float(k)},
            behavior="y = k * u",
        )
    return Block(
        name=name,
        kind="gain",
        inputs=[Port("u", (size,))],
        outputs=[Port("y", (size,))],
        params={"k": float(k), "n": size},
        behavior=(
            "for i = 1:n\n"
            "  y(i) = k * u(i)\n"
            "end"
        ),
    )


def add(name: str, size: int = 1, sign_b: float = 1.0) -> Block:
    """Sum (or difference when ``sign_b = -1``) of two signals."""
    if size == 1:
        return Block(
            name=name,
            kind="add",
            inputs=[Port("a"), Port("b")],
            outputs=[Port("y")],
            params={"sb": float(sign_b)},
            behavior="y = a + sb * b",
        )
    return Block(
        name=name,
        kind="add",
        inputs=[Port("a", (size,)), Port("b", (size,))],
        outputs=[Port("y", (size,))],
        params={"n": size, "sb": float(sign_b)},
        behavior=(
            "for i = 1:n\n"
            "  y(i) = a(i) + sb * b(i)\n"
            "end"
        ),
    )


def product(name: str, size: int = 1) -> Block:
    """Elementwise product of two signals."""
    if size == 1:
        return Block(
            name=name,
            kind="product",
            inputs=[Port("a"), Port("b")],
            outputs=[Port("y")],
            behavior="y = a * b",
        )
    return Block(
        name=name,
        kind="product",
        inputs=[Port("a", (size,)), Port("b", (size,))],
        outputs=[Port("y", (size,))],
        params={"n": size},
        behavior=(
            "for i = 1:n\n"
            "  y(i) = a(i) * b(i)\n"
            "end"
        ),
    )


def saturation(name: str, lower: float, upper: float, size: int = 1) -> Block:
    """Clamp a signal into ``[lower, upper]``."""
    if size == 1:
        return Block(
            name=name,
            kind="saturation",
            inputs=[Port("u")],
            outputs=[Port("y")],
            params={"lo": float(lower), "hi": float(upper)},
            behavior=(
                "y = u\n"
                "if u < lo then\n"
                "  y = lo\n"
                "end\n"
                "if u > hi then\n"
                "  y = hi\n"
                "end"
            ),
        )
    return Block(
        name=name,
        kind="saturation",
        inputs=[Port("u", (size,))],
        outputs=[Port("y", (size,))],
        params={"lo": float(lower), "hi": float(upper), "n": size},
        behavior=(
            "for i = 1:n\n"
            "  y(i) = u(i)\n"
            "  if u(i) < lo then\n"
            "    y(i) = lo\n"
            "  end\n"
            "  if u(i) > hi then\n"
            "    y(i) = hi\n"
            "  end\n"
            "end"
        ),
    )


def threshold(name: str, level: float, size: int = 1) -> Block:
    """Binary comparator: ``y = 1`` where the input exceeds ``level``."""
    if size == 1:
        return Block(
            name=name,
            kind="threshold",
            inputs=[Port("u")],
            outputs=[Port("y")],
            params={"level": float(level)},
            behavior=(
                "y = 0\n"
                "if u > level then\n"
                "  y = 1\n"
                "end"
            ),
        )
    return Block(
        name=name,
        kind="threshold",
        inputs=[Port("u", (size,))],
        outputs=[Port("y", (size,))],
        params={"level": float(level), "n": size},
        behavior=(
            "for i = 1:n\n"
            "  y(i) = 0\n"
            "  if u(i) > level then\n"
            "    y(i) = 1\n"
            "  end\n"
            "end"
        ),
    )


def unit_delay(name: str, size: int = 1) -> Block:
    """One-sample delay; the block that legally breaks feedback cycles."""
    if size == 1:
        return Block(
            name=name,
            kind="unit_delay",
            inputs=[Port("u")],
            outputs=[Port("y")],
            state={"z": 0.0},
            behavior=(
                "y = z\n"
                "z = u"
            ),
        )
    return Block(
        name=name,
        kind="unit_delay",
        inputs=[Port("u", (size,))],
        outputs=[Port("y", (size,))],
        params={"n": size},
        state={"z": np.zeros(size)},
        behavior=(
            "for i = 1:n\n"
            "  y(i) = z(i)\n"
            "end\n"
            "for i = 1:n\n"
            "  z(i) = u(i)\n"
            "end"
        ),
    )


def discrete_integrator(name: str, dt: float = 1.0) -> Block:
    """Forward-Euler discrete integrator with internal accumulator state."""
    return Block(
        name=name,
        kind="integrator",
        inputs=[Port("u")],
        outputs=[Port("y")],
        params={"dt": float(dt)},
        state={"acc": 0.0},
        behavior=(
            "acc = acc + dt * u\n"
            "y = acc"
        ),
    )


def fir_filter(name: str, taps: np.ndarray, size: int) -> Block:
    """FIR filter applied along a signal vector (zero-padded at the left)."""
    taps = np.asarray(taps, dtype=float)
    ntaps = taps.shape[0]
    return Block(
        name=name,
        kind="fir",
        inputs=[Port("u", (size,))],
        outputs=[Port("y", (size,))],
        params={"h": taps, "nt": ntaps, "n": size},
        behavior=(
            "for i = 1:n\n"
            "  acc = 0\n"
            "  for k = 1:nt\n"
            "    j = i - k + 1\n"
            "    if j >= 1 then\n"
            "      acc = acc + h(k) * u(j)\n"
            "    end\n"
            "  end\n"
            "  y(i) = acc\n"
            "end"
        ),
    )


def moving_average(name: str, window: int, size: int) -> Block:
    """Moving average over a window (a common smoothing stage)."""
    return fir_filter(name, np.full(window, 1.0 / window), size)


def dot_product(name: str, size: int) -> Block:
    """Inner product of two vectors producing a scalar."""
    return Block(
        name=name,
        kind="dot",
        inputs=[Port("a", (size,)), Port("b", (size,))],
        outputs=[Port("y")],
        params={"n": size},
        behavior=(
            "acc = 0\n"
            "for i = 1:n\n"
            "  acc = acc + a(i) * b(i)\n"
            "end\n"
            "y = acc"
        ),
    )


def vector_norm(name: str, size: int) -> Block:
    """Euclidean norm of a vector."""
    return Block(
        name=name,
        kind="norm",
        inputs=[Port("u", (size,))],
        outputs=[Port("y")],
        params={"n": size},
        behavior=(
            "acc = 0\n"
            "for i = 1:n\n"
            "  acc = acc + u(i) * u(i)\n"
            "end\n"
            "y = sqrt(acc)"
        ),
    )


def matrix_vector(name: str, rows: int, cols: int) -> Block:
    """Dense matrix-vector product ``y = A * x``."""
    return Block(
        name=name,
        kind="matvec",
        inputs=[Port("A", (rows, cols)), Port("x", (cols,))],
        outputs=[Port("y", (rows,))],
        params={"nr": rows, "nc": cols},
        behavior=(
            "for i = 1:nr\n"
            "  acc = 0\n"
            "  for j = 1:nc\n"
            "    acc = acc + A(i, j) * x(j)\n"
            "  end\n"
            "  y(i) = acc\n"
            "end"
        ),
    )


def elementwise(name: str, func: str, size: int = 1) -> Block:
    """Apply a unary math builtin (``sqrt``, ``sin``, ``abs`` ...) elementwise."""
    allowed = {"sqrt", "sin", "cos", "tan", "exp", "log", "abs", "floor", "ceil"}
    if func not in allowed:
        raise ValueError(f"unsupported elementwise function {func!r}")
    if size == 1:
        return Block(
            name=name,
            kind=f"elementwise_{func}",
            inputs=[Port("u")],
            outputs=[Port("y")],
            behavior=f"y = {func}(u)",
        )
    return Block(
        name=name,
        kind=f"elementwise_{func}",
        inputs=[Port("u", (size,))],
        outputs=[Port("y", (size,))],
        params={"n": size},
        behavior=(
            "for i = 1:n\n"
            f"  y(i) = {func}(u(i))\n"
            "end"
        ),
    )


def lookup_1d(name: str, table: np.ndarray, size: int = 1) -> Block:
    """Nearest-entry 1-D lookup table indexed by a bounded integer signal."""
    table = np.asarray(table, dtype=float)
    nt = table.shape[0]
    clamp_script = (
        "idx = floor(u) + 1\n"
        "if idx < 1 then\n"
        "  idx = 1\n"
        "end\n"
        f"if idx > {nt} then\n"
        f"  idx = {nt}\n"
        "end\n"
        "y = tbl(idx)"
    )
    if size == 1:
        return Block(
            name=name,
            kind="lookup1d",
            inputs=[Port("u")],
            outputs=[Port("y")],
            params={"tbl": table},
            behavior=clamp_script,
        )
    body = (
        "for i = 1:n\n"
        "  idx = floor(u(i)) + 1\n"
        "  if idx < 1 then\n"
        "    idx = 1\n"
        "  end\n"
        f"  if idx > {nt} then\n"
        f"    idx = {nt}\n"
        "  end\n"
        "  y(i) = tbl(idx)\n"
        "end"
    )
    return Block(
        name=name,
        kind="lookup1d",
        inputs=[Port("u", (size,))],
        outputs=[Port("y", (size,))],
        params={"tbl": table, "n": size},
        behavior=body,
    )


def switch(name: str, size: int = 1) -> Block:
    """Select between two inputs based on a scalar control signal."""
    if size == 1:
        return Block(
            name=name,
            kind="switch",
            inputs=[Port("ctrl"), Port("a"), Port("b")],
            outputs=[Port("y")],
            behavior=(
                "y = b\n"
                "if ctrl > 0.5 then\n"
                "  y = a\n"
                "end"
            ),
        )
    return Block(
        name=name,
        kind="switch",
        inputs=[Port("ctrl"), Port("a", (size,)), Port("b", (size,))],
        outputs=[Port("y", (size,))],
        params={"n": size},
        behavior=(
            "for i = 1:n\n"
            "  y(i) = b(i)\n"
            "  if ctrl > 0.5 then\n"
            "    y(i) = a(i)\n"
            "  end\n"
            "end"
        ),
    )


def scalar_max(name: str, size: int) -> Block:
    """Maximum element of a vector (alarm aggregation)."""
    return Block(
        name=name,
        kind="reduce_max",
        inputs=[Port("u", (size,))],
        outputs=[Port("y")],
        params={"n": size},
        behavior=(
            "best = u(1)\n"
            "for i = 2:n\n"
            "  if u(i) > best then\n"
            "    best = u(i)\n"
            "  end\n"
            "end\n"
            "y = best"
        ),
    )


def window_min(name: str, size: int) -> Block:
    """Minimum element of a vector (e.g. closest obstacle distance)."""
    return Block(
        name=name,
        kind="reduce_min",
        inputs=[Port("u", (size,))],
        outputs=[Port("y")],
        params={"n": size},
        behavior=(
            "best = u(1)\n"
            "for i = 2:n\n"
            "  if u(i) < best then\n"
            "    best = u(i)\n"
            "  end\n"
            "end\n"
            "y = best"
        ),
    )
