"""Dataflow blocks with mini-Scilab behaviours.

A :class:`Block` is the Xcos component equivalent: named input/output ports
with static shapes, numeric parameters, optional internal state (for delays /
integrators) and a behaviour script written in the mini-Scilab subset.  The
behaviour is the single source of truth: the model-level simulation runs it
through :class:`~repro.model.scilab.ScilabInterpreter`, and the front end
compiles the very same script to IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.model.scilab import ScilabInterpreter, parse_script
from repro.model.scilab.ast import Script, assigned_names


@dataclass(frozen=True)
class Port:
    """A typed block port; ``shape == ()`` denotes a scalar signal."""

    name: str
    shape: tuple[int, ...] = ()

    @property
    def is_scalar(self) -> bool:
        return self.shape == ()

    @property
    def num_elements(self) -> int:
        result = 1
        for dim in self.shape:
            result *= dim
        return result


class BlockError(ValueError):
    """Raised for ill-formed blocks or evaluation failures."""


@dataclass
class Block:
    """A dataflow block.

    Parameters
    ----------
    name:
        Unique instance name within a diagram.
    kind:
        Library kind (``"gain"``, ``"fir"``, ...), used in reports.
    inputs / outputs:
        Port lists.  Port names are the variable names the behaviour script
        uses.
    params:
        Numeric parameters (scalars or numpy arrays) bound as read-only
        variables in the behaviour.
    behavior:
        Mini-Scilab source text.
    state:
        Initial values of state variables (arrays or scalars); the behaviour
        may read and assign them, and the new values persist across steps.
    """

    name: str
    kind: str
    inputs: list[Port] = field(default_factory=list)
    outputs: list[Port] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)
    behavior: str = ""
    state: dict[str, Any] = field(default_factory=dict)
    #: Estimated worst-case iterations hint for data-dependent loops (rare).
    annotations: dict[str, Any] = field(default_factory=dict)

    _parsed: Script | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise BlockError("block name cannot be empty")
        port_names = [p.name for p in self.inputs] + [p.name for p in self.outputs]
        if len(set(port_names)) != len(port_names):
            raise BlockError(f"block {self.name!r}: duplicate port names")
        clash = set(port_names) & set(self.params)
        if clash:
            raise BlockError(f"block {self.name!r}: params shadow ports: {sorted(clash)}")

    # ------------------------------------------------------------------ #
    @property
    def script(self) -> Script:
        """The parsed behaviour (cached)."""
        if self._parsed is None:
            object.__setattr__(self, "_parsed", parse_script(self.behavior))
        return self._parsed  # type: ignore[return-value]

    def input_port(self, name: str) -> Port:
        for port in self.inputs:
            if port.name == name:
                return port
        raise KeyError(f"block {self.name!r} has no input port {name!r}")

    def output_port(self, name: str) -> Port:
        for port in self.outputs:
            if port.name == name:
                return port
        raise KeyError(f"block {self.name!r} has no output port {name!r}")

    def is_stateful(self) -> bool:
        return bool(self.state)

    def validate(self) -> None:
        """Check that the behaviour assigns every output port."""
        assigned = assigned_names(self.script)
        missing = [p.name for p in self.outputs if p.name not in assigned]
        if missing:
            raise BlockError(
                f"block {self.name!r}: behaviour never assigns outputs {missing}"
            )

    # ------------------------------------------------------------------ #
    def evaluate(self, inputs: Mapping[str, Any]) -> dict[str, Any]:
        """Run the behaviour once and return the output port values.

        ``inputs`` maps input port names to scalars / arrays.  Internal state
        is updated in place on the block instance.
        """
        env: dict[str, Any] = {}
        for key, value in self.params.items():
            env[key] = value
        for key, value in self.state.items():
            env[key] = np.array(value, dtype=float) if not np.isscalar(value) else float(value)
        for port in self.inputs:
            if port.name not in inputs:
                raise BlockError(f"block {self.name!r}: missing input {port.name!r}")
            env[port.name] = inputs[port.name]
        for port in self.outputs:
            env[port.name] = 0.0 if port.is_scalar else np.zeros(port.shape)

        result = ScilabInterpreter().run(self.script, env)

        outputs: dict[str, Any] = {}
        for port in self.outputs:
            value = result[port.name]
            outputs[port.name] = float(value) if port.is_scalar else np.asarray(value, dtype=float)
        for key in self.state:
            self.state[key] = result[key]
        return outputs

    def reset_state(self, initial: Mapping[str, Any] | None = None) -> None:
        """Reset internal state to the provided (or zero) values."""
        for key, value in self.state.items():
            if initial and key in initial:
                self.state[key] = initial[key]
            elif np.isscalar(value):
                self.state[key] = 0.0
            else:
                self.state[key] = np.zeros_like(np.asarray(value, dtype=float))
