"""Direct interpreter for mini-Scilab scripts.

Executes a behaviour script over numpy-backed values.  Arrays use Scilab's
1-based indexing.  The interpreter is the reference semantics for block
behaviours; the IR lowering in :mod:`repro.frontend.lowering` is tested to
produce code whose execution matches it.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from repro.model.scilab import ast


class ScilabRuntimeError(RuntimeError):
    """Raised when a script performs an illegal operation at run time."""


_BUILTINS = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "abs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "atan": math.atan,
    "atan2": math.atan2,
    "hypot": math.hypot,
    "pow": math.pow,
    "min": min,
    "max": max,
}


class ScilabInterpreter:
    """Evaluates mini-Scilab scripts over a variable environment."""

    def __init__(self, max_loop_iterations: int = 1_000_000) -> None:
        self.max_loop_iterations = max_loop_iterations

    # ------------------------------------------------------------------ #
    def run(self, script: ast.Script, env: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Execute ``script`` starting from ``env`` and return the final env.

        Array inputs are copied so callers' values are never mutated.
        """
        environment: dict[str, Any] = {}
        for name, value in (env or {}).items():
            if isinstance(value, np.ndarray):
                environment[name] = np.array(value, dtype=float, copy=True)
            elif isinstance(value, (list, tuple)):
                environment[name] = np.array(value, dtype=float)
            else:
                environment[name] = float(value)
        self._exec_statements(script.statements, environment)
        return environment

    # ------------------------------------------------------------------ #
    def _exec_statements(self, statements, env: dict[str, Any]) -> None:
        for stmt in statements:
            self._exec_statement(stmt, env)

    def _exec_statement(self, stmt: ast.Statement, env: dict[str, Any]) -> None:
        if isinstance(stmt, ast.Assignment):
            value = self._eval(stmt.value, env)
            if stmt.is_indexed:
                self._store_indexed(stmt, value, env)
            else:
                if isinstance(value, np.ndarray):
                    env[stmt.target] = np.array(value, dtype=float, copy=True)
                else:
                    env[stmt.target] = float(value)
            return
        if isinstance(stmt, ast.IfStatement):
            if self._eval(stmt.condition, env):
                self._exec_statements(stmt.then_body, env)
            else:
                self._exec_statements(stmt.else_body, env)
            return
        if isinstance(stmt, ast.ForLoop):
            start = float(self._eval(stmt.range.start, env))
            stop = float(self._eval(stmt.range.stop, env))
            step = float(self._eval(stmt.range.step, env)) if stmt.range.step is not None else 1.0
            if step == 0:
                raise ScilabRuntimeError("for-loop step cannot be zero")
            count = 0
            value = start
            while (value <= stop + 1e-12) if step > 0 else (value >= stop - 1e-12):
                env[stmt.var] = value
                self._exec_statements(stmt.body, env)
                value += step
                count += 1
                if count > self.max_loop_iterations:
                    raise ScilabRuntimeError("for-loop iteration limit exceeded")
            return
        raise ScilabRuntimeError(f"unsupported statement {type(stmt).__name__}")

    def _store_indexed(self, stmt: ast.Assignment, value: Any, env: dict[str, Any]) -> None:
        if stmt.target not in env:
            raise ScilabRuntimeError(
                f"indexed assignment to undeclared array {stmt.target!r}; "
                "block outputs must be pre-allocated"
            )
        array = env[stmt.target]
        if not isinstance(array, np.ndarray):
            raise ScilabRuntimeError(f"{stmt.target!r} is not an array")
        indices = tuple(int(round(float(self._eval(i, env)))) - 1 for i in stmt.indices)
        if any(i < 0 for i in indices):
            raise ScilabRuntimeError(
                f"index {tuple(i + 1 for i in indices)} out of bounds for {stmt.target!r}"
            )
        try:
            if array.ndim == 1 and len(indices) == 1:
                array[indices[0]] = float(value)
            else:
                array[indices] = float(value)
        except IndexError as exc:
            raise ScilabRuntimeError(
                f"index {tuple(i + 1 for i in indices)} out of bounds for "
                f"{stmt.target!r} with shape {array.shape}"
            ) from exc

    # ------------------------------------------------------------------ #
    def _eval(self, expr: ast.Expression, env: dict[str, Any]) -> Any:
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Identifier):
            if expr.name == "pi":
                return math.pi
            if expr.name not in env:
                raise ScilabRuntimeError(f"unbound variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, ast.BinaryOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            return self._apply_binop(expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            value = self._eval(expr.operand, env)
            if expr.op == "-":
                return -value
            if expr.op == "!":
                return not bool(value)
            raise ScilabRuntimeError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.FunctionCall):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.VectorLiteral):
            return np.array([float(self._eval(e, env)) for e in expr.elements])
        if isinstance(expr, ast.RangeExpr):
            start = float(self._eval(expr.start, env))
            stop = float(self._eval(expr.stop, env))
            step = float(self._eval(expr.step, env)) if expr.step is not None else 1.0
            return np.arange(start, stop + step / 2.0, step)
        raise ScilabRuntimeError(f"unsupported expression {type(expr).__name__}")

    def _eval_call(self, expr: ast.FunctionCall, env: dict[str, Any]) -> Any:
        # Array access takes priority: a(i) where a is a bound array.
        if expr.name in env and isinstance(env[expr.name], np.ndarray):
            array = env[expr.name]
            indices = tuple(int(round(float(self._eval(a, env)))) - 1 for a in expr.args)
            if any(i < 0 for i in indices):
                raise ScilabRuntimeError(
                    f"index {tuple(i + 1 for i in indices)} out of bounds for {expr.name!r}"
                )
            try:
                if array.ndim == 1 and len(indices) == 1:
                    return float(array[indices[0]])
                return float(array[indices])
            except IndexError as exc:
                raise ScilabRuntimeError(
                    f"index {tuple(i + 1 for i in indices)} out of bounds for "
                    f"{expr.name!r} with shape {array.shape}"
                ) from exc
        if expr.name in _BUILTINS:
            args = [self._eval(a, env) for a in expr.args]
            try:
                return float(_BUILTINS[expr.name](*args))
            except (ValueError, TypeError, ZeroDivisionError) as exc:
                raise ScilabRuntimeError(f"error in builtin {expr.name!r}: {exc}") from exc
        if expr.name == "zeros":
            shape = tuple(int(round(float(self._eval(a, env)))) for a in expr.args)
            if len(shape) == 1:
                shape = (shape[0],)
            return np.zeros(shape)
        if expr.name == "ones":
            shape = tuple(int(round(float(self._eval(a, env)))) for a in expr.args)
            return np.ones(shape)
        raise ScilabRuntimeError(f"unknown function or array {expr.name!r}")

    @staticmethod
    def _apply_binop(op: str, left: Any, right: Any) -> Any:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if np.isscalar(right) and float(right) == 0.0:
                raise ScilabRuntimeError("division by zero")
            return left / right
        if op == "^":
            return left ** right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "&&":
            return bool(left) and bool(right)
        if op == "||":
            return bool(left) or bool(right)
        raise ScilabRuntimeError(f"unknown operator {op!r}")
