"""Tokenizer for the mini-Scilab behaviour language."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ScilabSyntaxError(SyntaxError):
    """Raised on lexical or syntactic errors in a Scilab script."""


class TokenKind(enum.Enum):
    NUMBER = "number"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    NEWLINE = "newline"
    COLON = ":"
    ASSIGN = "="
    EOF = "eof"


KEYWORDS = {"if", "then", "else", "elseif", "end", "for", "while", "function", "endfunction"}

#: Multi-character operators first so the scanner is greedy.
OPERATORS = ["<=", ">=", "==", "~=", "&&", "||", "+", "-", "*", "/", "^", "<", ">", "&", "|", "~", ".*", "./"]
OPERATORS.sort(key=len, reverse=True)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a flat token list terminated by EOF."""
    tokens: list[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            tokens.append(Token(TokenKind.NEWLINE, "\n", line))
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "%" or (ch == "/" and i + 1 < n and source[i + 1] == "*"):
            # Scilab comments also start with // ; we additionally accept
            # % line comments for convenience.
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
            if i < n and source[i] in "eE":
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                while i < n and source[i].isdigit():
                    i += 1
            tokens.append(Token(TokenKind.NUMBER, source[start:i], line))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line))
            continue
        if ch == "(":
            tokens.append(Token(TokenKind.LPAREN, ch, line))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenKind.RPAREN, ch, line))
            i += 1
            continue
        if ch == "[":
            tokens.append(Token(TokenKind.LBRACKET, ch, line))
            i += 1
            continue
        if ch == "]":
            tokens.append(Token(TokenKind.RBRACKET, ch, line))
            i += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenKind.COMMA, ch, line))
            i += 1
            continue
        if ch == ";":
            tokens.append(Token(TokenKind.SEMICOLON, ch, line))
            i += 1
            continue
        if ch == ":":
            tokens.append(Token(TokenKind.COLON, ch, line))
            i += 1
            continue
        if ch == "=" and not (i + 1 < n and source[i + 1] == "="):
            tokens.append(Token(TokenKind.ASSIGN, ch, line))
            i += 1
            continue
        matched = False
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, line))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        raise ScilabSyntaxError(f"unexpected character {ch!r} at line {line}")
    tokens.append(Token(TokenKind.EOF, "", line))
    return tokens
