"""Mini-Scilab: the behaviour language of ARGO dataflow blocks.

The real ARGO flow describes the behaviour of every Xcos block in the Scilab
language (paper Section II-A: "the behavior of all Xcos components used in
ARGO is also described in the Scilab language").  This package implements a
self-contained subset of Scilab sufficient for signal-processing block
behaviours:

* scalar and array expressions, 1-based indexing, ``a(i, j)`` element access;
* assignments, ``if/then/else/end``, ``for i = a:b`` and ``for i = a:s:b``;
* the usual math builtins (``sin``, ``cos``, ``sqrt``, ``abs``, ``min``,
  ``max``, ...);
* vector literals ``[1 2 3]`` for block parameters.

Two back ends consume the same parsed script:

* :class:`repro.model.scilab.interpreter.ScilabInterpreter` executes it
  directly (model-level simulation, Section III-A "validation of the system
  behavior thanks to the use of specialized simulation tools");
* :mod:`repro.frontend.lowering` compiles it to the C-subset IR
  (Section II-B), so the simulated model and the generated code agree by
  construction -- a property the test suite checks.
"""

from repro.model.scilab.lexer import tokenize, Token, TokenKind, ScilabSyntaxError
from repro.model.scilab.parser import parse_script
from repro.model.scilab.interpreter import ScilabInterpreter, ScilabRuntimeError
from repro.model.scilab import ast

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "ScilabSyntaxError",
    "parse_script",
    "ScilabInterpreter",
    "ScilabRuntimeError",
    "ast",
]
