"""Abstract syntax tree of the mini-Scilab behaviour language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


class Node:
    """Base class of all Scilab AST nodes."""


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #
class Expression(Node):
    pass


@dataclass(frozen=True)
class Number(Expression):
    value: float

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Identifier(Expression):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str
    operand: Expression

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Either a builtin call ``sin(x)`` or an array access ``a(i, j)``.

    Scilab syntax is ambiguous between the two; resolution happens in the
    consumers (interpreter / IR lowering) based on what ``name`` is bound to.
    """

    name: str
    args: tuple[Expression, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class VectorLiteral(Expression):
    """A row-vector literal ``[1 2 3]`` (used for block parameters)."""

    elements: tuple[Expression, ...]

    def __str__(self) -> str:
        return "[" + " ".join(str(e) for e in self.elements) + "]"


@dataclass(frozen=True)
class RangeExpr(Expression):
    """A range ``start:stop`` or ``start:step:stop`` (for loop headers)."""

    start: Expression
    stop: Expression
    step: Expression | None = None

    def __str__(self) -> str:
        if self.step is None:
            return f"{self.start}:{self.stop}"
        return f"{self.start}:{self.step}:{self.stop}"


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #
class Statement(Node):
    pass


@dataclass(frozen=True)
class Assignment(Statement):
    """``target = value`` or ``target(i, j) = value``."""

    target: str
    indices: tuple[Expression, ...]
    value: Expression

    @property
    def is_indexed(self) -> bool:
        return bool(self.indices)

    def __str__(self) -> str:
        if self.indices:
            idx = ", ".join(str(i) for i in self.indices)
            return f"{self.target}({idx}) = {self.value}"
        return f"{self.target} = {self.value}"


@dataclass(frozen=True)
class IfStatement(Statement):
    condition: Expression
    then_body: tuple[Statement, ...]
    else_body: tuple[Statement, ...] = ()


@dataclass(frozen=True)
class ForLoop(Statement):
    """``for var = range ... end``."""

    var: str
    range: RangeExpr
    body: tuple[Statement, ...]


@dataclass(frozen=True)
class Script(Node):
    """A whole behaviour script: a flat sequence of statements."""

    statements: tuple[Statement, ...] = ()

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


def walk_statements(statements: Sequence[Statement]):
    """Pre-order traversal over nested statements."""
    for stmt in statements:
        yield stmt
        if isinstance(stmt, IfStatement):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, ForLoop):
            yield from walk_statements(stmt.body)


def assigned_names(script: Script) -> set[str]:
    """Names assigned anywhere in the script (outputs and temporaries)."""
    return {s.target for s in walk_statements(script.statements) if isinstance(s, Assignment)}


def read_names(script: Script) -> set[str]:
    """Names read anywhere in the script (before resolving builtins)."""
    names: set[str] = set()

    def visit_expr(expr: Expression) -> None:
        if isinstance(expr, Identifier):
            names.add(expr.name)
        elif isinstance(expr, BinaryOp):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, UnaryOp):
            visit_expr(expr.operand)
        elif isinstance(expr, FunctionCall):
            names.add(expr.name)
            for arg in expr.args:
                visit_expr(arg)
        elif isinstance(expr, VectorLiteral):
            for element in expr.elements:
                visit_expr(element)
        elif isinstance(expr, RangeExpr):
            visit_expr(expr.start)
            visit_expr(expr.stop)
            if expr.step is not None:
                visit_expr(expr.step)

    for stmt in walk_statements(script.statements):
        if isinstance(stmt, Assignment):
            for idx in stmt.indices:
                visit_expr(idx)
            visit_expr(stmt.value)
        elif isinstance(stmt, IfStatement):
            visit_expr(stmt.condition)
        elif isinstance(stmt, ForLoop):
            visit_expr(stmt.range)
    return names
